"""Shared infrastructure for the reproduction benches.

Every bench builds its controllers and cycles through these helpers so that

* the vehicle, reward weights, and training budget are identical across
  benches (apples-to-apples with the paper's single experimental setup),
* expensive training runs are cached per (cycle, variant, episodes, seed)
  and shared between benches in one pytest session (Table 2 and Fig. 3 are
  two views of the same four runs, exactly as in the paper), and
* the training budget can be scaled with ``REPRO_BENCH_EPISODES`` (default
  60) — smaller for smoke runs, larger for tighter convergence,
* every controller is scored by *stationary* evaluation
  (:func:`repro.sim.evaluate_stationary`): a settling pass first, then the
  reported drive starts at the controller's own settled state of charge, so
  cumulative rewards are charge-fair.

Evaluation cycles are driven twice back to back (``repeat(2)``): the first
pass absorbs the battery's state-of-charge transient so cumulative rewards
are dominated by charge-sustaining behaviour, and the resulting magnitudes
land in the range of the paper's Table 2.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.control import RuleBasedController, ECMSController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import DriveCycle, standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import EpisodeResult, Simulator, evaluate_stationary, train
from repro.vehicle import default_vehicle

SEED = 42
"""Seed shared by every bench."""

REPORTS = []
"""Rendered result tables collected for the terminal summary."""

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> None:
    """Register a rendered result table.

    The table is printed immediately (visible with ``pytest -s``), queued
    for the end-of-session summary (visible regardless of capture), and
    written to ``benchmarks/results/<name>.txt`` for later inspection.
    """
    print("\n" + text)
    REPORTS.append(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")

CYCLE_REPEATS = 2
"""Back-to-back repetitions of each evaluation cycle."""


def bench_episodes(default: int = 60) -> int:
    """Training budget per run, overridable via ``REPRO_BENCH_EPISODES``."""
    return int(os.environ.get("REPRO_BENCH_EPISODES", default))


def ablation_episodes(default: int) -> int:
    """Training budget for ablation benches: their own (small) default,
    shrunk further when ``REPRO_BENCH_EPISODES`` asks for a quicker pass."""
    return min(bench_episodes(default), default)


def bench_cycle(name: str) -> DriveCycle:
    """The doubled standard cycle used by every bench."""
    return standard_cycle(name).repeat(CYCLE_REPEATS)


_CACHE: Dict[Tuple, EpisodeResult] = {}


def trained_rl_result(cycle_name: str, variant: str = "proposed",
                      episodes: Optional[int] = None,
                      seed: int = SEED) -> EpisodeResult:
    """Greedy evaluation of an RL variant trained on a cycle (cached)."""
    episodes = bench_episodes() if episodes is None else episodes
    key = ("rl", cycle_name, variant, episodes, seed)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        simulator = Simulator(solver)
        controller = build_rl_controller(solver, variant=variant, seed=seed)
        cycle = bench_cycle(cycle_name)
        train(simulator, controller, cycle, episodes=episodes,
              evaluate_after=False)
        _CACHE[key] = evaluate_stationary(simulator, controller, cycle,
                                          settle_passes=2)
    return _CACHE[key]


def rule_based_result(cycle_name: str) -> EpisodeResult:
    """Rule-based baseline evaluation on a cycle (cached)."""
    key = ("rule", cycle_name)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        _CACHE[key] = evaluate_stationary(Simulator(solver),
                                          RuleBasedController(solver),
                                          bench_cycle(cycle_name),
                                          settle_passes=2)
    return _CACHE[key]


def ecms_result(cycle_name: str) -> EpisodeResult:
    """ECMS baseline evaluation on a cycle (cached)."""
    key = ("ecms", cycle_name)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        _CACHE[key] = evaluate_stationary(Simulator(solver),
                                          ECMSController(solver),
                                          bench_cycle(cycle_name),
                                          settle_passes=2)
    return _CACHE[key]
