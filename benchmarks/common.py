"""Shared infrastructure for the reproduction benches.

Every bench builds its controllers and cycles through these helpers so that

* the vehicle, reward weights, and training budget are identical across
  benches (apples-to-apples with the paper's single experimental setup),
* expensive training runs are cached per (cycle, variant, episodes, seed)
  and shared between benches in one pytest session (Table 2 and Fig. 3 are
  two views of the same four runs, exactly as in the paper), and
* the training budget can be scaled with ``REPRO_BENCH_EPISODES`` (default
  60) — smaller for smoke runs, larger for tighter convergence,
* every controller is scored by *stationary* evaluation
  (:func:`repro.sim.evaluate_stationary`): a settling pass first, then the
  reported drive starts at the controller's own settled state of charge, so
  cumulative rewards are charge-fair.

Evaluation cycles are driven twice back to back (``repeat(2)``): the first
pass absorbs the battery's state-of-charge transient so cumulative rewards
are dominated by charge-sustaining behaviour, and the resulting magnitudes
land in the range of the paper's Table 2.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.control import RuleBasedController, ECMSController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import DriveCycle, standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import EpisodeResult, Simulator, evaluate_stationary, train
from repro.vehicle import default_vehicle

SEED = 42
"""Seed shared by every bench."""

REPORTS = []
"""Rendered result tables collected for the terminal summary."""

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str,
           metrics: Optional[Sequence[dict]] = None) -> None:
    """Register a rendered result table.

    The table is printed immediately (visible with ``pytest -s``), queued
    for the end-of-session summary (visible regardless of capture), and
    written to ``benchmarks/results/<name>.txt`` for later inspection.

    ``metrics`` — an optional sequence of ``{"name", "value", "units"}``
    dicts — additionally persists a machine-readable
    ``benchmarks/results/BENCH_<name>.json`` through :func:`emit_json`,
    so the bench's figures of merit enter the perf/accuracy trajectory
    without scraping the rendered table.
    """
    print("\n" + text)
    REPORTS.append(text)
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(os.path.join(_RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")
    if metrics is not None:
        emit_json(name, metrics)


def git_rev() -> str:
    """Short git revision of the working tree, or ``"unknown"``.

    Benches must run from exported tarballs too, so a missing ``git``
    (or a non-repo checkout) degrades to a placeholder instead of failing.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def metric(name: str, value: float, units: str) -> dict:
    """One schema-conforming metric record for :func:`emit_json`."""
    return {"name": str(name), "value": float(value), "units": str(units)}


def emit_json(name: str, metrics: Sequence[dict],
              path: Optional[str] = None) -> str:
    """Write the shared machine-readable bench result file.

    Schema (validated by ``scripts/check_bench_schema.py``): a JSON object
    with ``benchmark`` (str), ``schema_version`` (int), ``git_rev`` (str),
    ``timestamp`` (ISO-8601 UTC str), and ``metrics`` — a non-empty list
    of ``{"name": str, "value": float, "units": str}``.  Returns the path
    written (default ``benchmarks/results/BENCH_<name>.json``).
    """
    records = []
    for m in metrics:
        records.append(metric(m["name"], m["value"], m["units"]))
    if not records:
        raise ValueError(f"bench {name!r} emitted no metrics")
    payload = {
        "benchmark": str(name),
        "schema_version": 1,
        "git_rev": git_rev(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "metrics": records,
    }
    if path is None:
        os.makedirs(_RESULTS_DIR, exist_ok=True)
        path = os.path.join(_RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path

CYCLE_REPEATS = 2
"""Back-to-back repetitions of each evaluation cycle."""


def bench_episodes(default: int = 60) -> int:
    """Training budget per run, overridable via ``REPRO_BENCH_EPISODES``."""
    return int(os.environ.get("REPRO_BENCH_EPISODES", default))


def ablation_episodes(default: int) -> int:
    """Training budget for ablation benches: their own (small) default,
    shrunk further when ``REPRO_BENCH_EPISODES`` asks for a quicker pass."""
    return min(bench_episodes(default), default)


def bench_cycle(name: str) -> DriveCycle:
    """The doubled standard cycle used by every bench."""
    return standard_cycle(name).repeat(CYCLE_REPEATS)


_CACHE: Dict[Tuple, EpisodeResult] = {}


def trained_rl_result(cycle_name: str, variant: str = "proposed",
                      episodes: Optional[int] = None,
                      seed: int = SEED) -> EpisodeResult:
    """Greedy evaluation of an RL variant trained on a cycle (cached)."""
    episodes = bench_episodes() if episodes is None else episodes
    key = ("rl", cycle_name, variant, episodes, seed)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        simulator = Simulator(solver)
        controller = build_rl_controller(solver, variant=variant, seed=seed)
        cycle = bench_cycle(cycle_name)
        train(simulator, controller, cycle, episodes=episodes,
              evaluate_after=False)
        _CACHE[key] = evaluate_stationary(simulator, controller, cycle,
                                          settle_passes=2)
    return _CACHE[key]


def rule_based_result(cycle_name: str) -> EpisodeResult:
    """Rule-based baseline evaluation on a cycle (cached)."""
    key = ("rule", cycle_name)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        _CACHE[key] = evaluate_stationary(Simulator(solver),
                                          RuleBasedController(solver),
                                          bench_cycle(cycle_name),
                                          settle_passes=2)
    return _CACHE[key]


def ecms_result(cycle_name: str) -> EpisodeResult:
    """ECMS baseline evaluation on a cycle (cached)."""
    key = ("ecms", cycle_name)
    if key not in _CACHE:
        solver = PowertrainSolver(default_vehicle())
        _CACHE[key] = evaluate_stationary(Simulator(solver),
                                          ECMSController(solver),
                                          bench_cycle(cycle_name),
                                          settle_passes=2)
    return _CACHE[key]
