"""Online-learning bench: experience throughput and recovery latency.

Measures the two figures of merit of the resilient online-learning loop
(``docs/ONLINE_LEARNING.md``):

* **experience_records_per_sec** — the end-to-end journal pipeline
  (schema-validated encode + atomic ``O_APPEND`` writes + cursor-exact
  read + Q-update ingest) over ``REPRO_BENCH_ONLINE_RECORDS`` records
  (default 20000).  Machine-dependent, so gated by
  ``scripts/check_bench_schema.py`` only with ``--absolute``.
* **regression_recovery_p50_ms / p99_ms** — the first-class robustness
  metric: wall-clock from a canary's rollback verdict (detection)
  through the automatic rollback to the *verified-healthy* incumbent
  (digest and probed decisions bit-identical to before the attempt),
  sampled over ``REPRO_BENCH_ONLINE_ROLLBACKS`` forced promotions of a
  negated-table candidate (default 5).  Gated as lower-is-better with
  ``--absolute``.

Emits ``benchmarks/results/BENCH_online.json`` (schema in
``benchmarks/common.py``).  Run ``python benchmarks/bench_online.py
--baseline`` to also refresh the committed baseline
``BENCH_online.json`` at the repo root.
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.control.rl_controller import build_rl_controller
from repro.learn import (
    ExperienceRecord,
    ExperienceStream,
    OnlineLearner,
    PromotionPipeline,
)
from repro.powertrain import PowertrainSolver
from repro.rl.persistence import _fingerprint
from repro.serve import (
    CanaryConfig,
    FleetConfig,
    PolicyRegistry,
    PolicyServer,
)
from repro.vehicle import default_vehicle

from benchmarks.common import SEED, emit_json, metric, report

_ROOT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_online.json")


def _shape() -> tuple:
    return (int(os.environ.get("REPRO_BENCH_ONLINE_RECORDS", 20_000)),
            int(os.environ.get("REPRO_BENCH_ONLINE_ROLLBACKS", 5)))


def _policy() -> tuple:
    solver = PowertrainSolver(default_vehicle())
    agent = build_rl_controller(solver, seed=SEED).agent
    rng = np.random.default_rng(SEED)
    agent.learner.qtable.values[:] = rng.normal(
        size=agent.learner.qtable.values.shape)
    return agent.learner.qtable.values.copy(), _fingerprint(agent)


def _records_per_sec(table: np.ndarray, fingerprint: dict,
                     n_records: int, root: Path) -> tuple:
    """(records/sec, ingested) over append + checkpointed ingest."""
    num_states, num_actions = table.shape
    rng = np.random.default_rng(SEED)
    states = rng.integers(0, num_states, size=n_records)
    actions = rng.integers(0, num_actions, size=n_records)
    rewards = rng.normal(size=n_records)
    next_states = rng.integers(0, num_states, size=n_records)
    learner = OnlineLearner(fingerprint, table,
                            checkpoint_path=root / "ckpt.json")
    start = time.perf_counter()
    with ExperienceStream(root / "journals") as stream:
        for i in range(n_records):
            stream.offer(ExperienceRecord(
                state=int(states[i]), action=int(actions[i]),
                reward=float(rewards[i]), next_state=int(next_states[i]),
                policy_version=1, vehicle_id=i % 1024, step=i // 1024))
            if stream.buffered >= 512:
                stream.flush()
        stream.flush()
    ingest = learner.ingest(root / "journals")
    elapsed = time.perf_counter() - start
    assert ingest.records == n_records, (ingest.records, n_records)
    return n_records / elapsed, ingest.records


def _recovery_samples(table: np.ndarray, fingerprint: dict,
                      rollbacks: int, root: Path) -> np.ndarray:
    """Measured detect -> rollback -> verified-healthy latencies (s)."""
    registry = PolicyRegistry(root / "registry")
    registry.publish_table(table, fingerprint)        # v1: incumbent
    poisoned = registry.publish_table(-table, fingerprint)  # v2: regressed
    samples = []
    for i in range(rollbacks):
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        pipeline = PromotionPipeline(
            server, registry,
            fleet_config=FleetConfig(vehicles=192, steps=30,
                                     seed=SEED + i),
            canary_config=CanaryConfig(fraction=0.25, min_samples=48,
                                       sigmas=2.0, decision_budget=4000,
                                       intervention_margin=0.02),
            max_rounds=6, round_steps=15)
        outcome = pipeline.promote(poisoned)
        assert outcome.outcome == "rolled_back", outcome
        assert outcome.incumbent_intact is True
        samples.append(outcome.recovery_s)
    return np.asarray(samples)


def run_bench(write_baseline: bool = False) -> dict:
    """Run the online-learning bench; emits the JSON + rendered table."""
    n_records, rollbacks = _shape()
    table, fingerprint = _policy()
    with tempfile.TemporaryDirectory() as tmp:
        rate, ingested = _records_per_sec(table, fingerprint, n_records,
                                          Path(tmp) / "throughput")
        recovery_s = _recovery_samples(table, fingerprint, rollbacks,
                                       Path(tmp) / "rollbacks")
    recovery_ms = recovery_s * 1e3

    metrics = [
        metric("experience_records_per_sec", rate, "1/s"),
        metric("experience_records", ingested, "count"),
        metric("regression_recovery_p50_ms",
               float(np.percentile(recovery_ms, 50)), "ms"),
        metric("regression_recovery_p99_ms",
               float(np.percentile(recovery_ms, 99)), "ms"),
        metric("recovery_samples", rollbacks, "count"),
    ]
    lines = [
        f"Online learning: {ingested} records journaled + ingested, "
        f"{rollbacks} forced regression recoveries",
        "",
        f"  experience records/sec   {rate:14,.0f}",
        f"  recovery p50             {np.percentile(recovery_ms, 50):11.1f}"
        " ms",
        f"  recovery p99             {np.percentile(recovery_ms, 99):11.1f}"
        " ms",
    ]
    report("online", "\n".join(lines), metrics=metrics)
    if write_baseline:
        emit_json("online", metrics, path=_ROOT_BASELINE)
    return {"rate": rate, "recovery_ms": recovery_ms}


def test_online_bench_invariants_hold():
    """The loop's figures of merit exist and are sane."""
    os.environ.setdefault("REPRO_BENCH_ONLINE_RECORDS", "4000")
    os.environ.setdefault("REPRO_BENCH_ONLINE_ROLLBACKS", "3")
    outcome = run_bench()
    assert outcome["rate"] > 0
    assert np.all(outcome["recovery_ms"] >= 0.0)
    assert np.percentile(outcome["recovery_ms"], 99) \
        >= np.percentile(outcome["recovery_ms"], 50)


if __name__ == "__main__":
    out = run_bench(write_baseline="--baseline" in sys.argv[1:])
    print(f"experience records/sec: {out['rate']:,.0f}, "
          f"recovery p99: {np.percentile(out['recovery_ms'], 99):.1f} ms")
