"""Pytest wiring for the reproduction benches.

Benches render their tables through :func:`benchmarks.common.report`, which
collects them for the terminal summary (so they survive pytest's output
capture) and persists them under ``benchmarks/results/``.
"""

from benchmarks import common


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every collected reproduction table after the test summary."""
    if not common.REPORTS:
        return
    terminalreporter.section("reproduction results")
    for text in common.REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
