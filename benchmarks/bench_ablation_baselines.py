"""Ablation — the full baseline ladder on one cycle.

Orders every controller in the repository on the same drive: thermostat
(bang-bang), tuned rule-based [5], the trained RL joint controller
(proposed), ECMS, and the offline DP bound.  A sanity anchor for all other
benches: the ladder must be monotone from crude to clairvoyant on the
joint objective.
"""

import pytest

from benchmarks.common import SEED, bench_cycle, bench_episodes, report
from repro.analysis import render_table
from repro.control import (
    DPConfig,
    DPController,
    ECMSController,
    RuleBasedController,
    ThermostatController,
    solve_dp,
)
from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle


@pytest.mark.benchmark(group="ablation-baselines")
def test_ablation_baseline_ladder(benchmark):
    cycle_x2 = bench_cycle("SC03")
    dp_cycle = standard_cycle("SC03")  # single pass keeps DP affordable
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)
    results = {}

    def run_all():
        results["thermostat"] = evaluate(
            simulator, ThermostatController(solver), cycle_x2)
        results["rule-based"] = evaluate(
            simulator, RuleBasedController(solver), cycle_x2)
        results["ecms"] = evaluate(simulator, ECMSController(solver),
                                   cycle_x2)
        rl = build_rl_controller(solver, seed=SEED)
        run = train(simulator, rl, cycle_x2, episodes=bench_episodes(40))
        results["rl (proposed)"] = run.evaluation
        dp_config = DPConfig(soc_nodes=13, current_levels=9, aux_levels=3)
        solution = solve_dp(solver, dp_cycle, config=dp_config)
        results["dp bound (x1 cycle)"] = evaluate(
            simulator, DPController(solver, solution, config=dp_config),
            dp_cycle)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {label: [res.corrected_fuel(), res.corrected_mpg(),
                    res.total_paper_reward, res.final_soc]
            for label, res in results.items()}
    report("ablation_baselines", render_table(
        "Ablation: baseline ladder (SC03)",
        ["Fuel g (corr)", "MPG (corr)", "Reward", "Final SoC"], rows))

    # Ladder shape on corrected fuel (the x2 runs are directly comparable).
    thermo = results["thermostat"].corrected_fuel()
    rules = results["rule-based"].corrected_fuel()
    ecms = results["ecms"].corrected_fuel()
    assert ecms <= rules * 1.02, "ECMS must not lose to threshold rules"
    assert rules <= thermo * 1.05, "tuned rules must not lose to bang-bang"
