"""Ablation — reduced versus full action space (paper Section 4.3.2).

The paper argues for the reduced action space (battery current only, with
gear and auxiliary power chosen by an inner instantaneous optimisation)
because TD(lambda)'s complexity and convergence are proportional to the
number of state-action pairs, and because it frees ``p_aux`` from
discretisation.  This bench trains both spaces with the same budget on
SC03 and compares state-action counts, wall time, and final performance.

Expected shape: the reduced space has orders of magnitude fewer
state-action pairs and reaches an equal or better greedy reward within the
same training budget.
"""

import time

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.rl.agent import ActionSpaceConfig, JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.prediction import ExponentialPredictor
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

EPISODES = ablation_episodes(30)


def _train(reduced: bool):
    solver = PowertrainSolver(default_vehicle())
    agent = JointControlAgent(
        solver,
        action_config=ActionSpaceConfig(reduced=reduced, aux_candidates=4),
        predictor=ExponentialPredictor(),
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    simulator = Simulator(solver)
    start = time.perf_counter()
    run = train(simulator, RLController(agent), bench_cycle("SC03"),
                episodes=EPISODES)
    elapsed = time.perf_counter() - start
    pairs = agent.discretizer.num_states * agent.num_rl_actions
    return run.evaluation, pairs, elapsed


@pytest.mark.benchmark(group="ablation-action-space")
def test_ablation_action_space(benchmark):
    results = {}

    def run_all():
        results["reduced"] = _train(reduced=True)
        results["full"] = _train(reduced=False)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    for label, (evaluation, pairs, elapsed) in results.items():
        rows[label] = [float(pairs), evaluation.total_paper_reward,
                       evaluation.corrected_mpg(), elapsed]
    report("ablation_action_space", render_table(
        f"Ablation: action space (SC03 x2, {EPISODES} episodes)",
        ["S-A pairs", "Reward", "MPG", "Train s"], rows))

    red_eval, red_pairs, _ = results["reduced"]
    full_eval, full_pairs, _ = results["full"]
    assert red_pairs * 10 <= full_pairs, \
        "reduced space must shrink the state-action product dramatically"
    assert (red_eval.total_paper_reward
            >= full_eval.total_paper_reward - 15.0), \
        "reduced space must converge at least as well in equal budget"
