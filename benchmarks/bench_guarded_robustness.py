"""Guarded robustness bench — the safety supervisor in the loop.

The same controllers-×-scenarios grid as the plain robustness bench, but
every run drives through a :class:`repro.safety.SafetySupervisor`, and
the scenario set adds one deliberately catastrophic failure (near-total
ICE and EM loss plus a stuck heater) that the built-in studies avoid on
purpose — the built-ins must stay drivable, this one must force the
supervisor through its whole escalation ladder.

Asserted invariants:

* full coverage — every guarded run either completes or halts
  *structurally*; nothing dies with an unstructured exception,
* mild faults stay cheap — under the built-in scenarios the supervisor
  never leaves NOMINAL for the prepared controllers (interventions are
  the exception, not the tax),
* the catastrophic scenario ends in LIMP_HOME with the fallback still
  producing a usable drive (nonzero limp-home MPG retention).
"""

import os

import pytest

from benchmarks.common import SEED, ablation_episodes, report
from repro.control import RuleBasedController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.exec import Supervisor
from repro.faults import builtin_scenarios
from repro.faults.models import (
    AuxLoadSpike,
    BatteryFade,
    EnginePowerLoss,
    MotorDerating,
)
from repro.faults.scenarios import Scenario
from repro.faults.schedule import FaultSchedule, ScheduledFault
from repro.powertrain import PowertrainSolver
from repro.safety import SupervisorConfig
from repro.sim import Simulator, run_robustness, train
from repro.vehicle import default_vehicle


def catastrophic_scenario() -> Scenario:
    """Near-total powertrain loss at t=40 s (not a built-in: the built-in
    studies must stay drivable; this one must not)."""
    return Scenario(
        "catastrophic",
        "simultaneous near-total ICE and EM loss with a stuck heater",
        FaultSchedule([
            ScheduledFault(EnginePowerLoss(power_loss=0.95), start=40.0),
            ScheduledFault(MotorDerating(power_derate=0.95,
                                         torque_derate=0.95),
                           start=40.0, ramp=10.0),
            ScheduledFault(BatteryFade(capacity_loss=0.9,
                                       resistance_growth=4.0),
                           start=40.0, ramp=10.0),
            ScheduledFault(AuxLoadSpike(extra_power=2500.0), start=40.0),
        ]))


@pytest.mark.benchmark(group="robustness")
def test_guarded_robustness_sweep(benchmark):
    cycle = standard_cycle("NYCC")
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)

    rl = build_rl_controller(solver, seed=SEED)
    train(simulator, rl, cycle, episodes=ablation_episodes(15),
          evaluate_after=False)
    controllers = {
        "rl (proposed)": rl,
        "rule-based": RuleBasedController(solver),
    }
    scenarios = dict(builtin_scenarios())
    severe = catastrophic_scenario()
    scenarios[severe.name] = severe

    config = SupervisorConfig(escalate_after=2, recover_after=10_000,
                              infeasible_warn_after=3,
                              infeasible_severe_after=8,
                              soc_warn_after=5, soc_severe_after=30)
    executor = Supervisor(jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
                          failure_mode="quarantine")
    sweep = {}

    def run_sweep():
        sweep["report"] = run_robustness(simulator, controllers, scenarios,
                                         cycle, seed=SEED, executor=executor,
                                         guard=True,
                                         supervisor_config=config)
        return sweep["report"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = sweep["report"]
    report("guarded_robustness", result.render())

    assert not result.failures, [f.describe() for f in result.failures]
    assert result.coverage == 1.0
    for row in result.rows:
        assert row.finite, f"{row.controller}/{row.scenario} went non-finite"
        assert row.time_in_mode is not None, "guarded rows carry modes"
        if row.scenario == severe.name:
            assert row.final_mode == "LIMP_HOME", (
                f"{row.controller} ended {severe.name} in {row.final_mode}")
        else:
            # Built-in faults are survivable: the guard must ride along
            # without escalating the prepared controllers.
            assert row.final_mode == "NOMINAL", (
                f"{row.controller}/{row.scenario} ended in {row.final_mode}")
    # The fallback keeps the limped vehicle usable — and not free: the
    # catastrophic plant cannot match healthy fuel economy.
    retention = result.limp_home_retention()
    assert 0.0 < retention <= 1.5, retention
