"""Ablation — offline dynamic-programming bound versus online controllers.

The DP solve knows the whole cycle in advance and optimises the joint
objective globally, bounding what any online controller (rule-based, ECMS,
RL) can achieve.  Run on a shortened cycle to keep the backward induction
affordable.

Expected shape on the joint cost (fuel grams with SoC correction):
DP <= ECMS <= rule-based (up to grid resolution), with the trained RL
between rule-based and DP.
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, report
from repro.analysis import render_table
from repro.control import (
    DPConfig,
    DPController,
    ECMSController,
    RuleBasedController,
    solve_dp,
)
from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate, train
from repro.vehicle import default_vehicle

EPISODES = ablation_episodes(30)


@pytest.mark.benchmark(group="ablation-dp")
def test_ablation_dp_bound(benchmark):
    cycle = standard_cycle("SC03")  # single pass: DP cost is O(T x nodes)
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)
    results = {}

    def run_all():
        dp_config = DPConfig(soc_nodes=15, current_levels=11, aux_levels=3)
        solution = solve_dp(solver, cycle, config=dp_config)
        results["dp (offline bound)"] = evaluate(
            simulator, DPController(solver, solution, config=dp_config),
            cycle)
        results["ecms"] = evaluate(simulator, ECMSController(solver), cycle)
        results["rule-based"] = evaluate(simulator,
                                         RuleBasedController(solver), cycle)
        rl = build_rl_controller(solver, seed=SEED)
        run = train(simulator, rl, cycle, episodes=EPISODES)
        results["rl (proposed)"] = run.evaluation
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {label: [res.corrected_fuel(), res.corrected_mpg(),
                    res.total_paper_reward]
            for label, res in results.items()}
    report("ablation_dp_bound", render_table(
        "Ablation: DP bound vs online controllers (SC03 x1)",
        ["Fuel g (corr)", "MPG (corr)", "Reward"], rows))

    dp_fuel = results["dp (offline bound)"].corrected_fuel()
    for label, res in results.items():
        if label != "dp (offline bound)":
            assert dp_fuel <= res.corrected_fuel() * 1.08, \
                f"DP bound must not lose to {label}"
