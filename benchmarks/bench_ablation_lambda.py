"""Ablation — TD(lambda) trace-decay sweep (paper Section 4.3.4).

The paper selects TD(lambda) over plain Q-learning (lambda = 0) for its
convergence rate in the non-Markovian driving environment.  This bench
trains the same agent at several lambda values with a deliberately tight
episode budget.

Expected shape (measured): with the charge-sustaining shaping in the
reward, most credit is *local*, so small lambda suffices — large traces
mostly add update variance.  The bench asserts the band: the best
lambda > 0 stays within a modest margin of lambda = 0, and no lambda
collapses.  (The paper's convergence argument applies to its unshaped
reward, where delayed SoC consequences dominate.)
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.rl.td_lambda import TDLambdaConfig
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

LAMBDAS = (0.0, 0.3, 0.6, 0.9)
EPISODES = ablation_episodes(20)


def _train(lam: float) -> float:
    solver = PowertrainSolver(default_vehicle())
    agent = JointControlAgent(
        solver, td_config=TDLambdaConfig(trace_decay=lam),
        predictor=ExponentialPredictor(),
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    run = train(Simulator(solver), RLController(agent), bench_cycle("SC03"),
                episodes=EPISODES)
    return run.evaluation.total_paper_reward


@pytest.mark.benchmark(group="ablation-lambda")
def test_ablation_lambda(benchmark):
    rewards = {}

    def run_all():
        for lam in LAMBDAS:
            rewards[lam] = _train(lam)
        return rewards

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    report("ablation_lambda", render_table(
        f"Ablation: TD(lambda) trace decay (SC03 x2, {EPISODES} episodes)",
        ["Reward"], {f"lambda={lam}": [rewards[lam]] for lam in LAMBDAS}))

    best_nonzero = max(rewards[lam] for lam in LAMBDAS if lam > 0)
    assert best_nonzero >= rewards[0.0] - 40.0, \
        "small eligibility traces must stay competitive with lambda = 0"
    worst = min(rewards.values())
    best = max(rewards.values())
    assert worst >= best - 150.0, \
        "no lambda setting should collapse outright"
