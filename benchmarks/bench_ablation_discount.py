"""Ablation — discount-rate gamma sweep (Eq. 11).

With the charge-sustaining shaping already pricing battery energy into each
step's reward, most of the long-horizon credit is local; this sweep shows
how far the discount can drop before the controller turns harmfully myopic
and how much a near-1 discount costs in convergence under a fixed budget.
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.rl.td_lambda import TDLambdaConfig
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

DISCOUNTS = (0.5, 0.8, 0.9, 0.97)
EPISODES = ablation_episodes(20)


def _train(gamma: float):
    solver = PowertrainSolver(default_vehicle())
    agent = JointControlAgent(
        solver, td_config=TDLambdaConfig(discount=gamma),
        predictor=ExponentialPredictor(),
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    run = train(Simulator(solver), RLController(agent), bench_cycle("SC03"),
                episodes=EPISODES)
    return run.evaluation


@pytest.mark.benchmark(group="ablation-discount")
def test_ablation_discount(benchmark):
    results = {}

    def run_all():
        for gamma in DISCOUNTS:
            results[gamma] = _train(gamma)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {f"gamma={g}": [results[g].total_paper_reward,
                           results[g].corrected_mpg()]
            for g in DISCOUNTS}
    report("ablation_discount", render_table(
        f"Ablation: discount rate gamma (SC03 x2, {EPISODES} episodes)",
        ["Reward", "MPG"], rows))

    # Shape: the default mid-range gamma must not lose badly to either
    # extreme under the tight budget.
    default_reward = results[0.8].total_paper_reward
    assert default_reward >= min(
        results[0.5].total_paper_reward,
        results[0.97].total_paper_reward) - 15.0