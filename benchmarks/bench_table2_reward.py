"""Table 2 — cumulative reward: proposed joint control vs rule-based.

Paper Table 2 (cumulative ``(-mdot_f + w f_aux) dT`` over the full profile):

              Proposed    Rule-based
    OSCAR      -275.76       -337.50
    UDDS       -754.85       -849.25
    SC03       -284.14       -319.66
    HWFET      -741.12       -861.68

Expected shape: both columns negative, the proposed controller's reward
strictly higher (less negative) on every cycle.  Our synthetic cycles are
driven twice back to back, which lands the magnitudes in the paper's range.
"""

import pytest

from benchmarks.common import report, rule_based_result, trained_rl_result
from repro.analysis import render_table, reward_gap_percent

CYCLES = ("OSCAR", "UDDS", "SC03", "HWFET")

PAPER_TABLE2 = {
    "OSCAR": (-275.76, -337.50),
    "UDDS": (-754.85, -849.25),
    "SC03": (-284.14, -319.66),
    "HWFET": (-741.12, -861.68),
}


@pytest.mark.benchmark(group="table2")
def test_table2_cumulative_reward(benchmark):
    """Regenerate Table 2 and check its shape."""
    results = {}

    def run_all():
        for name in CYCLES:
            results[name] = (trained_rl_result(name, "proposed"),
                             rule_based_result(name))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    corrected = {}
    for name, (rl, rule) in results.items():
        rows[name] = [rl.total_paper_reward, rule.total_paper_reward]
        corrected[name] = [rl.corrected_paper_reward(),
                           rule.corrected_paper_reward()]

    gaps = {name: reward_gap_percent(vals[0], vals[1])
            for name, vals in corrected.items()}
    report("table2_reward", render_table(
        "Table 2: cumulative reward (measured, raw)",
        ["Proposed", "Rule-based"], rows)
        + "\n" + render_table(
        "Table 2: cumulative reward (measured, charge-corrected)",
        ["Proposed", "Rule-based"], corrected)
        + "\n" + render_table(
        "Table 2: cumulative reward (paper)",
        ["Proposed", "Rule-based"],
        {k: list(v) for k, v in PAPER_TABLE2.items()})
        + "\nCorrected reward gap (proposed better by): "
        + ", ".join(f"{k}={v:+.1f}%" for k, v in gaps.items()))

    # Shape checks: negative rewards everywhere; proposed wins the
    # charge-fair comparison on most cycles.
    for name, (rl_val, rule_val) in rows.items():
        assert rl_val < 0.0 and rule_val < 0.0, \
            f"rewards must be negative on {name} (paper sign convention)"
    wins = sum(1 for rl_val, rule_val in corrected.values()
               if rl_val > rule_val)
    assert wins >= 3, \
        f"proposed must out-reward rule-based on most cycles (won {wins}/4)"
