"""Ablation — TD(lambda) (Algorithm 1) versus double Q-learning.

The HEV reward is noisy across visits of one discrete state (the same bin
covers a range of demands), so plain max-bootstrap learners overestimate;
double Q-learning removes that bias at the cost of splitting its experience
over two tables and forgoing eligibility traces.  This bench trains both
under an equal budget.

Expected shape: both algorithms land in the same performance band — the
paper's TD(lambda) choice is defensible; neither collapses.
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.sim import Simulator, evaluate_stationary, train
from repro.vehicle import default_vehicle

EPISODES = ablation_episodes(25)


def _train(algorithm: str):
    solver = PowertrainSolver(default_vehicle())
    agent = JointControlAgent(
        solver, predictor=ExponentialPredictor(), algorithm=algorithm,
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    simulator = Simulator(solver)
    cycle = bench_cycle("SC03")
    train(simulator, RLController(agent), cycle, episodes=EPISODES,
          evaluate_after=False)
    return evaluate_stationary(simulator, RLController(agent), cycle)


@pytest.mark.benchmark(group="ablation-algorithm")
def test_ablation_algorithm(benchmark):
    results = {}

    def run_all():
        for algorithm in ("td_lambda", "double_q"):
            results[algorithm] = _train(algorithm)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {name: [res.corrected_paper_reward(), res.corrected_mpg()]
            for name, res in results.items()}
    report("ablation_algorithm", render_table(
        f"Ablation: learning algorithm (SC03 x2, {EPISODES} episodes)",
        ["Corr. reward", "MPG"], rows))

    td = results["td_lambda"].corrected_paper_reward()
    dq = results["double_q"].corrected_paper_reward()
    assert abs(td - dq) < 80.0, \
        "both algorithms should land in the same performance band"
