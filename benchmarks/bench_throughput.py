"""Throughput bench: the perf trajectory of the vectorized step pipeline.

Measures the built-in-cycle RL training workload (the paper's Section 4
loop: one full battery-current x gear x aux grid evaluation per 1 Hz step)
through three solver back ends:

* **vectorized** — the production :class:`PowertrainSolver` hot path
  (persistent action-grid workspace + single struct-of-arrays pass),
* **batched reference** — the frozen pre-refactor implementation
  (:class:`ReferencePowertrainSolver`): vectorised but re-allocating the
  grid and every intermediate per step,
* **scalar reference** — :class:`ScalarReferenceSolver`, the pre-refactor
  *scalar* path that resolves each candidate action on its own
  (what per-action evaluation costs; the refactor's "before" figure).

Emits ``benchmarks/results/BENCH_throughput.json`` (schema in
``benchmarks/common.py``; validated by ``scripts/check_bench_schema.py``)
with steps/sec and episodes/sec per back end, the p50/p99 per-step act
latency of the vectorized path, and the vectorized-over-scalar speedup.
Run ``python benchmarks/bench_throughput.py --baseline`` to also refresh
the committed trajectory baseline ``BENCH_throughput.json`` at the repo
root.  Environment knobs: ``REPRO_BENCH_THROUGHPUT_EPISODES`` (default 3),
``REPRO_BENCH_THROUGHPUT_CYCLE`` (default ``udds``), and
``REPRO_BENCH_THROUGHPUT_SCALAR_STEPS`` (default 120) for the slow scalar
leg.
"""

from __future__ import annotations

import os
import sys
import time
from typing import List

import numpy as np

from repro.control.base import Controller
from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.powertrain.reference import (
    ReferencePowertrainSolver,
    ScalarReferenceSolver,
)
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

from benchmarks.common import SEED, emit_json, metric, report

_ROOT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_throughput.json")


def _episodes() -> int:
    return int(os.environ.get("REPRO_BENCH_THROUGHPUT_EPISODES", 3))


def _cycle_name() -> str:
    return os.environ.get("REPRO_BENCH_THROUGHPUT_CYCLE", "udds")


def _scalar_steps() -> int:
    return int(os.environ.get("REPRO_BENCH_THROUGHPUT_SCALAR_STEPS", 120))


class _TimedController(Controller):
    """Delegating wrapper that records per-``act`` wall latency."""

    def __init__(self, inner: Controller):
        self.inner = inner
        self.latencies: List[float] = []

    def begin_episode(self) -> None:
        self.inner.begin_episode()

    def act(self, speed, acceleration, soc, dt, grade=0.0, learn=True,
            greedy=False):
        t0 = time.perf_counter()
        step = self.inner.act(speed, acceleration, soc, dt, grade,
                              learn=learn, greedy=greedy)
        self.latencies.append(time.perf_counter() - t0)
        return step

    def finish_episode(self, learn: bool = True) -> None:
        self.inner.finish_episode(learn=learn)


def _measure(solver_cls, cycle, episodes: int) -> dict:
    """Train ``episodes`` drives of ``cycle``; return throughput figures."""
    solver = solver_cls(default_vehicle())
    simulator = Simulator(solver)
    controller = _TimedController(
        build_rl_controller(solver, variant="proposed", seed=SEED))
    t0 = time.perf_counter()
    train(simulator, controller, cycle, episodes=episodes,
          evaluate_after=False, seed=SEED)
    elapsed = time.perf_counter() - t0
    steps = episodes * (len(cycle) - 1)
    latencies_ms = 1e3 * np.asarray(controller.latencies)
    return {
        "steps_per_sec": steps / elapsed,
        "episodes_per_sec": episodes / elapsed,
        "p50_ms": float(np.percentile(latencies_ms, 50)),
        "p99_ms": float(np.percentile(latencies_ms, 99)),
        "steps": steps,
        "elapsed_s": elapsed,
    }


def run_bench(write_baseline: bool = False) -> dict:
    """Run all three legs and emit the JSON + rendered table."""
    cycle = standard_cycle(_cycle_name())
    episodes = _episodes()
    # The reference legs are too slow for a whole cycle; measure them on a
    # *moving* window (idle steps hit the cheap standstill path and would
    # flatter the slow implementations).
    moving = np.nonzero(cycle.speeds > 1.0)[0]
    start = int(moving[0]) if len(moving) else 0
    stop = min(start + _scalar_steps() + 1, len(cycle))
    scalar_cycle = cycle.slice(start, stop)

    fast = _measure(PowertrainSolver, cycle, episodes)
    batched = _measure(ReferencePowertrainSolver, scalar_cycle, 1)
    scalar = _measure(ScalarReferenceSolver, scalar_cycle, 1)
    speedup = fast["steps_per_sec"] / scalar["steps_per_sec"]

    metrics = [
        metric("steps_per_sec_vectorized", fast["steps_per_sec"],
               "steps/s"),
        metric("episodes_per_sec_vectorized", fast["episodes_per_sec"],
               "episodes/s"),
        metric("step_latency_p50", fast["p50_ms"], "ms"),
        metric("step_latency_p99", fast["p99_ms"], "ms"),
        metric("steps_per_sec_batched_reference",
               batched["steps_per_sec"], "steps/s"),
        metric("steps_per_sec_scalar", scalar["steps_per_sec"], "steps/s"),
        metric("vectorized_speedup", speedup, "x"),
        metric("workload_episodes", episodes, "count"),
        metric("workload_steps", fast["steps"], "count"),
    ]

    lines = [
        "Throughput: RL training workload "
        f"({_cycle_name().upper()}, {episodes} episode(s))",
        "(scalar/batched reference legs measured on a moving "
        f"{len(scalar_cycle) - 1}-step window, samples "
        f"[{start}:{stop}))",
        "",
        f"{'path':22s} {'steps/s':>10s} {'episodes/s':>11s} "
        f"{'p50 ms':>8s} {'p99 ms':>8s}",
        f"{'vectorized':22s} {fast['steps_per_sec']:10.1f} "
        f"{fast['episodes_per_sec']:11.3f} {fast['p50_ms']:8.2f} "
        f"{fast['p99_ms']:8.2f}",
        f"{'batched reference':22s} {batched['steps_per_sec']:10.1f} "
        f"{batched['episodes_per_sec']:11.3f} {batched['p50_ms']:8.2f} "
        f"{batched['p99_ms']:8.2f}",
        f"{'scalar reference':22s} {scalar['steps_per_sec']:10.1f} "
        f"{scalar['episodes_per_sec']:11.3f} {scalar['p50_ms']:8.2f} "
        f"{scalar['p99_ms']:8.2f}",
        "",
        f"vectorized over scalar pre-refactor path: {speedup:.1f}x",
    ]
    report("throughput", "\n".join(lines), metrics=metrics)
    if write_baseline:
        emit_json("throughput", metrics, path=_ROOT_BASELINE)
    return {"speedup": speedup, "metrics": metrics}


def test_throughput_vectorized_speedup():
    """The refactor's acceptance floor: >= 5x over the scalar path."""
    outcome = run_bench()
    assert outcome["speedup"] >= 5.0, (
        f"vectorized path is only {outcome['speedup']:.1f}x the scalar "
        "reference; the SoA refactor promises >= 5x")


if __name__ == "__main__":
    result = run_bench(write_baseline="--baseline" in sys.argv[1:])
    print(f"speedup: {result['speedup']:.1f}x")
