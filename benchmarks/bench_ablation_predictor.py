"""Ablation — predictor choice (paper Section 4.2).

The paper adopts the exponential weighting function (Eq. 12) over heavier
predictors (e.g. an ANN) as the best effectiveness/complexity trade-off.
This bench trains the full agent with each predictor plugged into the
state and compares the resulting control quality under a deliberately
tight budget.

Expected shape: at a tight budget every prediction dimension *costs*
convergence (it multiplies the state count — the paper's own complexity
warning), so "none"/cheap predictors are competitive here and nothing may
collapse; the exponential predictor must stay within a modest band of the
best.  The prediction *payoff* is measured where the paper measures it —
Fig. 2's full-budget runs (bench_fig2_prediction.py).
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.prediction import (
    ExponentialPredictor,
    MarkovPredictor,
    MLPPredictor,
    VelocityPredictor,
)
from repro.rl.agent import JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

EPISODES = ablation_episodes(25)

PREDICTORS = {
    "none": lambda solver: None,
    "exponential": lambda solver: ExponentialPredictor(),
    "markov": lambda solver: MarkovPredictor(),
    "mlp": lambda solver: MLPPredictor(),
    "velocity": lambda solver: VelocityPredictor(solver.dynamics),
}


def _train(factory):
    solver = PowertrainSolver(default_vehicle())
    agent = JointControlAgent(
        solver, predictor=factory(solver),
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    run = train(Simulator(solver), RLController(agent), bench_cycle("OSCAR"),
                episodes=EPISODES)
    return run.evaluation


@pytest.mark.benchmark(group="ablation-predictor")
def test_ablation_predictor(benchmark):
    results = {}

    def run_all():
        for label, factory in PREDICTORS.items():
            results[label] = _train(factory)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {label: [res.corrected_paper_reward(), res.corrected_mpg()]
            for label, res in results.items()}
    report("ablation_predictor", render_table(
        f"Ablation: predictor choice (OSCAR x2, {EPISODES} episodes)",
        ["Corr. reward", "MPG"], rows))

    exp_reward = results["exponential"].corrected_paper_reward()
    best = max(res.corrected_paper_reward() for res in results.values())
    worst = min(res.corrected_paper_reward() for res in results.values())
    assert exp_reward >= best - 60.0, \
        "the exponential predictor must stay within a modest band of the best"
    assert worst >= best - 150.0, \
        "no predictor choice should collapse outright"
