"""Ablation — auxiliary-utility weight ``w`` sweep (paper Section 4.3.3).

The weighting factor ``w`` sets the relative importance of fuel versus
auxiliary comfort in the joint reward.  The bench trains at several ``w``
values on SC03 (the EPA air-conditioning cycle) and reports the trade-off
frontier.

Expected shape: the mean absolute deviation of ``p_aux`` from the
preferred 600 W shrinks monotonically (in trend) as ``w`` grows, while
fuel consumption grows — the knob trades one for the other.
"""

import numpy as np
import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import build_rl_controller
from repro.powertrain import PowertrainSolver
from repro.rl.reward import RewardConfig
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

WEIGHTS = (0.0, 0.1, 0.3, 1.0)
EPISODES = ablation_episodes(25)


def _train(weight: float):
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(
        solver, reward_config=RewardConfig(aux_weight=weight), seed=SEED)
    run = train(Simulator(solver), controller, bench_cycle("SC03"),
                episodes=EPISODES)
    return run.evaluation


@pytest.mark.benchmark(group="ablation-weight")
def test_ablation_aux_weight(benchmark):
    results = {}

    def run_all():
        for w in WEIGHTS:
            results[w] = _train(w)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    deviations = {}
    for w, res in results.items():
        deviation = float(np.mean(np.abs(res.aux_power - 600.0)))
        deviations[w] = deviation
        rows[f"w={w}"] = [res.corrected_fuel(), res.mean_aux_power,
                          deviation]
    report("ablation_weight", render_table(
        f"Ablation: aux weight w (SC03 x2, {EPISODES} episodes)",
        ["Fuel g", "Mean p_aux W", "|p_aux-600| W"], rows))

    # Shape: a large w must track the preferred power much more tightly
    # than w = 0.
    assert deviations[1.0] < deviations[0.0], \
        "increasing w must pull p_aux toward the preferred draw"
