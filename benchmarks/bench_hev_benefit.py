"""Extension bench — the hybridisation benefit itself.

The paper's introduction motivates HEVs with their fuel-economy advantage
over conventional ICE vehicles.  This bench quantifies that advantage on
our own substrate: the same vehicle driven conventionally (no regen, no
assist), by the rule-based hybrid strategy, and by the trained RL joint
controller, on an urban and a highway cycle.

Expected shape: hybrid > conventional everywhere, with the hybrid benefit
much larger on the urban cycle (regen + engine-off idling) than on the
highway — the classic HEV signature.
"""

import pytest

from benchmarks.common import (
    SEED,
    ablation_episodes,
    bench_cycle,
    report,
    rule_based_result,
    trained_rl_result,
)
from repro.analysis import improvement_percent, render_table
from repro.control import ConventionalController
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, evaluate_stationary
from repro.vehicle import default_vehicle

CYCLES = ("UDDS", "HWFET")


def _conventional(cycle_name: str):
    solver = PowertrainSolver(default_vehicle())
    return evaluate_stationary(Simulator(solver),
                               ConventionalController(solver),
                               bench_cycle(cycle_name), settle_passes=2)


@pytest.mark.benchmark(group="hev-benefit")
def test_hev_benefit(benchmark):
    results = {}

    def run_all():
        for name in CYCLES:
            results[name] = {
                "conventional": _conventional(name),
                "rule-based hybrid": rule_based_result(name),
                "rl hybrid (proposed)": trained_rl_result(name, "proposed"),
            }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    for cycle_name, per in results.items():
        for label, res in per.items():
            rows[f"{cycle_name} / {label}"] = [res.corrected_mpg(),
                                               res.corrected_fuel()]
    gains = {name: improvement_percent(
        per["rule-based hybrid"].corrected_mpg(),
        per["conventional"].corrected_mpg()) for name, per in results.items()}
    report("hev_benefit", render_table(
        "Extension: hybridisation benefit", ["MPG (corr)", "Fuel g (corr)"],
        rows)
        + "\nRule-based hybrid vs conventional MPG: "
        + ", ".join(f"{k}={v:+.1f}%" for k, v in gains.items()))

    for name, per in results.items():
        conventional = per["conventional"].corrected_fuel()
        for label in ("rule-based hybrid", "rl hybrid (proposed)"):
            assert per[label].corrected_fuel() < conventional, \
                f"{label} must beat conventional on {name}"
    assert gains["UDDS"] > gains["HWFET"], \
        "the hybrid benefit must be larger in the city than on the highway"
