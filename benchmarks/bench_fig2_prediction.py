"""Figure 2 — normalised fuel consumption with and without prediction.

Paper: "Figure 2 shows the normalized fuel consumption for three driving
profiles (i.e., OSCAR, UDDS, and MODEM) under HEV control frameworks with
and without the prediction.  The fuel economy improvement due to prediction
only can be as high as 12%."

To isolate the prediction effect exactly as the paper does, both variants
here control the powertrain only (auxiliaries fixed at the preferred
600 W): ``proposed``-style RL with the exponential predictor in the state
versus the identical agent without it.  Fuel is SoC-corrected so a variant
cannot "win" by draining the battery.

Expected shape: with-prediction <= without-prediction on every cycle, with
a gain in the ~3-12% band and the largest gains on the transient urban
profiles.
"""

import pytest

from benchmarks.common import SEED, bench_cycle, bench_episodes, report
from repro.analysis import normalized_fuel, render_figure_series
from repro.control.rl_controller import build_rl_controller
from repro.powertrain import PowertrainSolver
from repro.rl.agent import ActionSpaceConfig
from repro.sim import Simulator, evaluate_stationary, train
from repro.vehicle import default_vehicle

CYCLES = ("OSCAR", "UDDS", "MODEM")


def _fuel(cycle_name: str, with_prediction: bool) -> float:
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)
    variant = "proposed" if with_prediction else "no_prediction"
    controller = build_rl_controller(
        solver, variant=variant,
        action_config=ActionSpaceConfig(control_aux=False), seed=SEED)
    cycle = bench_cycle(cycle_name)
    train(simulator, controller, cycle, episodes=bench_episodes(),
          evaluate_after=False)
    return evaluate_stationary(simulator, controller,
                               cycle).corrected_fuel()


@pytest.mark.benchmark(group="fig2")
def test_fig2_prediction_gain(benchmark):
    """Regenerate Figure 2 and check its shape."""
    results = {}

    def run_all():
        for name in CYCLES:
            results[name] = (_fuel(name, with_prediction=True),
                             _fuel(name, with_prediction=False))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    series = {"with prediction": {}, "without prediction": {}}
    gains = {}
    for name, (with_pred, without_pred) in results.items():
        series["with prediction"][name] = normalized_fuel(with_pred,
                                                          without_pred)
        series["without prediction"][name] = 1.0
        gains[name] = 100.0 * (1.0 - with_pred / without_pred)

    report("fig2_prediction", render_figure_series(
        "Figure 2: normalized fuel consumption (without prediction = 1.0)",
        series)
        + "\nPrediction-only fuel economy gain per cycle: "
        + ", ".join(f"{k}={v:+.1f}%" for k, v in gains.items())
        + "\nPaper: gain up to 12%")

    # Shape checks: prediction never hurts materially, and the best gain is
    # substantial (a few percent at least).
    for name, gain in gains.items():
        assert gain > -2.0, f"prediction hurt fuel economy on {name}"
    assert max(gains.values()) > 1.0, "prediction produced no gain anywhere"
