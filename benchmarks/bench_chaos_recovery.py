"""Chaos-recovery bench: fault detection and recovery-path latency.

Runs a deterministic :func:`repro.chaos.run_campaign` over the full fault
catalog (torn/duplicated/reordered journals, ENOSPC, slow I/O,
SIGTERM-proof hangs, policy bit rot, checkpoint corruption) and reports
the figures of merit the robustness tentpole promises: **100% detection**
across all faults, **100% recovery** across resumable faults, and the
wall-clock cost of the documented recovery paths (p50/p99 from the
campaign's constant-memory telemetry histogram).

Emits ``benchmarks/results/BENCH_chaos_recovery.json`` (schema in
``benchmarks/common.py``; validated by ``scripts/check_bench_schema.py``).
Run ``python benchmarks/bench_chaos_recovery.py --baseline`` to also
refresh the committed trajectory baseline ``BENCH_chaos_recovery.json``
at the repo root.  Environment knob: ``REPRO_BENCH_CHAOS_SEEDS``
(default 5 campaign seeds).
"""

from __future__ import annotations

import os
import sys

from repro.chaos import FAULT_KINDS, run_campaign

from benchmarks.common import emit_json, metric, report

_ROOT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_chaos_recovery.json")


def _seeds() -> int:
    return int(os.environ.get("REPRO_BENCH_CHAOS_SEEDS", 5))


def run_bench(write_baseline: bool = False) -> dict:
    """Run the campaign and emit the JSON + rendered table."""
    seeds = _seeds()
    campaign = run_campaign(seeds=seeds)

    latency = campaign.latency
    p50_ms = latency.quantile(0.50) * 1e3 if latency.count else 0.0
    p99_ms = latency.quantile(0.99) * 1e3 if latency.count else 0.0
    mean_ms = latency.mean() * 1e3 if latency.count else 0.0

    metrics = [
        metric("detection_rate", campaign.detection_rate, "fraction"),
        metric("recovery_rate", campaign.recovery_rate, "fraction"),
        metric("recovery_p50_ms", p50_ms, "ms"),
        metric("recovery_p99_ms", p99_ms, "ms"),
        metric("recovery_mean_ms", mean_ms, "ms"),
        metric("faults_injected", campaign.faults, "count"),
        metric("invariant_violations", len(campaign.violations), "count"),
        metric("campaign_seeds", seeds, "count"),
        metric("campaign_elapsed_s", campaign.elapsed_s, "s"),
    ]

    lines = [
        f"Chaos recovery: {seeds} seed(s) x {len(FAULT_KINDS)} fault "
        f"kind(s) = {campaign.faults} injections",
        "",
        campaign.render(),
    ]
    report("chaos_recovery", "\n".join(lines), metrics=metrics)
    if write_baseline:
        emit_json("chaos_recovery", metrics, path=_ROOT_BASELINE)
    return {"campaign": campaign, "metrics": metrics}


def test_chaos_recovery_invariants_hold():
    """The tentpole's acceptance criterion: full detection and recovery."""
    outcome = run_bench()
    campaign = outcome["campaign"]
    assert campaign.clean, (
        f"chaos campaign found broken invariants: "
        f"detection {campaign.detection_rate:.0%}, "
        f"recovery {campaign.recovery_rate:.0%}, "
        f"{len(campaign.violations)} violation(s)")


if __name__ == "__main__":
    result = run_bench(write_baseline="--baseline" in sys.argv[1:])
    campaign = result["campaign"]
    print(f"detection: {campaign.detection_rate:.0%}, "
          f"recovery: {campaign.recovery_rate:.0%}")
