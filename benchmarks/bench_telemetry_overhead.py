"""Telemetry overhead bench: the cost of full instrumentation.

Runs the same RL training workload as ``bench_throughput.py`` twice —
once with telemetry disabled (``Simulator(solver)``, the production
default) and once writing spans, sampled step events, and metrics to a
JSONL sink — and reports steps/sec for both plus the relative overhead.
The observability tentpole's acceptance budget is **< 5 % overhead**
with the default 1-in-50 step sampling.

Emits ``benchmarks/results/BENCH_telemetry_overhead.json`` (schema in
``benchmarks/common.py``; validated by ``scripts/check_bench_schema.py``).
Run ``python benchmarks/bench_telemetry_overhead.py --baseline`` to also
refresh the committed trajectory baseline ``BENCH_telemetry_overhead.json``
at the repo root.  Environment knobs:
``REPRO_BENCH_TELEMETRY_EPISODES`` (default 3, per leg),
``REPRO_BENCH_TELEMETRY_REPEATS`` (default 3, best-of legs), and
``REPRO_BENCH_TELEMETRY_CYCLE`` (default ``udds``).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from typing import Optional

from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, train
from repro.telemetry import Telemetry
from repro.vehicle import default_vehicle

from benchmarks.common import SEED, emit_json, metric, report

_ROOT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_telemetry_overhead.json")

OVERHEAD_BUDGET_PCT = 5.0
"""Acceptance ceiling for the instrumented-over-plain slowdown."""


def _episodes() -> int:
    return int(os.environ.get("REPRO_BENCH_TELEMETRY_EPISODES", 3))


def _cycle_name() -> str:
    return os.environ.get("REPRO_BENCH_TELEMETRY_CYCLE", "udds")


def _repeats() -> int:
    return int(os.environ.get("REPRO_BENCH_TELEMETRY_REPEATS", 3))


def _measure(cycle, episodes: int, telemetry: Optional[Telemetry]) -> dict:
    """Train ``episodes`` drives of ``cycle``; return throughput figures."""
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver, telemetry=telemetry)
    controller = build_rl_controller(solver, variant="proposed", seed=SEED)
    t0 = time.perf_counter()
    train(simulator, controller, cycle, episodes=episodes,
          evaluate_after=False, seed=SEED)
    elapsed = time.perf_counter() - t0
    steps = episodes * (len(cycle) - 1)
    return {"steps_per_sec": steps / elapsed, "steps": steps,
            "elapsed_s": elapsed}


def run_bench(write_baseline: bool = False) -> dict:
    """Run both legs and emit the JSON + rendered table."""
    cycle = standard_cycle(_cycle_name())
    episodes = _episodes()

    # Warm-up leg so import costs and allocator warm-up hit neither
    # measured leg; then interleave the two legs and keep the best of
    # each (scheduler noise on a shared box dwarfs the effect measured).
    _measure(cycle, 1, None)
    plain = {"steps_per_sec": 0.0}
    instrumented = {"steps_per_sec": 0.0}
    events = 0
    for rep in range(_repeats()):
        leg = _measure(cycle, episodes, None)
        if leg["steps_per_sec"] > plain["steps_per_sec"]:
            plain = leg
        with tempfile.TemporaryDirectory() as tmp:
            with Telemetry(os.path.join(tmp, "bench.jsonl")) as telemetry:
                leg = _measure(cycle, episodes, telemetry)
            events = sum(1 for _ in open(os.path.join(tmp, "bench.jsonl")))
        if leg["steps_per_sec"] > instrumented["steps_per_sec"]:
            instrumented = leg

    overhead_pct = 100.0 * (plain["steps_per_sec"]
                            / instrumented["steps_per_sec"] - 1.0)

    metrics = [
        metric("steps_per_sec_disabled", plain["steps_per_sec"], "steps/s"),
        metric("steps_per_sec_enabled", instrumented["steps_per_sec"],
               "steps/s"),
        metric("overhead_pct", overhead_pct, "%"),
        metric("events_written", events, "count"),
        metric("workload_episodes", episodes, "count"),
        metric("workload_steps", plain["steps"], "count"),
    ]

    lines = [
        "Telemetry overhead: RL training workload "
        f"({_cycle_name().upper()}, {episodes} episode(s) per leg)",
        "",
        f"{'telemetry':12s} {'steps/s':>10s} {'elapsed s':>10s}",
        f"{'disabled':12s} {plain['steps_per_sec']:10.1f} "
        f"{plain['elapsed_s']:10.2f}",
        f"{'enabled':12s} {instrumented['steps_per_sec']:10.1f} "
        f"{instrumented['elapsed_s']:10.2f}",
        "",
        f"overhead: {overhead_pct:.2f}% "
        f"(budget < {OVERHEAD_BUDGET_PCT:.0f}%), "
        f"{events} events written",
    ]
    report("telemetry_overhead", "\n".join(lines), metrics=metrics)
    if write_baseline:
        emit_json("telemetry_overhead", metrics, path=_ROOT_BASELINE)
    return {"overhead_pct": overhead_pct, "metrics": metrics}


def test_telemetry_overhead_within_budget():
    """The tentpole's acceptance criterion: < 5% instrumented slowdown."""
    outcome = run_bench()
    assert outcome["overhead_pct"] < OVERHEAD_BUDGET_PCT, (
        f"telemetry overhead {outcome['overhead_pct']:.2f}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT:.0f}% budget")


if __name__ == "__main__":
    result = run_bench(write_baseline="--baseline" in sys.argv[1:])
    print(f"overhead: {result['overhead_pct']:.2f}%")
