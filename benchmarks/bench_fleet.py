"""Fleet serving bench: throughput, latency, swap and rollback cost.

Publishes a deterministic policy to a temporary registry, then measures
the serving layer end to end with :class:`repro.serve.FleetSimulator`
driving a heterogeneous vehicle population (cycle x auxiliary load x
fault scenario) through a :class:`repro.serve.PolicyServer`:

* **decisions/sec** and **vehicles/min** of the fleet run, plus
  decision-request latency p50/p99 from the bounded queue;
* **batched_decision_speedup** — batched ``decide`` against a
  state-at-a-time loop, the machine-independent ratio gated by
  ``scripts/check_bench_schema.py --compare``;
* **hot-swap latency** p50/p99 over repeated stage+flip cycles between
  two published versions;
* **canary rollback latency** p50/p99 — wall-clock and decisions-to-
  verdict over repeated forced-regression rollouts (a scrambled
  candidate against a healthy incumbent).

Emits ``benchmarks/results/BENCH_fleet.json`` (schema in
``benchmarks/common.py``).  Run ``python benchmarks/bench_fleet.py
--baseline`` to also refresh the committed trajectory baseline
``BENCH_fleet.json`` at the repo root.  Environment knobs:
``REPRO_BENCH_FLEET_VEHICLES`` (default 20000) and
``REPRO_BENCH_FLEET_STEPS`` (default 60).
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.control.rl_controller import build_rl_controller
from repro.powertrain import PowertrainSolver
from repro.serve import (
    CanaryConfig,
    FleetConfig,
    FleetSimulator,
    PolicyRegistry,
    PolicyServer,
)
from repro.vehicle import default_vehicle

from benchmarks.common import SEED, emit_json, metric, report

_ROOT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_fleet.json")


def _fleet_shape() -> tuple:
    return (int(os.environ.get("REPRO_BENCH_FLEET_VEHICLES", 20_000)),
            int(os.environ.get("REPRO_BENCH_FLEET_STEPS", 60)))


def _published_registry(root: Path) -> PolicyRegistry:
    """A registry holding a healthy v1/v2 pair and a scrambled v3."""
    solver = PowertrainSolver(default_vehicle())
    agent = build_rl_controller(solver, seed=SEED).agent
    rng = np.random.default_rng(SEED)
    agent.learner.qtable.values[:] = rng.normal(
        size=agent.learner.qtable.values.shape)
    registry = PolicyRegistry(root)
    registry.publish(agent)  # v1: the incumbent
    registry.publish(agent)  # v2: bit-identical swap partner
    from repro.rl.persistence import _fingerprint
    registry.publish_table(
        np.zeros_like(agent.learner.qtable.values) - 5.0,
        _fingerprint(agent))  # v3: a regressed candidate for rollbacks
    return registry


def _batched_speedup(server: PolicyServer) -> float:
    """Batched decide vs a state-at-a-time loop (higher is better).

    Both paths take the best of several timing rounds so the ratio is a
    stable figure of merit rather than a scheduler-noise sample — it is
    the regression-gated metric in ``check_bench_schema.py``.
    """
    num_states = server.active_artifact.num_states
    rng = np.random.default_rng(SEED)
    states = rng.integers(0, num_states, size=4096)
    server.decide(states)  # warm the LRU cache for both paths
    reps, rounds = 20, 5
    batched_rate = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            server.decide(states)
        batched_rate = max(
            batched_rate, reps * states.size / (time.perf_counter() - start))
    scalar = states[:256]
    scalar_rate = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        for state in scalar:
            server.decide(state)
        scalar_rate = max(
            scalar_rate, scalar.size / (time.perf_counter() - start))
    return batched_rate / scalar_rate


def _swap_latencies(server: PolicyServer, swaps: int = 20) -> np.ndarray:
    """Wall-clock of repeated hot-swaps between the identical v1/v2."""
    samples = []
    for i in range(swaps):
        rep = server.swap(version=1 + (i % 2))
        assert rep.activated, rep.reason
        samples.append(rep.elapsed_s)
    return np.asarray(samples)


def _rollback_samples(registry: PolicyRegistry,
                      runs: int = 5) -> tuple:
    """(latency_s, decisions) of repeated forced canary rollbacks."""
    latencies, decisions = [], []
    for i in range(runs):
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        server.begin_canary(version=3, canary_config=CanaryConfig(
            fraction=0.2, min_samples=64, sigmas=2.0,
            decision_budget=10_000))
        result = FleetSimulator(server, FleetConfig(
            vehicles=512, steps=40, seed=SEED + i)).run()
        assert result.canary_verdict == "rollback", result.canary_verdict
        latencies.append(result.rollback["latency_s"])
        decisions.append(result.rollback["decisions"])
    return np.asarray(latencies), np.asarray(decisions)


def run_bench(write_baseline: bool = False) -> dict:
    """Run the fleet bench and emit the JSON + rendered table."""
    vehicles, steps = _fleet_shape()
    with tempfile.TemporaryDirectory() as tmp:
        registry = _published_registry(Path(tmp) / "registry")
        server = PolicyServer(registry)
        server.activate(registry.load(1))
        fleet = FleetSimulator(server, FleetConfig(
            vehicles=vehicles, steps=steps, seed=SEED))
        result = fleet.run()
        lat_ms = result.request_latencies_s * 1e3
        speedup = _batched_speedup(server)
        swap_ms = _swap_latencies(server) * 1e3
        rollback_s, rollback_decisions = _rollback_samples(registry)

    metrics = [
        metric("decisions_per_sec", result.decisions_per_sec, "1/s"),
        metric("vehicles_per_min", result.vehicles_per_min, "1/min"),
        metric("decision_latency_p50_ms",
               float(np.percentile(lat_ms, 50)), "ms"),
        metric("decision_latency_p99_ms",
               float(np.percentile(lat_ms, 99)), "ms"),
        metric("batched_decision_speedup", speedup, "x"),
        metric("swap_latency_p50_ms", float(np.percentile(swap_ms, 50)),
               "ms"),
        metric("swap_latency_p99_ms", float(np.percentile(swap_ms, 99)),
               "ms"),
        metric("rollback_latency_p50_ms",
               float(np.percentile(rollback_s * 1e3, 50)), "ms"),
        metric("rollback_latency_p99_ms",
               float(np.percentile(rollback_s * 1e3, 99)), "ms"),
        metric("rollback_decisions_p50",
               float(np.percentile(rollback_decisions, 50)), "count"),
        metric("rollback_decisions_p99",
               float(np.percentile(rollback_decisions, 99)), "count"),
        metric("fleet_vehicles", vehicles, "count"),
        metric("fleet_steps", steps, "count"),
        metric("shed_requests", result.shed_requests, "count"),
        metric("interventions", result.interventions, "count"),
    ]

    lines = [
        f"Fleet serving: {vehicles} vehicles x {steps} steps = "
        f"{result.decisions} decisions in {result.elapsed_s:.2f}s",
        "",
        f"  decisions/sec          {result.decisions_per_sec:14,.0f}",
        f"  vehicles/min           {result.vehicles_per_min:14,.0f}",
        f"  decision latency p50   {np.percentile(lat_ms, 50):11.3f} ms",
        f"  decision latency p99   {np.percentile(lat_ms, 99):11.3f} ms",
        f"  batched speedup        {speedup:11.1f} x",
        f"  swap latency p50/p99   {np.percentile(swap_ms, 50):.3f} / "
        f"{np.percentile(swap_ms, 99):.3f} ms",
        f"  rollback latency p50   "
        f"{np.percentile(rollback_s * 1e3, 50):.1f} ms "
        f"({np.percentile(rollback_decisions, 50):.0f} decisions)",
        f"  rollback latency p99   "
        f"{np.percentile(rollback_s * 1e3, 99):.1f} ms "
        f"({np.percentile(rollback_decisions, 99):.0f} decisions)",
        f"  shed requests          {result.shed_requests:14d}",
        f"  interventions          {result.interventions:14d}",
    ]
    report("fleet", "\n".join(lines), metrics=metrics)
    if write_baseline:
        emit_json("fleet", metrics, path=_ROOT_BASELINE)
    return {"result": result, "metrics": metrics, "speedup": speedup}


def test_fleet_bench_invariants_hold():
    """The tentpole's figures of merit exist and are sane."""
    outcome = run_bench()
    result = outcome["result"]
    assert result.decisions > 0 and result.decisions_per_sec > 0
    assert outcome["speedup"] > 1.0, (
        f"batched serving is not faster than scalar serving "
        f"({outcome['speedup']:.2f}x)")


if __name__ == "__main__":
    out = run_bench(write_baseline="--baseline" in sys.argv[1:])
    print(f"decisions/sec: {out['result'].decisions_per_sec:,.0f}, "
          f"batched speedup: {out['speedup']:.1f}x")
