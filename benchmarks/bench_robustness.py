"""Robustness bench — graceful degradation under injected faults.

Every controller (the trained RL joint controller, the rule-based
baseline, and ECMS) is prepared on the *healthy* vehicle and then driven
through each built-in fault scenario (battery fade, EM derating, engine
limp-home, sensor corruption, auxiliary load spikes, and the combined
``limp_home`` study).  The sweep asserts the core robustness promise:
every faulted run completes with finite traces and the controllers
degrade gracefully instead of collapsing.

The grid executes through the supervised executor: serial in-process by
default (bit-identical to the historical loop), or fanned out to
isolated worker processes when ``REPRO_BENCH_JOBS`` is set — either way
the sweep must achieve full coverage with an empty quarantine list.
"""

import os

import pytest

from benchmarks.common import SEED, ablation_episodes, report
from repro.control import ECMSController, RuleBasedController
from repro.control.rl_controller import build_rl_controller
from repro.cycles import standard_cycle
from repro.exec import Supervisor
from repro.faults import builtin_scenarios
from repro.powertrain import PowertrainSolver
from repro.sim import Simulator, run_robustness, train
from repro.vehicle import default_vehicle


@pytest.mark.benchmark(group="robustness")
def test_robustness_sweep(benchmark):
    cycle = standard_cycle("NYCC")
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)

    rl = build_rl_controller(solver, seed=SEED)
    train(simulator, rl, cycle, episodes=ablation_episodes(15),
          evaluate_after=False)
    controllers = {
        "rl (proposed)": rl,
        "rule-based": RuleBasedController(solver),
        "ecms": ECMSController(solver),
    }
    scenarios = builtin_scenarios()
    assert len(scenarios) >= 4

    executor = Supervisor(jobs=int(os.environ.get("REPRO_BENCH_JOBS", "1")),
                          failure_mode="quarantine")
    sweep = {}

    def run_sweep():
        sweep["report"] = run_robustness(simulator, controllers, scenarios,
                                         cycle, seed=SEED, executor=executor)
        return sweep["report"]

    benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    result = sweep["report"]
    report("robustness", result.render())

    # Every fault run must complete with finite traces (the watchdog
    # would have raised otherwise) and the schedules must actually fire.
    assert not result.failures, [f.describe() for f in result.failures]
    assert result.coverage == 1.0
    assert len(result.rows) == len(controllers) * (len(scenarios) + 1)
    for row in result.rows:
        assert row.finite, f"{row.controller}/{row.scenario} went non-finite"
        if row.scenario != "(healthy)":
            assert row.fault_activations >= 1
            assert row.faulted_steps > 0
    # Graceful degradation: faulted drives lose efficiency but nobody
    # collapses to a fraction of their healthy fuel economy.
    assert result.worst_retention() > 0.3
