"""Ablation — state-discretisation granularity (paper Sections 4.2/4.3.1).

The paper's central complexity argument: finer state discretisation adds
information but multiplies the state-action pairs TD(lambda) must visit.
This bench trains coarse / default / fine discretisations with an equal
budget.

Expected shape: under the tight equal budget, coarser wins — the coarsest
grid must beat the finest (the paper's convergence-versus-resolution
trade-off made visible).  The default grid trades some of that early speed
for the resolution the longer main-bench runs exploit.
"""

import pytest

from benchmarks.common import SEED, ablation_episodes, bench_cycle, report
from repro.analysis import render_table
from repro.control.rl_controller import RLController
from repro.powertrain import PowertrainSolver
from repro.prediction import ExponentialPredictor
from repro.rl.agent import JointControlAgent
from repro.rl.discretize import StateDiscretizer
from repro.rl.exploration import EpsilonGreedy
from repro.sim import Simulator, train
from repro.vehicle import default_vehicle

EPISODES = ablation_episodes(25)

GRIDS = {
    "coarse": dict(power_edges=(500.0, 8_000.0), speed_edges=(8.0,),
                   soc_bins=4),
    "default": {},
    "fine": dict(power_edges=(-8000.0, -3000.0, -500.0, 500.0, 2000.0,
                              4000.0, 7000.0, 10_000.0, 14_000.0, 19_000.0,
                              25_000.0),
                 speed_edges=(0.5, 3.0, 6.0, 9.0, 12.0, 16.0, 20.0, 25.0),
                 soc_bins=16),
}


def _train(grid_kwargs):
    solver = PowertrainSolver(default_vehicle())
    battery = solver.params.battery
    discretizer = StateDiscretizer(
        soc_min=battery.soc_min, soc_max=battery.soc_max,
        prediction_levels=3, **grid_kwargs)
    agent = JointControlAgent(
        solver, discretizer=discretizer, predictor=ExponentialPredictor(),
        exploration=EpsilonGreedy(seed=SEED), seed=SEED)
    run = train(Simulator(solver), RLController(agent), bench_cycle("SC03"),
                episodes=EPISODES)
    return run.evaluation, discretizer.num_states


@pytest.mark.benchmark(group="ablation-discretization")
def test_ablation_discretization(benchmark):
    results = {}

    def run_all():
        for label, kwargs in GRIDS.items():
            results[label] = _train(kwargs)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    for label, (evaluation, states) in results.items():
        rows[label] = [float(states), evaluation.total_paper_reward,
                       evaluation.corrected_mpg()]
    report("ablation_discretization", render_table(
        f"Ablation: state discretisation (SC03 x2, {EPISODES} episodes)",
        ["States", "Reward", "MPG"], rows))

    coarse_reward = results["coarse"][0].total_paper_reward
    fine_reward = results["fine"][0].total_paper_reward
    assert coarse_reward >= fine_reward - 10.0, \
        "the coarsest grid must beat the finest under a tight budget " \
        "(convergence is proportional to the state-action count)"
