"""Table 1 — HEV key parameters (and solver throughput).

The paper's Table 1 lists the simulated vehicle's key parameters (the
published table is an image; our parameter set follows ADVISOR Prius-class
defaults, documented in ``repro/vehicle/params.py``).  This bench prints
the full parameter table and times the quantity that makes or breaks the
whole reproduction: batched powertrain-solver evaluations per second.
"""

import numpy as np
import pytest

from benchmarks.common import report
from repro.powertrain import PowertrainSolver
from repro.units import rads_to_rpm
from repro.vehicle import default_vehicle


def _print_table(params) -> None:
    rows = [
        ("Vehicle mass", f"{params.body.mass:.0f} kg"),
        ("Air drag coefficient C_D", f"{params.body.drag_coefficient:.2f}"),
        ("Frontal area A_F", f"{params.body.frontal_area:.1f} m^2"),
        ("Rolling resistance C_R", f"{params.body.rolling_resistance:.3f}"),
        ("Wheel radius r_wh", f"{params.body.wheel_radius:.3f} m"),
        ("ICE max power", f"{params.engine.max_power / 1000:.0f} kW"),
        ("ICE max torque", f"{params.engine.max_torque:.0f} N*m"),
        ("ICE speed range",
         f"{rads_to_rpm(params.engine.min_speed):.0f}-"
         f"{rads_to_rpm(params.engine.max_speed):.0f} rpm"),
        ("ICE peak efficiency", f"{params.engine.peak_efficiency:.2f}"),
        ("EM max power", f"{params.motor.max_power / 1000:.0f} kW"),
        ("EM max torque", f"{params.motor.max_torque:.0f} N*m"),
        ("Battery capacity",
         f"{params.battery.capacity / 3600:.1f} Ah"),
        ("Battery nominal voltage",
         f"{(params.battery.voltage_at_empty + params.battery.voltage_at_full) / 2:.0f} V"),
        ("Battery SoC window",
         f"{params.battery.soc_min:.0%}-{params.battery.soc_max:.0%}"),
        ("Battery current limit", f"{params.battery.max_current:.0f} A"),
        ("Gear ratios (incl. final drive)",
         ", ".join(f"{r:.2f}" for r in params.transmission.gear_ratios)),
        ("EM reduction ratio", f"{params.transmission.reduction_ratio:.2f}"),
        ("Preferred auxiliary power",
         f"{params.auxiliary.preferred_power:.0f} W"),
        ("Auxiliary power range",
         f"{params.auxiliary.min_power:.0f}-{params.auxiliary.max_power:.0f} W"),
    ]
    width = max(len(k) for k, _ in rows) + 2
    lines = ["Table 1: HEV key parameters", "-" * (width + 20)]
    lines.extend(f"  {key.ljust(width)}{value}" for key, value in rows)
    report("table1_parameters", "\n".join(lines))


@pytest.mark.benchmark(group="table1")
def test_table1_parameters_and_solver_throughput(benchmark):
    """Print Table 1 and measure solver batch-evaluation throughput."""
    params = default_vehicle()
    solver = PowertrainSolver(params)
    currents = np.linspace(-60.0, 60.0, 9).repeat(35)
    gears = np.tile(np.repeat(np.arange(5), 7), 9)
    aux = np.tile(np.linspace(200.0, 2000.0, 7), 45)

    def batch_eval():
        return solver.evaluate_actions(15.0, 0.4, 0.6, currents, gears, aux,
                                       dt=1.0)

    result = benchmark(batch_eval)
    assert int(np.sum(result.feasible)) > 0
    _print_table(params)
