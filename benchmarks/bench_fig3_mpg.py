"""Figure 3 — MPG: proposed joint control vs rule-based.

Paper: "Figure 3 shows the corresponding MPG values from the two policies
for different driving profiles.  The proposed framework achieves up to 29%
MPG improvement."

The runs are the same four training sessions as Table 2 (shared via the
bench cache, exactly as the paper reports two views of one experiment).
MPG is SoC-corrected so the two controllers are charge-fair.

Expected shape: proposed >= rule-based on most cycles, with the largest
improvements on the urban profiles and a clearly positive best case.
"""

import pytest

from benchmarks.common import report, rule_based_result, trained_rl_result
from repro.analysis import improvement_percent, render_table

CYCLES = ("OSCAR", "UDDS", "SC03", "HWFET")


@pytest.mark.benchmark(group="fig3")
def test_fig3_mpg(benchmark):
    """Regenerate Figure 3 and check its shape."""
    results = {}

    def run_all():
        for name in CYCLES:
            results[name] = (trained_rl_result(name, "proposed"),
                             rule_based_result(name))
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = {}
    improvements = {}
    for name, (rl, rule) in results.items():
        rl_mpg = rl.corrected_mpg()
        rule_mpg = rule.corrected_mpg()
        rows[name] = [rl_mpg, rule_mpg]
        improvements[name] = improvement_percent(rl_mpg, rule_mpg)

    report("fig3_mpg", render_table(
        "Figure 3: MPG (SoC-corrected)", ["Proposed", "Rule-based"], rows,
        precision=1)
        + "\nMPG improvement: "
        + ", ".join(f"{k}={v:+.1f}%" for k, v in improvements.items())
        + "\nPaper: improvement up to 29%")

    wins = sum(1 for v in improvements.values() if v > -1.0)
    assert wins >= 3, \
        f"proposed must match or beat rule-based MPG on most cycles ({wins}/4)"
    assert max(improvements.values()) > 3.0, \
        "best-case MPG improvement should be clearly positive"
