#!/usr/bin/env python3
"""CI smoke test: a 3-seed chaos campaign must hold every invariant.

Runs the full fault catalog (torn/duplicated/reordered journals, ENOSPC,
slow I/O, SIGTERM-proof hangs, policy bit rot, checkpoint corruption)
across 3 campaign seeds and requires what ``docs/ROBUSTNESS.md``
promises: 100% detection, 100% recovery on resumable faults, zero
invariant violations, and a deterministic campaign signature.

Exits non-zero with the rendered report on the first broken invariant.
Run from anywhere: ``python scripts/smoke_chaos.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.chaos import FAULT_KINDS, ChaosPlan, run_campaign  # noqa: E402

SEEDS = 3


def main() -> int:
    report = run_campaign(seeds=SEEDS,
                          progress=lambda line: print(f"  {line}",
                                                      file=sys.stderr))
    print(report.render())
    failures = []
    if report.detection_rate != 1.0:
        failures.append(f"detection rate {report.detection_rate:.0%} < 100%")
    if report.recovery_rate != 1.0:
        failures.append(f"recovery rate {report.recovery_rate:.0%} < 100%")
    if report.violations:
        failures.append(f"{len(report.violations)} invariant violation(s)")
    if report.faults != SEEDS * len(FAULT_KINDS):
        failures.append(f"ran {report.faults} faults, expected "
                        f"{SEEDS * len(FAULT_KINDS)} — coverage lied")
    for seed in range(SEEDS):
        if ChaosPlan.generate(seed) != ChaosPlan.generate(seed):
            failures.append(f"seed {seed}: fault plan is not deterministic")
    if failures:
        print("smoke_chaos: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"smoke_chaos: OK ({report.faults} faults over {SEEDS} seeds, "
          f"all detected, {report.recovered}/{report.resumable} "
          "resumable recovered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
