#!/usr/bin/env python3
"""CI smoke test: a 2-worker supervised sweep with injected failures.

Exercises the supervised execution layer end to end, fast enough for CI:

1. a parallel sweep (2 isolated workers) over four tasks — two healthy,
   one crashing, one hanging past the wall-clock timeout — must complete,
   quarantine exactly the two bad tasks with structured failure records,
   and journal everything to a manifest;
2. re-launching the same sweep with ``resume`` must replay the finished
   tasks from the manifest without executing anything healthy again and
   produce identical results.

Exits non-zero with a message on the first broken invariant.  Run from
anywhere: ``python scripts/smoke_parallel_sweep.py``.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import Supervisor, SweepManifest, Task  # noqa: E402


def _ok_task(key: str, value: int) -> Task:
    return Task(key=key, spec={"kind": "smoke", "key": key},
                fn=lambda: value * value)


def _crash() -> None:
    raise RuntimeError("injected crash")


def _hang() -> None:
    time.sleep(60)


def _sweep(manifest: SweepManifest):
    supervisor = Supervisor(jobs=2, timeout=2.0, retries=1,
                            manifest=manifest, failure_mode="quarantine")
    tasks = [
        _ok_task("alpha", 3),
        Task(key="crash", spec={"kind": "smoke", "key": "crash"}, fn=_crash),
        _ok_task("beta", 4),
        Task(key="hang", spec={"kind": "smoke", "key": "hang"}, fn=_hang),
    ]
    return supervisor.run(tasks)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.jsonl"
        first = _sweep(SweepManifest(path))
        assert first.results == {"alpha": 9, "beta": 16}, first.results
        assert sorted(first.quarantined) == ["crash", "hang"], \
            first.quarantined
        kinds = {f.key: f.kind for f in first.failures}
        assert kinds["crash"] == "error", kinds
        assert kinds["hang"] == "timeout", kinds
        attempts = {f.key: f.attempts for f in first.failures}
        assert attempts == {"crash": 2, "hang": 2}, attempts  # 1 retry each
        assert all(f.exception_type == "RuntimeError"
                   for f in first.failures if f.key == "crash")
        assert abs(first.coverage - 0.5) < 1e-12

        second = _sweep(SweepManifest(path, resume=True))
        assert second.results == first.results, second.results
        assert sorted(second.resumed) == ["alpha", "beta"], second.resumed
        assert sorted(second.quarantined) == ["crash", "hang"]
    print("smoke_parallel_sweep: OK "
          f"({first.describe_coverage()}; resume replayed "
          f"{len(second.resumed)} tasks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
