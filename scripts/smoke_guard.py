#!/usr/bin/env python3
"""CI smoke test: the safety supervisor must ride through a severe fault.

Drives one UDDS episode with a deliberately brutal mid-cycle fault — the
engine and motor both lose most of their rating while an unsheddable
auxiliary load appears — under a :class:`repro.safety.SafetySupervisor`
with hair-trigger monitor thresholds.  The run must

1. complete the full cycle (no unstructured exception),
2. escalate out of NOMINAL and finish the drive in LIMP_HOME on the
   rule-based fallback,
3. keep every trace finite and report a nonzero corrected MPG.

This scenario is intentionally *not* one of the built-in studies: the
built-ins model survivable degradation (the retention benchmark asserts
they stay drivable), whereas this one exists to prove the supervisor's
escalation path end to end.  Exits non-zero with a message on the first
broken invariant.  Run from anywhere: ``python scripts/smoke_guard.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import default_vehicle  # noqa: E402
from repro.control import RuleBasedController  # noqa: E402
from repro.cycles import udds  # noqa: E402
from repro.faults.models import (  # noqa: E402
    AuxLoadSpike,
    EnginePowerLoss,
    MotorDerating,
)
from repro.faults.scenarios import Scenario  # noqa: E402
from repro.faults.schedule import FaultSchedule, ScheduledFault  # noqa: E402
from repro.powertrain.solver import PowertrainSolver  # noqa: E402
from repro.safety import SafetySupervisor, SupervisorConfig  # noqa: E402
from repro.sim import Simulator, evaluate  # noqa: E402


def severe_scenario() -> Scenario:
    """A catastrophic combined failure striking at t=40 s."""
    return Scenario(
        "smoke_catastrophic",
        "simultaneous near-total ICE and EM loss with a stuck heater",
        FaultSchedule([
            ScheduledFault(EnginePowerLoss(power_loss=0.9), start=40.0),
            ScheduledFault(MotorDerating(power_derate=0.9,
                                         torque_derate=0.9),
                           start=40.0, ramp=10.0),
            ScheduledFault(AuxLoadSpike(extra_power=1500.0), start=40.0),
        ]))


def main() -> int:
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)
    # Hair-trigger thresholds: the smoke run must escalate within a few
    # seconds of the fault, and must not recover before the cycle ends.
    config = SupervisorConfig(escalate_after=2, recover_after=10_000,
                              infeasible_warn_after=3,
                              infeasible_severe_after=8,
                              soc_warn_after=5, soc_severe_after=30)
    supervisor = SafetySupervisor(RuleBasedController(solver), solver,
                                  config=config)
    result = evaluate(simulator, supervisor, udds(),
                      faults=severe_scenario().schedule)

    report = result.safety
    assert report is not None, "episode result carries no safety report"
    assert not report.halted, "supervisor halted instead of limping home"
    assert report.final_mode == "LIMP_HOME", (
        f"expected the drive to end in LIMP_HOME, got {report.final_mode} "
        f"(time in mode: {report.time_in_mode()})")
    assert report.interventions > 0, "no guard interventions were recorded"
    assert any(t.target == "LIMP_HOME" for t in report.transitions), \
        "no transition into LIMP_HOME was journaled"
    for name, trace in (("fuel_rate", result.fuel_rate),
                        ("soc", result.soc), ("reward", result.reward)):
        assert np.all(np.isfinite(trace)), f"non-finite values in {name}"
    mpg = result.corrected_mpg()
    assert np.isfinite(mpg) and mpg > 0.0, \
        f"limp-home corrected MPG must be positive and finite, got {mpg}"

    modes = report.time_in_mode()
    print("smoke_guard: OK "
          f"(final mode {report.final_mode}, {report.interventions} "
          f"intervention(s), {len(report.transitions)} transition(s), "
          f"time in mode {modes}, corrected {mpg:.1f} MPG)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
