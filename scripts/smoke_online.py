#!/usr/bin/env python3
"""CI smoke test: the online-learning loop's headline promises, end to end.

Trains a tiny policy on a short synthetic cycle, publishes it to a
temporary registry, and drives the full resilient-learning story in
well under 5 seconds:

1. **Loop** — fleet rounds stream experience into crash-safe journals,
   the learner ingests every record (quarantine count must be zero),
   and a guarded promotion runs.
2. **Kill-and-resume bit-identity** — a learner checkpointed mid-stream,
   dropped, and resumed must reach the bit-identical table of an
   uninterrupted learner over the same records — even with a torn final
   line and a corrupt interior record injected into the journal (the
   torn line amputated, the corrupt one quarantined, both counted).
3. **Forced rollback with measured recovery** — promoting a poisoned
   (negated-table) candidate through the pipeline must end in an
   automatic canary rollback, with the incumbent verified bit-identical
   and the regression-recovery latency recorded.

Exits non-zero naming the first broken promise.  Run from anywhere:
``python scripts/smoke_online.py``.
"""

from __future__ import annotations

import sys
import tempfile
import time
import warnings
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.control.rl_controller import build_rl_controller  # noqa: E402
from repro.cycles import DriveCycle  # noqa: E402
from repro.learn import (  # noqa: E402
    ExperienceRecord,
    ExperienceStream,
    OnlineLearner,
    OnlineLearningLoop,
    PromotionPipeline,
    encode_record,
)
from repro.powertrain import PowertrainSolver  # noqa: E402
from repro.rl.persistence import _fingerprint  # noqa: E402
from repro.serve import (  # noqa: E402
    CanaryConfig,
    FleetConfig,
    FleetSimulator,
    PolicyRegistry,
    PolicyServer,
)
from repro.sim import Simulator, train  # noqa: E402
from repro.vehicle import default_vehicle  # noqa: E402


def _tiny_trained_agent():
    """A quickly but genuinely trained agent (short synthetic cycle)."""
    speeds = np.concatenate([np.linspace(0.0, 12.0, 20),
                             np.linspace(12.0, 0.0, 20)])
    cycle = DriveCycle("smoke-online", speeds)
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(solver, seed=7)
    train(Simulator(solver), controller, cycle, episodes=3,
          evaluate_after=False)
    return controller.agent


def _check_loop(registry, workdir, failures):
    config = FleetConfig(vehicles=48, steps=10, seed=3)
    with OnlineLearningLoop(registry, workdir, fleet_config=config,
                            promote_every=2) as loop:
        report = loop.run(2)
    streamed = sum(r.records_streamed for r in report.rounds)
    ingested = sum(r.records_ingested for r in report.rounds)
    quarantined = sum(r.quarantined for r in report.rounds)
    if streamed == 0 or ingested != streamed:
        failures.append(f"loop streamed {streamed} records but ingested "
                        f"{ingested}; the journal pipeline is lossy")
    elif quarantined:
        failures.append(f"a healthy loop quarantined {quarantined} of its "
                        "own records")
    elif report.rounds[1].promotion is None:
        failures.append("round 2 ran no guarded promotion")
    elif report.rounds[1].promotion.outcome not in (
            "promoted", "noop", "aborted"):
        failures.append(f"a healthy candidate came out "
                        f"{report.rounds[1].promotion.outcome!r}")
    else:
        print(f"  loop: {streamed} records streamed+ingested, promotion "
              f"{report.rounds[1].promotion.outcome}, serving "
              f"v{report.final_version}", file=sys.stderr)


def _check_resume(agent, workdir, failures):
    table = np.asarray(agent.learner.qtable.values, dtype=np.float64)
    fingerprint = _fingerprint(agent)
    num_states, num_actions = table.shape
    rng = np.random.default_rng(5)

    def _burst(directory, count, start):
        with ExperienceStream(directory) as stream:
            for i in range(count):
                stream.offer(ExperienceRecord(
                    state=int(rng.integers(num_states)),
                    action=int(rng.integers(num_actions)),
                    reward=float(rng.normal()),
                    next_state=int(rng.integers(num_states)),
                    policy_version=1, vehicle_id=start + i, step=0))
            stream.flush()
            return stream.path

    # One journal, written in two bursts with a torn line and a corrupt
    # record injected between them.
    path = _burst(workdir / "live", 40, 0)
    with open(path, "ab") as fh:
        fh.write(b'{"not": "a record"}\n')          # quarantined
        fh.write(encode_record(_probe_record()).encode()[:9])  # torn
    ckpt = workdir / "ckpt.json"
    learner = OnlineLearner(fingerprint, table, checkpoint_path=ckpt)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        first = learner.ingest(workdir / "live")
    del learner                                      # the "crash"
    _burst(workdir / "live", 25, 40)
    resumed = OnlineLearner.resume(ckpt)
    second = resumed.ingest(workdir / "live")

    rng = np.random.default_rng(5)
    ref_path = _burst(workdir / "ref", 40, 0)
    _burst(workdir / "ref", 25, 40)
    reference = OnlineLearner(fingerprint, table)
    ref_report = reference.ingest(workdir / "ref")

    if first.quarantined != 1 or first.amputated_bytes != 9:
        failures.append(
            f"injected corruption was miscounted: {first.quarantined} "
            f"quarantined, {first.amputated_bytes} bytes amputated")
    elif second.records != 25 or ref_report.records != 65:
        failures.append(
            f"resume consumed {second.records} records (want 25), the "
            f"reference {ref_report.records} (want 65)")
    elif not np.array_equal(resumed.table, reference.table):
        failures.append("kill-and-resume table differs from the "
                        "uninterrupted run — bit-identity is broken")
    else:
        print("  resume: torn line amputated, 1 record quarantined, "
              "resumed table bit-identical over 65 records",
              file=sys.stderr)


def _probe_record():
    return ExperienceRecord(state=0, action=0, reward=0.0, next_state=0,
                            policy_version=1, vehicle_id=0, step=0)


def _check_rollback(agent, workdir, failures):
    # A briefly-trained table is near-zero, so its negation ties back to
    # the same greedy actions; scramble it (as the fleet bench does) so
    # the poisoned candidate's regression is decisive.
    table = np.random.default_rng(11).normal(
        size=agent.learner.qtable.values.shape)
    fingerprint = _fingerprint(agent)
    registry = PolicyRegistry(workdir / "registry")
    registry.publish_table(table, fingerprint)
    poisoned = registry.publish_table(-table, fingerprint)
    server = PolicyServer(registry)
    server.activate(registry.load(1))
    probe = np.arange(min(96, server.active_artifact.num_states))
    before = server.decide(probe)
    pipeline = PromotionPipeline(
        server, registry,
        fleet_config=FleetConfig(vehicles=192, steps=30, seed=2),
        canary_config=CanaryConfig(fraction=0.25, min_samples=48,
                                   sigmas=2.0, decision_budget=4000,
                                   intervention_margin=0.02),
        max_rounds=6, round_steps=15)
    report = pipeline.promote(poisoned)
    if report.outcome != "rolled_back":
        failures.append(f"poisoned candidate came out {report.outcome!r} "
                        f"({report.reason}), not rolled_back")
    elif report.incumbent_intact is not True:
        failures.append("rollback could not verify the incumbent "
                        "bit-identical")
    elif report.recovery_s is None or report.recovery_s < 0.0:
        failures.append("rollback recorded no regression-recovery latency")
    elif not np.array_equal(server.decide(probe), before):
        failures.append("serving changed across the rollback")
    else:
        print(f"  rollback: poisoned v{poisoned} caught after "
              f"{report.canary_decisions} canary decision(s), recovered "
              f"in {report.recovery_s * 1e3:.1f} ms", file=sys.stderr)


def main() -> int:
    start = time.monotonic()
    failures = []
    agent = _tiny_trained_agent()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        registry = PolicyRegistry(root / "registry")
        registry.publish(agent)
        _check_loop(registry, root / "loop", failures)
        _check_resume(agent, root / "resume", failures)
        _check_rollback(agent, root / "rollback", failures)
    elapsed = time.monotonic() - start
    if failures:
        print("smoke_online: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"smoke_online: OK (loop + kill-and-resume bit-identity + "
          f"forced rollback in {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
