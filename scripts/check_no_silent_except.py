#!/usr/bin/env python3
"""Lint: no silently-swallowed exceptions outside annotated containment.

A supervised execution layer only reports failures honestly if nothing
below it eats exceptions.  This lint bans ``except: pass`` /
``except Exception: pass`` style handlers (a body that is only ``pass``
or ``...``) across the library, the scripts, and the benchmarks.

The supervisor's own containment points — places that *must* swallow
(e.g. reporting over a pipe that the parent may already have closed) —
are exempted by annotating the ``except`` line with a trailing
``# containment: <reason>`` comment.  The annotation is part of the
contract: it forces every swallow to state why losing the exception is
correct.

Exits non-zero listing every offending handler.  Run from anywhere:
``python scripts/check_no_silent_except.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

SCAN_ROOTS = ["src/repro", "scripts", "benchmarks"]
"""Directories (relative to the repo root) whose ``*.py`` files are linted."""

ANNOTATION = "# containment:"
"""Marker that exempts one handler, with a stated reason."""


def _is_silent(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all."""
    for node in handler.body:
        if isinstance(node, ast.Pass):
            continue
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
            continue  # a bare docstring/Ellipsis is still doing nothing
        return False
    return True


def offending_handlers(path: Path) -> List[Tuple[int, str]]:
    """``(line, description)`` for every unannotated silent handler."""
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    bad = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_silent(node):
            continue
        except_line = lines[node.lineno - 1]
        if ANNOTATION in except_line:
            continue
        caught = ("bare except" if node.type is None
                  else f"except {ast.unparse(node.type)}")
        bad.append((node.lineno, caught))
    return bad


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems = []
    for rel in SCAN_ROOTS:
        base = root / rel
        if not base.exists():
            problems.append(f"{rel}: declared scan root does not exist")
            continue
        for path in sorted(base.rglob("*.py")):
            for lineno, caught in offending_handlers(path):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: {caught} silently "
                    f"swallows (annotate '{ANNOTATION} <reason>' if this "
                    "is a deliberate containment point)")
    if problems:
        print("check_no_silent_except: FAIL", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"check_no_silent_except: OK ({len(SCAN_ROOTS)} roots clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
