#!/usr/bin/env python3
"""Lint: public API-boundary modules must raise structured errors.

The migration to the :mod:`repro.errors` hierarchy is pinned here: modules
declared below are the library's API boundaries, and raising a bare
``ValueError`` or ``RuntimeError`` from one of them would leak an
unstructured exception to callers that are promised ``ReproError``
subclasses (the CLI's clean error reporting depends on that promise).

Exits non-zero listing every offending ``raise`` site.  Run from anywhere:
``python scripts/check_no_bare_raise.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List, Tuple

API_BOUNDARY_MODULES = [
    "src/repro/cli.py",
    "src/repro/errors.py",
    "src/repro/fsio.py",
    "src/repro/chaos/*.py",
    "src/repro/exec/*.py",
    "src/repro/learn/*.py",
    "src/repro/serve/*.py",
    "src/repro/faults/*.py",
    "src/repro/sim/*.py",
    "src/repro/safety/*.py",
    "src/repro/telemetry/*.py",
    "src/repro/rl/persistence.py",
    "src/repro/rl/qtable.py",
    "src/repro/rl/reward.py",
    "src/repro/powertrain/solver.py",
    "src/repro/powertrain/operating_point.py",
    "src/repro/powertrain/tables.py",
    "src/repro/powertrain/reference.py",
    "src/repro/cycles/cycle.py",
    "src/repro/cycles/io.py",
    "src/repro/vehicle/battery.py",
    "src/repro/vehicle/auxiliary.py",
]
"""Glob patterns (relative to the repo root) of the declared boundaries."""

BANNED = ("ValueError", "RuntimeError")
"""Exception names that must not be raised bare at an API boundary."""


def offending_raises(path: Path) -> List[Tuple[int, str]]:
    """``(line, exception_name)`` for every banned raise in ``path``."""
    tree = ast.parse(path.read_text(), filename=str(path))
    bad = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id in BANNED:
            bad.append((node.lineno, target.id))
    return bad


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    problems = []
    for pattern in API_BOUNDARY_MODULES:
        files = sorted(root.glob(pattern))
        if not files:
            problems.append(f"{pattern}: declared boundary matched no files")
            continue
        for path in files:
            for lineno, name in offending_raises(path):
                problems.append(
                    f"{path.relative_to(root)}:{lineno}: raises bare {name} "
                    "(use a repro.errors class)")
    if problems:
        print("check_no_bare_raise: FAIL", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"check_no_bare_raise: OK "
          f"({len(API_BOUNDARY_MODULES)} boundary patterns clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
