#!/usr/bin/env python3
"""Tripwire: machine-readable bench results stay valid and fast.

Two duties:

1. **Schema validation** — every ``BENCH_*.json`` (the repo-root
   trajectory baselines and ``benchmarks/results/``) must conform to the
   shared schema emitted by :func:`benchmarks.common.emit_json`: an object
   with ``benchmark`` (str), ``schema_version`` (int), ``git_rev`` (str),
   ``timestamp`` (ISO-8601 string), and a non-empty ``metrics`` list of
   ``{"name": str, "value": finite number, "units": str}``.
2. **Throughput regression** — ``--compare NEW BASELINE`` additionally
   fails when a gated higher-is-better metric drops more than
   ``--tolerance`` (default 20%) below BASELINE's: the step pipeline's
   ``vectorized_speedup`` and the fleet server's
   ``batched_decision_speedup``.  Speedup ratios are compared rather
   than absolute throughput so the gate holds on machines slower or
   faster than the one that produced the baseline; pass ``--absolute``
   to also gate the machine-dependent metrics when old and new runs
   share one machine: higher-is-better ``steps_per_sec_vectorized``,
   ``decisions_per_sec`` and ``experience_records_per_sec`` floors,
   plus the lower-is-better ``regression_recovery_p99_ms`` ceiling.
   Metrics absent from the baseline are skipped, so one gate serves
   every ``BENCH_*.json`` pair.

Exits non-zero listing every violation.  Run from anywhere:
``python scripts/check_bench_schema.py [--compare NEW BASELINE]``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Dict, List

RATIO_METRICS = ("vectorized_speedup", "batched_decision_speedup")
"""Machine-independent higher-is-better metrics gated by ``--compare``."""

ABSOLUTE_METRICS = ("steps_per_sec_vectorized", "decisions_per_sec",
                    "experience_records_per_sec")
"""Machine-dependent higher-is-better metrics gated only with
``--absolute``."""

CEILING_METRICS = ("regression_recovery_p99_ms",)
"""Machine-dependent *lower-is-better* latency metrics gated only with
``--absolute``: the fresh value may not exceed the baseline by more
than the tolerance."""


def validate(path: Path) -> List[str]:
    """Schema problems of one bench JSON file (empty when valid)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    problems = []
    if not isinstance(payload, dict):
        return [f"{path}: top level must be a JSON object"]
    for key, kind in (("benchmark", str), ("schema_version", int),
                      ("git_rev", str), ("timestamp", str),
                      ("metrics", list)):
        if not isinstance(payload.get(key), kind):
            problems.append(
                f"{path}: field {key!r} missing or not {kind.__name__}")
    metrics = payload.get("metrics")
    if isinstance(metrics, list):
        if not metrics:
            problems.append(f"{path}: metrics list is empty")
        for i, entry in enumerate(metrics):
            if not isinstance(entry, dict):
                problems.append(f"{path}: metrics[{i}] is not an object")
                continue
            if not isinstance(entry.get("name"), str) or not entry.get("name"):
                problems.append(f"{path}: metrics[{i}] has no name")
            value = entry.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or not math.isfinite(value):
                problems.append(
                    f"{path}: metrics[{i}] value is not a finite number")
            if not isinstance(entry.get("units"), str):
                problems.append(f"{path}: metrics[{i}] has no units")
    return problems


def metric_values(path: Path) -> Dict[str, float]:
    """``{name: value}`` of one validated bench JSON file."""
    payload = json.loads(path.read_text())
    return {m["name"]: float(m["value"]) for m in payload["metrics"]}


def compare(new: Path, baseline: Path, tolerance: float,
            absolute: bool) -> List[str]:
    """Regression problems of ``new`` vs ``baseline`` (empty when OK)."""
    fresh = metric_values(new)
    old = metric_values(baseline)
    gated = RATIO_METRICS + (ABSOLUTE_METRICS if absolute else ())
    problems = []
    for name in gated:
        if name not in old:
            continue  # baseline predates the metric; nothing to gate
        if name not in fresh:
            problems.append(
                f"{new}: metric {name!r} present in baseline {baseline} "
                "but missing from the fresh run")
            continue
        floor = (1.0 - tolerance) * old[name]
        if fresh[name] < floor:
            drop = 100.0 * (1.0 - fresh[name] / old[name])
            problems.append(
                f"{new}: {name} regressed {drop:.1f}% "
                f"({fresh[name]:.2f} vs baseline {old[name]:.2f}, "
                f"tolerance {100 * tolerance:.0f}%)")
    for name in (CEILING_METRICS if absolute else ()):
        if name not in old:
            continue
        if name not in fresh:
            problems.append(
                f"{new}: metric {name!r} present in baseline {baseline} "
                "but missing from the fresh run")
            continue
        ceiling = (1.0 + tolerance) * old[name]
        if fresh[name] > ceiling:
            rise = 100.0 * (fresh[name] / old[name] - 1.0)
            problems.append(
                f"{new}: {name} regressed {rise:.1f}% upward "
                f"({fresh[name]:.2f} vs baseline {old[name]:.2f}, "
                f"tolerance {100 * tolerance:.0f}%)")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compare", nargs=2, metavar=("NEW", "BASELINE"),
                        help="also gate NEW's throughput against BASELINE")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional drop (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="also gate machine-dependent absolute metrics")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    candidates = sorted(root.glob("BENCH_*.json")) + sorted(
        (root / "benchmarks" / "results").glob("BENCH_*.json"))
    if args.compare:
        candidates.extend(Path(p) for p in args.compare)
    seen = []
    for path in candidates:
        if path.resolve() not in [p.resolve() for p in seen]:
            seen.append(path)
    if not seen:
        print("check_bench_schema: FAIL", file=sys.stderr)
        print("  no BENCH_*.json files found (has the throughput bench "
              "ever been run?)", file=sys.stderr)
        return 1

    problems = []
    for path in seen:
        problems.extend(validate(path))
    if not problems and args.compare:
        problems.extend(compare(Path(args.compare[0]),
                                Path(args.compare[1]),
                                args.tolerance, args.absolute))
    if problems:
        print("check_bench_schema: FAIL", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    gate = " + regression gate" if args.compare else ""
    print(f"check_bench_schema: OK ({len(seen)} file(s) valid{gate})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
