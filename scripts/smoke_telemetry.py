#!/usr/bin/env python3
"""CI smoke test: telemetry must capture a guarded faulted drive end to end.

Runs one UDDS episode under a :class:`repro.safety.SafetySupervisor` with a
mid-cycle engine fault, plus a two-task supervised sweep, with a
:class:`repro.telemetry.Telemetry` session writing to a temporary JSONL
file.  The run must

1. produce an event file whose every record passes schema validation
   (:func:`repro.telemetry.read_events` re-validates on read),
2. contain the expected narrative: ``sim.episode`` and ``exec.sweep``
   spans, ``episode`` / ``step`` / ``task`` events, at least one
   ``guard_intervention``, and a closing ``metrics_snapshot``,
3. render through ``repro telemetry report`` without error.

Exits non-zero with a message on the first broken invariant.  Run from
anywhere: ``python scripts/smoke_telemetry.py``.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import default_vehicle  # noqa: E402
from repro.control import RuleBasedController  # noqa: E402
from repro.cycles import udds  # noqa: E402
from repro.exec import Supervisor, Task  # noqa: E402
from repro.faults.models import (  # noqa: E402
    AuxLoadSpike,
    EnginePowerLoss,
    MotorDerating,
)
from repro.faults.schedule import (  # noqa: E402
    FaultSchedule,
    ScheduledFault,
)
from repro.powertrain.solver import PowertrainSolver  # noqa: E402
from repro.safety import SafetySupervisor, SupervisorConfig  # noqa: E402
from repro.sim import Simulator, evaluate  # noqa: E402
from repro.telemetry import Telemetry, read_events, summarize  # noqa: E402


def main() -> int:
    # The same catastrophic combined fault as smoke_guard.py, with
    # hair-trigger thresholds, so guard interventions and a health
    # transition are guaranteed to appear in the event stream.
    faults = FaultSchedule([
        ScheduledFault(EnginePowerLoss(power_loss=0.9), start=40.0),
        ScheduledFault(MotorDerating(power_derate=0.9, torque_derate=0.9),
                       start=40.0, ramp=10.0),
        ScheduledFault(AuxLoadSpike(extra_power=1500.0), start=40.0),
    ])
    config = SupervisorConfig(escalate_after=2, recover_after=10_000,
                              infeasible_warn_after=3,
                              infeasible_severe_after=8,
                              soc_warn_after=5, soc_severe_after=30)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "smoke.jsonl"
        with Telemetry(path, step_sample_every=25) as telemetry:
            solver = PowertrainSolver(default_vehicle())
            simulator = Simulator(solver, telemetry=telemetry)
            supervisor = SafetySupervisor(RuleBasedController(solver),
                                          solver, config=config,
                                          telemetry=telemetry)
            result = evaluate(simulator, supervisor, udds(), faults=faults)
            executor = Supervisor(retries=0, telemetry=telemetry)
            sweep = executor.run([
                Task(key="probe-1", fn=lambda: 1, spec={"probe": 1}),
                Task(key="probe-2", fn=lambda: 2, spec={"probe": 2}),
            ])

        # read_events re-validates the schema of every record.
        records = read_events(path)
        types = {record["type"] for record in records}
        spans = [r["name"] for r in records if r["type"] == "span"]

        assert result.safety is not None, "no safety report attached"
        assert sweep.results == {"probe-1": 1, "probe-2": 2}, \
            f"unexpected sweep results: {sweep.results}"
        for expected in ("telemetry", "episode", "step", "task",
                         "guard_intervention", "health_transition",
                         "metrics_snapshot"):
            assert expected in types, \
                f"event file is missing {expected!r} records (got {types})"
        assert "sim.episode" in spans, f"no sim.episode span in {spans}"
        assert "exec.sweep" in spans, f"no exec.sweep span in {spans}"
        assert spans.count("exec.task") == 2, \
            f"expected 2 exec.task spans, got {spans.count('exec.task')}"

        report = summarize(path)
        for needle in ("telemetry report:", "sim.episode",
                       "supervised tasks: 2 (ok=2)"):
            assert needle in report, \
                f"rendered report is missing {needle!r}:\n{report}"

    interventions = sum(1 for r in records
                        if r["type"] == "guard_intervention")
    print("smoke_telemetry: OK "
          f"({len(records)} validated events, {len(spans)} spans, "
          f"{interventions} guard intervention(s), report renders)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
