#!/usr/bin/env python3
"""CI smoke test: the serving layer's headline promises, end to end.

Trains a tiny policy on a short synthetic cycle, publishes it to a
temporary registry, and drives the full serving story in well under 30
seconds:

1. **Serve** — activate the latest version and decide the whole state
   grid.
2. **Hot-swap** — swap to a bit-identical republish; every decision must
   match no-swap serving exactly.
3. **Refusal** — corrupt a published candidate's table bytes; the swap
   must be refused (structured reason, incumbent untouched), never
   crash.
4. **Forced rollback** — canary a deliberately scrambled candidate over
   a fleet run; the rollout must end in an automatic rollback within the
   decision budget, with the incumbent still serving.

Exits non-zero naming the first broken promise.  Run from anywhere:
``python scripts/smoke_serve.py``.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.control.rl_controller import build_rl_controller  # noqa: E402
from repro.cycles import DriveCycle  # noqa: E402
from repro.powertrain import PowertrainSolver  # noqa: E402
from repro.serve import (  # noqa: E402
    CanaryConfig,
    FleetConfig,
    FleetSimulator,
    PolicyRegistry,
    PolicyServer,
)
from repro.sim import Simulator, train  # noqa: E402
from repro.vehicle import default_vehicle  # noqa: E402

ROLLBACK_BUDGET = 4000
"""Canary decision budget the forced rollback must beat."""


def _tiny_trained_agent():
    """A quickly but genuinely trained agent (short synthetic cycle)."""
    speeds = np.concatenate([np.linspace(0.0, 12.0, 20),
                             np.linspace(12.0, 0.0, 20)])
    cycle = DriveCycle("smoke-serve", speeds)
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(solver, seed=7)
    train(Simulator(solver), controller, cycle, episodes=3,
          evaluate_after=False)
    return controller.agent


def main() -> int:
    start = time.monotonic()
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        agent = _tiny_trained_agent()
        registry = PolicyRegistry(Path(tmp) / "registry")
        registry.publish(agent)          # v1: incumbent
        registry.publish(agent)          # v2: bit-identical swap partner
        registry.publish(agent)          # v3: will be corrupted
        from repro.rl.persistence import _fingerprint
        registry.publish_table(          # v4: scrambled canary candidate
            np.zeros_like(agent.learner.qtable.values) - 5.0,
            _fingerprint(agent))

        server = PolicyServer(registry)
        server.activate(registry.load(1))
        grid = np.arange(registry.load(1).num_states)
        baseline = server.decide(grid)
        print(f"  serving v{server.active_version}: "
              f"{grid.size} states decided", file=sys.stderr)

        report = server.swap(version=2)
        if not report.activated:
            failures.append(f"identical hot-swap refused: {report.reason}")
        elif not np.array_equal(server.decide(grid), baseline):
            failures.append("hot-swap of a bit-identical policy changed "
                            "decisions — the golden promise broke")
        else:
            print(f"  hot-swap v1 -> v2 in {report.elapsed_s * 1e3:.1f} ms, "
                  "bit-identical", file=sys.stderr)

        blob = bytearray(registry.path_for(3).read_bytes())
        blob[-7] ^= 0x20
        registry.path_for(3).write_bytes(bytes(blob))
        report = server.swap(version=3)
        if report.activated:
            failures.append("a corrupt candidate was activated")
        elif not np.array_equal(server.decide(grid), baseline):
            failures.append("a refused swap perturbed the incumbent")
        else:
            print("  corrupt v3 refused, incumbent untouched",
                  file=sys.stderr)

        server.begin_canary(version=4, canary_config=CanaryConfig(
            fraction=0.25, min_samples=64, sigmas=2.0,
            decision_budget=ROLLBACK_BUDGET, intervention_margin=0.02))
        result = FleetSimulator(server, FleetConfig(
            vehicles=512, steps=40, seed=2)).run()
        if result.canary_verdict != "rollback":
            failures.append(f"forced canary regression ended in "
                            f"{result.canary_verdict!r}, not rollback")
        elif result.rollback["decisions"] > ROLLBACK_BUDGET:
            failures.append(
                f"rollback took {result.rollback['decisions']} decisions, "
                f"over the {ROLLBACK_BUDGET} budget")
        elif server.active_version != 2:
            failures.append(f"rollback left v{server.active_version} "
                            "serving instead of the incumbent")
        else:
            print(f"  canary v4 rolled back after "
                  f"{result.rollback['decisions']} decision(s) "
                  f"({result.rollback['latency_s'] * 1e3:.1f} ms)",
                  file=sys.stderr)

    elapsed = time.monotonic() - start
    if failures:
        print("smoke_serve: FAIL", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"smoke_serve: OK (train + serve + hot-swap + forced rollback "
          f"in {elapsed:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
