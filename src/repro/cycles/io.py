"""CSV input/output for drive cycles.

Real regulatory traces (when available) come as two-column CSV files of
``time_s, speed`` — speed in m/s by default, with an optional third
``grade_rad`` column.  These helpers round-trip :class:`DriveCycle`
instances through that format so users can swap the synthetic cycles for
measured data without touching any other code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.cycles.cycle import DriveCycle
from repro.errors import ConfigurationError
from repro.units import kmh_to_ms, mph_to_ms

_UNIT_CONVERTERS = {
    "ms": lambda v: v,
    "m/s": lambda v: v,
    "kmh": kmh_to_ms,
    "km/h": kmh_to_ms,
    "mph": mph_to_ms,
}


def load_csv(path: Union[str, Path], name: str = "",
             speed_unit: str = "ms") -> DriveCycle:
    """Load a cycle from a ``time, speed[, grade]`` CSV file.

    The time column must be uniformly sampled; a header row is skipped
    automatically if present.  ``speed_unit`` selects the conversion applied
    to the speed column (``"ms"``, ``"kmh"``, or ``"mph"``).

    Malformed data — an unparseable field, a NaN or negative speed, a
    timestamp that does not increase — raises a structured
    :class:`repro.errors.ConfigurationError` naming the offending file row,
    so a bad trace fails at load time instead of poisoning a simulation
    hours later.
    """
    path = Path(path)
    if speed_unit not in _UNIT_CONVERTERS:
        raise ConfigurationError(f"unsupported speed unit {speed_unit!r}")
    convert = _UNIT_CONVERTERS[speed_unit]

    times, speeds, grades = [], [], []
    with open(path, newline="") as f:
        for lineno, row in enumerate(csv.reader(f), start=1):
            if not row or not row[0].strip():
                continue
            try:
                t = float(row[0])
            except ValueError:
                if not times:
                    continue  # header row
                raise ConfigurationError(
                    f"{path}:{lineno}: unparseable time value {row[0]!r}")
            if len(row) < 2:
                raise ConfigurationError(
                    f"{path}:{lineno}: row has no speed column")
            try:
                v = convert(float(row[1]))
                g = float(row[2]) if len(row) > 2 else 0.0
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: unparseable value ({exc})") from exc
            if not np.isfinite(t) or not np.isfinite(g):
                raise ConfigurationError(
                    f"{path}:{lineno}: non-finite time or grade "
                    f"(t={row[0]}, grade={row[2] if len(row) > 2 else 0})")
            if not np.isfinite(v):
                raise ConfigurationError(
                    f"{path}:{lineno}: speed is not finite ({row[1]})")
            if v < 0:
                raise ConfigurationError(
                    f"{path}:{lineno}: speed is negative ({row[1]})")
            if times and t <= times[-1]:
                raise ConfigurationError(
                    f"{path}:{lineno}: timestamp {t} does not increase "
                    f"(previous sample is at {times[-1]})")
            times.append(t)
            speeds.append(v)
            grades.append(g)

    if len(times) < 2:
        raise ConfigurationError(f"{path} holds fewer than two samples")
    times_arr = np.asarray(times)
    dts = np.diff(times_arr)
    dt = float(dts[0])
    if dt <= 0 or not np.allclose(dts, dt, rtol=1e-6, atol=1e-9):
        raise ConfigurationError(f"{path} is not uniformly sampled")
    return DriveCycle(name or path.stem, np.asarray(speeds), dt,
                      np.asarray(grades))


def save_csv(cycle: DriveCycle, path: Union[str, Path]) -> None:
    """Write a cycle as a ``time_s, speed_ms, grade_rad`` CSV file."""
    path = Path(path)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["time_s", "speed_ms", "grade_rad"])
        for t, v, g in zip(cycle.times, cycle.speeds, cycle.grades):
            writer.writerow([f"{t:.3f}", f"{v:.6f}", f"{g:.6f}"])
