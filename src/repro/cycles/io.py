"""CSV input/output for drive cycles.

Real regulatory traces (when available) come as two-column CSV files of
``time_s, speed`` — speed in m/s by default, with an optional third
``grade_rad`` column.  These helpers round-trip :class:`DriveCycle`
instances through that format so users can swap the synthetic cycles for
measured data without touching any other code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.cycles.cycle import DriveCycle
from repro.units import kmh_to_ms, mph_to_ms

_UNIT_CONVERTERS = {
    "ms": lambda v: v,
    "m/s": lambda v: v,
    "kmh": kmh_to_ms,
    "km/h": kmh_to_ms,
    "mph": mph_to_ms,
}


def load_csv(path: Union[str, Path], name: str = "",
             speed_unit: str = "ms") -> DriveCycle:
    """Load a cycle from a ``time, speed[, grade]`` CSV file.

    The time column must be uniformly sampled; a header row is skipped
    automatically if present.  ``speed_unit`` selects the conversion applied
    to the speed column (``"ms"``, ``"kmh"``, or ``"mph"``).
    """
    path = Path(path)
    if speed_unit not in _UNIT_CONVERTERS:
        raise ValueError(f"unsupported speed unit {speed_unit!r}")
    convert = _UNIT_CONVERTERS[speed_unit]

    times, speeds, grades = [], [], []
    with open(path, newline="") as f:
        for row in csv.reader(f):
            if not row or not row[0].strip():
                continue
            try:
                t = float(row[0])
            except ValueError:
                continue  # header row
            times.append(t)
            speeds.append(convert(float(row[1])))
            grades.append(float(row[2]) if len(row) > 2 else 0.0)

    if len(times) < 2:
        raise ValueError(f"{path} holds fewer than two samples")
    times_arr = np.asarray(times)
    dts = np.diff(times_arr)
    dt = float(dts[0])
    if dt <= 0 or not np.allclose(dts, dt, rtol=1e-6, atol=1e-9):
        raise ValueError(f"{path} is not uniformly sampled")
    return DriveCycle(name or path.stem, np.asarray(speeds), dt,
                      np.asarray(grades))


def save_csv(cycle: DriveCycle, path: Union[str, Path]) -> None:
    """Write a cycle as a ``time_s, speed_ms, grade_rad`` CSV file."""
    path = Path(path)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["time_s", "speed_ms", "grade_rad"])
        for t, v, g in zip(cycle.times, cycle.speeds, cycle.grades):
            writer.writerow([f"{t:.3f}", f"{v:.6f}", f"{g:.6f}"])
