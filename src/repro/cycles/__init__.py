"""Drive cycles: container, statistics, synthesis, and standard cycles.

The paper evaluates on EPA cycles (UDDS, SC03, HWFET) and European project
cycles (OSCAR, MODEM).  The original data files are not redistributable
here, so :mod:`repro.cycles.standard` synthesises each cycle from its
published summary statistics (duration, distance, mean/max speed, stop
count) with a deterministic micro-trip generator; :mod:`repro.cycles.io`
loads real traces from CSV when they are available.
"""

from repro.cycles.cycle import DriveCycle
from repro.cycles.stats import CycleStats, compute_stats
from repro.cycles.synthesis import CycleSpec, synthesize
from repro.cycles.standard import (
    STANDARD_SPECS,
    hwfet,
    modem,
    nycc,
    oscar,
    sc03,
    standard_cycle,
    udds,
    us06,
)
from repro.cycles.io import load_csv, save_csv
from repro.cycles.grade import net_zero_terrain, rolling_hills
from repro.cycles.markov import fit_chain, generate_trip

__all__ = [
    "rolling_hills",
    "net_zero_terrain",
    "fit_chain",
    "generate_trip",
    "DriveCycle",
    "CycleStats",
    "compute_stats",
    "CycleSpec",
    "synthesize",
    "STANDARD_SPECS",
    "standard_cycle",
    "udds",
    "hwfet",
    "sc03",
    "us06",
    "nycc",
    "oscar",
    "modem",
    "load_csv",
    "save_csv",
]
