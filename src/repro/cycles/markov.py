"""Markov-chain trip generation: "real-world" stochastic drive cycles.

Regulatory cycles are repeatable by construction; real driving is not —
which is the paper's motivation for a learning controller.  This module
generates stochastic trips from a first-order Markov chain over
(speed-bin, acceleration-bin) states, optionally *fitted to* an existing
cycle so generated trips share its statistical character (a UDDS-like city
trip that is never literally UDDS).  The examples use it for
generalisation studies: train on synthetic commutes, evaluate on fresh
draws.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cycles.cycle import DriveCycle

_ACCEL_LEVELS = np.array([-1.8, -1.2, -0.7, -0.3, 0.0, 0.3, 0.7, 1.2])
"""Acceleration bin centres used by the chain, m/s^2."""


@dataclass(frozen=True)
class ChainModel:
    """Fitted first-order chain over (speed-bin, accel-bin) states."""

    speed_edges: np.ndarray
    """Speed bin edges, m/s."""

    transition_counts: np.ndarray
    """Counts[s_bin, a_bin, a_bin_next] with Laplace smoothing applied."""

    max_speed: float
    """Cap on generated speeds, m/s."""

    @property
    def num_speed_bins(self) -> int:
        """Number of speed bins."""
        return len(self.speed_edges) + 1


def fit_chain(cycle: DriveCycle, speed_bins: int = 8,
              smoothing: float = 0.2) -> ChainModel:
    """Fit the chain to one cycle's (speed, acceleration) sequence."""
    if speed_bins < 2:
        raise ValueError("need at least two speed bins")
    if smoothing < 0:
        raise ValueError("smoothing cannot be negative")
    speeds = cycle.speeds[:-1]
    accels = np.diff(cycle.speeds) / cycle.dt
    max_speed = float(cycle.max_speed)
    speed_edges = np.linspace(0.0, max_speed, speed_bins + 1)[1:-1]

    s_bins = np.searchsorted(speed_edges, speeds, side="right")
    a_bins = np.argmin(np.abs(accels[:, None] - _ACCEL_LEVELS[None, :]),
                       axis=1)
    counts = np.full((speed_bins, len(_ACCEL_LEVELS), len(_ACCEL_LEVELS)),
                     smoothing)
    for t in range(len(a_bins) - 1):
        counts[s_bins[t], a_bins[t], a_bins[t + 1]] += 1.0
    return ChainModel(speed_edges=speed_edges, transition_counts=counts,
                      max_speed=max_speed)


def generate_trip(model: ChainModel, duration: float, seed: int,
                  name: str = "markov-trip") -> DriveCycle:
    """Sample one trip of ``duration`` seconds from a fitted chain.

    The trip starts and ends at rest (the tail is ramped down) and speeds
    are clipped to the model's observed maximum.
    """
    if duration < 30:
        raise ValueError("trips shorter than 30 s are not meaningful")
    rng = np.random.default_rng(seed)
    n = int(round(duration)) + 1
    speeds = np.zeros(n)
    a_bin = len(_ACCEL_LEVELS) // 2
    for t in range(1, n):
        v = speeds[t - 1]
        s_bin = int(np.searchsorted(model.speed_edges, v, side="right"))
        probs = model.transition_counts[s_bin, a_bin]
        probs = probs / probs.sum()
        a_bin = int(rng.choice(len(_ACCEL_LEVELS), p=probs))
        accel = _ACCEL_LEVELS[a_bin]
        # At standstill, forbid deceleration (reflects the chain's boundary).
        if v <= 0.0 and accel < 0.0:
            accel = 0.0
        speeds[t] = float(np.clip(v + accel, 0.0, model.max_speed))

    # Force a clean stop at the end.
    decel = 1.4
    ramp = int(np.ceil(speeds[-1] / decel)) + 1
    ramp = min(ramp, n - 1)
    if ramp > 0:
        target = np.linspace(speeds[-ramp - 1], 0.0, ramp + 1)[1:]
        speeds[-ramp:] = np.minimum(speeds[-ramp:], target)
    speeds[-1] = 0.0
    return DriveCycle(name, speeds, dt=cycle_dt(model))


def cycle_dt(model: ChainModel) -> float:
    """Sample period of generated trips, s (the chain is fitted at 1 Hz)."""
    return 1.0
