"""Standard regulatory and project drive cycles (synthesised).

Each factory returns a deterministic synthetic cycle matched to the
published summary statistics of the named cycle:

* **UDDS** — EPA Urban Dynamometer Driving Schedule: 1369 s, ~12.07 km,
  mean 31.5 km/h, max 91.2 km/h, 17 stops.
* **HWFET** — EPA Highway Fuel Economy Test: 765 s, ~16.45 km, mean
  77.7 km/h, max 96.4 km/h, essentially no intermediate stops.
* **SC03** — EPA air-conditioning (SFTP) cycle: 600 s, ~5.76 km, mean
  34.8 km/h, max 88.2 km/h, 5 stops.
* **US06** — EPA aggressive (SFTP) cycle: 600 s, ~12.8 km, mean 77.9 km/h,
  max 129.2 km/h.
* **NYCC** — New York City Cycle: 598 s, ~1.90 km, mean 11.4 km/h, max
  44.6 km/h, dense stop-and-go.
* **OSCAR** — urban cycle from the E.U. OSCAR project (the paper's first
  test profile): modelled as a ~900 s European urban cycle, mean 25 km/h,
  max 60 km/h.
* **MODEM** — urban cycle from the E.U. MODEM project (Modelling of
  Emissions and Fuel Consumption in Urban Areas): modelled as a ~806 s
  European urban cycle, mean 29 km/h, max 70 km/h.

The OSCAR and MODEM source data were never released as open files; the specs
above are representative European urban profiles, which preserves the
urban-vs-highway contrast the paper's evaluation relies on.
"""

from __future__ import annotations

from typing import Dict

from repro.cycles.cycle import DriveCycle
from repro.cycles.synthesis import CycleSpec, synthesize
from repro.errors import CycleLookupError

STANDARD_SPECS: Dict[str, CycleSpec] = {
    "UDDS": CycleSpec(
        name="UDDS", duration=1369, mean_speed_kmh=31.5, max_speed_kmh=91.2,
        stop_count=17, idle_fraction=0.19, accel_max=1.3, decel_max=1.5,
        seed=101),
    "HWFET": CycleSpec(
        name="HWFET", duration=765, mean_speed_kmh=77.7, max_speed_kmh=96.4,
        stop_count=1, idle_fraction=0.01, accel_max=1.2, decel_max=1.4,
        speed_jitter=0.05, seed=102),
    "SC03": CycleSpec(
        name="SC03", duration=600, mean_speed_kmh=34.8, max_speed_kmh=88.2,
        stop_count=5, idle_fraction=0.18, accel_max=1.4, decel_max=1.6,
        seed=103),
    "US06": CycleSpec(
        name="US06", duration=600, mean_speed_kmh=77.9, max_speed_kmh=129.2,
        stop_count=4, idle_fraction=0.07, accel_max=1.5, decel_max=1.8,
        seed=104),
    "NYCC": CycleSpec(
        name="NYCC", duration=598, mean_speed_kmh=11.4, max_speed_kmh=44.6,
        stop_count=11, idle_fraction=0.32, accel_max=1.4, decel_max=1.6,
        seed=105),
    "OSCAR": CycleSpec(
        name="OSCAR", duration=900, mean_speed_kmh=25.0, max_speed_kmh=60.0,
        stop_count=12, idle_fraction=0.22, accel_max=1.3, decel_max=1.5,
        seed=106),
    "MODEM": CycleSpec(
        name="MODEM", duration=806, mean_speed_kmh=29.0, max_speed_kmh=70.0,
        stop_count=9, idle_fraction=0.20, accel_max=1.3, decel_max=1.5,
        seed=107),
}
"""Specs of every built-in cycle, keyed by canonical upper-case name."""


def standard_cycle(name: str) -> DriveCycle:
    """Synthesise a built-in cycle by (case-insensitive) name."""
    key = name.upper()
    if key not in STANDARD_SPECS:
        raise CycleLookupError(
            f"unknown cycle {name!r}; available: {sorted(STANDARD_SPECS)}")
    return synthesize(STANDARD_SPECS[key])


def udds() -> DriveCycle:
    """EPA Urban Dynamometer Driving Schedule."""
    return standard_cycle("UDDS")


def hwfet() -> DriveCycle:
    """EPA Highway Fuel Economy Test."""
    return standard_cycle("HWFET")


def sc03() -> DriveCycle:
    """EPA SC03 air-conditioning cycle."""
    return standard_cycle("SC03")


def us06() -> DriveCycle:
    """EPA US06 aggressive cycle."""
    return standard_cycle("US06")


def nycc() -> DriveCycle:
    """New York City Cycle."""
    return standard_cycle("NYCC")


def oscar() -> DriveCycle:
    """E.U. OSCAR project urban cycle (synthetic stand-in, see module doc)."""
    return standard_cycle("OSCAR")


def modem() -> DriveCycle:
    """E.U. MODEM project urban cycle (synthetic stand-in, see module doc)."""
    return standard_cycle("MODEM")
