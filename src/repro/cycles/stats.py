"""Summary statistics of drive cycles.

The synthesis engine targets these statistics (they are what the EPA and the
European projects publish for each cycle), and the tests assert that the
synthesised cycles land close to the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cycles.cycle import DriveCycle
from repro.units import ms_to_kmh

_STOP_SPEED = 0.1
"""Speed below which the vehicle counts as stopped, m/s."""


@dataclass(frozen=True)
class CycleStats:
    """Summary statistics of one drive cycle."""

    duration: float
    """Total duration, s."""

    distance: float
    """Trip distance, m."""

    mean_speed_kmh: float
    """Trip-average speed including idle, km/h."""

    mean_moving_speed_kmh: float
    """Average speed over the moving samples only, km/h."""

    max_speed_kmh: float
    """Peak speed, km/h."""

    max_acceleration: float
    """Largest acceleration, m/s^2."""

    max_deceleration: float
    """Largest deceleration magnitude, m/s^2."""

    stop_count: int
    """Number of distinct stop events after moving (excludes the initial rest)."""

    idle_fraction: float
    """Fraction of samples at standstill."""

    kinetic_intensity: float
    """Characteristic acceleration divided by aerodynamic speed, 1/m — the
    standard transientness measure; urban cycles score high, highway low."""


def count_stops(speeds: np.ndarray, stop_speed: float = _STOP_SPEED) -> int:
    """Count moving -> stopped transitions in a speed trace."""
    stopped = speeds <= stop_speed
    transitions = (~stopped[:-1]) & stopped[1:]
    return int(np.sum(transitions))


def compute_stats(cycle: DriveCycle) -> CycleStats:
    """Compute the :class:`CycleStats` of a cycle."""
    speeds = cycle.speeds
    acc = np.diff(speeds) / cycle.dt
    moving = speeds > _STOP_SPEED
    mean_moving = float(np.mean(speeds[moving])) if np.any(moving) else 0.0

    # Kinetic intensity (O'Keefe et al.): characteristic positive acceleration
    # per unit distance over the mean cubed speed per unit distance.
    v_mid = 0.5 * (speeds[1:] + speeds[:-1])
    dist = cycle.distance
    pos_acc_work = np.sum(np.maximum(v_mid * acc, 0.0) * cycle.dt)
    aero_speed = np.sum(v_mid ** 3 * cycle.dt)
    ki = float(pos_acc_work / aero_speed) if aero_speed > 0 else 0.0

    return CycleStats(
        duration=cycle.duration,
        distance=dist,
        mean_speed_kmh=ms_to_kmh(cycle.mean_speed),
        mean_moving_speed_kmh=ms_to_kmh(mean_moving),
        max_speed_kmh=ms_to_kmh(cycle.max_speed),
        max_acceleration=float(np.max(acc)) if len(acc) else 0.0,
        max_deceleration=float(-np.min(acc)) if len(acc) else 0.0,
        stop_count=count_stops(speeds),
        idle_fraction=float(np.mean(~moving)),
        kinetic_intensity=ki,
    )
