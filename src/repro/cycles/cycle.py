"""The :class:`DriveCycle` container.

A drive cycle is a uniformly sampled speed trace (plus an optional road-grade
trace) that the backward-looking simulation replays: at step ``t`` the driver
demands speed ``speed[t]`` and the acceleration implied by the next sample.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import CycleError


class DriveCycle:
    """A uniformly sampled drive cycle (speed in m/s, grade in radians)."""

    def __init__(self, name: str, speeds: np.ndarray, dt: float = 1.0,
                 grades: Optional[np.ndarray] = None):
        speeds = np.asarray(speeds, dtype=float)
        if speeds.ndim != 1 or len(speeds) < 2:
            raise CycleError("a drive cycle needs a 1-D trace of >= 2 samples")
        if np.any(speeds < 0):
            raise CycleError("speeds cannot be negative")
        if dt <= 0:
            raise CycleError("sample period must be positive")
        if grades is None:
            grades = np.zeros_like(speeds)
        else:
            grades = np.asarray(grades, dtype=float)
            if grades.shape != speeds.shape:
                raise CycleError("grade trace must match the speed trace shape")
        self.name = name
        self.dt = float(dt)
        self.speeds = speeds
        self.grades = grades

    # --- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.speeds)

    @property
    def duration(self) -> float:
        """Total duration, s."""
        return (len(self.speeds) - 1) * self.dt

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps, s."""
        return np.arange(len(self.speeds)) * self.dt

    @property
    def accelerations(self) -> np.ndarray:
        """Forward-difference accelerations, m/s^2 (zero at the last sample).

        The backward-looking simulator pairs ``speeds[t]`` with this
        acceleration when computing the step-``t`` power demand.
        """
        acc = np.zeros_like(self.speeds)
        acc[:-1] = np.diff(self.speeds) / self.dt
        return acc

    @property
    def distance(self) -> float:
        """Trip distance by trapezoidal integration of the speed trace, m."""
        return float(np.trapezoid(self.speeds, dx=self.dt))

    @property
    def mean_speed(self) -> float:
        """Trip-average speed including idle time, m/s."""
        return self.distance / self.duration if self.duration > 0 else 0.0

    @property
    def max_speed(self) -> float:
        """Peak speed, m/s."""
        return float(np.max(self.speeds))

    # --- iteration ---------------------------------------------------------------

    def steps(self) -> Iterator[Tuple[float, float, float]]:
        """Yield (speed, acceleration, grade) per simulation step.

        There are ``len(cycle) - 1`` steps: the last sample only terminates
        the previous step.
        """
        acc = self.accelerations
        for t in range(len(self.speeds) - 1):
            yield float(self.speeds[t]), float(acc[t]), float(self.grades[t])

    # --- transformations -----------------------------------------------------------

    def repeat(self, count: int) -> "DriveCycle":
        """Concatenate ``count`` back-to-back repetitions of this cycle.

        The junctions are seamless only if the cycle starts and ends at rest,
        which every synthesised standard cycle does.
        """
        if count < 1:
            raise CycleError("repeat count must be >= 1")
        speeds = np.concatenate([self.speeds] + [self.speeds[1:]] * (count - 1))
        grades = np.concatenate([self.grades] + [self.grades[1:]] * (count - 1))
        return DriveCycle(f"{self.name}x{count}", speeds, self.dt, grades)

    def slice(self, start: int, stop: int) -> "DriveCycle":
        """Extract the sub-cycle covering samples ``[start, stop)``."""
        if stop - start < 2:
            raise CycleError("a slice must keep at least two samples")
        return DriveCycle(f"{self.name}[{start}:{stop}]",
                          self.speeds[start:stop], self.dt,
                          self.grades[start:stop])

    def scaled(self, factor: float) -> "DriveCycle":
        """Return a copy with every speed multiplied by ``factor``.

        Useful for intensity sweeps; accelerations scale by the same factor.
        """
        if factor < 0:
            raise CycleError("scale factor cannot be negative")
        return DriveCycle(f"{self.name}*{factor:g}", self.speeds * factor,
                          self.dt, self.grades)

    def __repr__(self) -> str:
        return (f"DriveCycle({self.name!r}, {len(self)} samples, "
                f"{self.duration:.0f}s, {self.distance / 1000:.2f}km)")
