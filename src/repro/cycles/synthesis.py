"""Deterministic micro-trip drive-cycle synthesis.

Regulatory drive cycles are published as speed-vs-time data files that we
cannot redistribute, but their *summary statistics* (duration, mean and
maximum speed, stop count, idle share) are public.  This module synthesises
a cycle matching a :class:`CycleSpec` by concatenating micro-trips — idle
dwell, half-cosine acceleration ramp, jittered cruise, half-cosine
deceleration — and then bisecting a cruise-speed scale factor until the trip
mean speed matches the spec.  Construction is fully deterministic for a
given spec (seeded generator), so tests and benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cycles.cycle import DriveCycle
from repro.units import kmh_to_ms


@dataclass(frozen=True)
class CycleSpec:
    """Target summary statistics for cycle synthesis."""

    name: str
    """Cycle name (e.g. ``"UDDS"``)."""

    duration: float
    """Total duration, s."""

    mean_speed_kmh: float
    """Target trip-average speed including idle, km/h."""

    max_speed_kmh: float
    """Target peak speed, km/h."""

    stop_count: int
    """Number of stops after moving (micro-trip count)."""

    idle_fraction: float = 0.15
    """Fraction of time at standstill."""

    accel_max: float = 1.3
    """Acceleration bound for the ramps, m/s^2."""

    decel_max: float = 1.5
    """Deceleration bound for the ramps, m/s^2."""

    speed_jitter: float = 0.06
    """Relative amplitude of the cruise-speed modulation."""

    seed: int = 2015
    """Seed of the deterministic generator."""

    def __post_init__(self) -> None:
        if self.duration < 60:
            raise ValueError("cycles shorter than a minute are not supported")
        if not 0 < self.mean_speed_kmh <= self.max_speed_kmh:
            raise ValueError("mean speed must be positive and <= max speed")
        if self.stop_count < 1:
            raise ValueError("need at least one micro-trip")
        if not 0 <= self.idle_fraction < 0.7:
            raise ValueError("idle fraction out of the plausible range")
        if self.accel_max <= 0 or self.decel_max <= 0:
            raise ValueError("ramp limits must be positive")


def _ramp_up(target: float, accel_max: float) -> np.ndarray:
    """Half-cosine speed ramp 0 -> ``target`` honouring ``accel_max``.

    The half-cosine profile ``v(t) = target (1 - cos(pi t / T)) / 2`` has
    peak acceleration ``pi * target / (2 T)``; T is chosen as the shortest
    integer-sample duration keeping that below the bound.
    """
    if target <= 0:
        return np.zeros(1)
    steps = max(2, int(np.ceil(np.pi * target / (2.0 * accel_max))))
    t = np.arange(1, steps + 1) / steps
    return target * (1.0 - np.cos(np.pi * t)) / 2.0


def _ramp_down(start: float, decel_max: float) -> np.ndarray:
    """Half-cosine speed ramp ``start`` -> 0 honouring ``decel_max``."""
    return start - _ramp_up(start, decel_max)


def _cruise(target: float, samples: int, jitter: float,
            rng: np.random.Generator, cap: float) -> np.ndarray:
    """Cruise segment: target speed with a smoothed random modulation."""
    if samples <= 0:
        return np.zeros(0)
    noise = rng.standard_normal(samples + 8)
    kernel = np.hanning(9)
    kernel /= kernel.sum()
    smooth = np.convolve(noise, kernel, mode="valid")[:samples]
    seg = target * (1.0 + jitter * smooth)
    return np.clip(seg, 0.3 * target, cap)


def _peak_bump(target: float, v_max: float, accel_max: float,
               decel_max: float) -> np.ndarray:
    """Brief excursion from ``target`` up to ``v_max`` and back.

    Inserted mid-cruise into exactly one micro-trip so the synthetic cycle
    touches the published maximum speed without letting that speed dominate
    the trip mean.
    """
    if v_max <= target + 0.1:
        return np.zeros(0)
    rise = target + _ramp_up(v_max - target, accel_max)
    hold = np.full(3, v_max)
    fall = target + _ramp_down(v_max - target, decel_max)
    return np.concatenate([rise, hold, fall])


def _build(spec: CycleSpec, cruise_scale: float) -> np.ndarray:
    """Assemble one candidate speed trace for a given cruise-speed scale."""
    rng = np.random.default_rng(spec.seed)
    n_total = int(round(spec.duration)) + 1
    v_max = kmh_to_ms(spec.max_speed_kmh)
    trips = spec.stop_count

    # Per-trip cruise targets; exactly one micro-trip briefly touches v_max.
    raw_targets = rng.uniform(0.45, 0.95, size=trips) * v_max
    peak_trip = int(rng.integers(0, trips))
    targets = np.clip(raw_targets * cruise_scale, 1.0, 0.93 * v_max)

    # Idle budget split across the leading dwells of each micro-trip.
    idle_total = int(spec.idle_fraction * n_total)
    weights = rng.dirichlet(np.ones(trips) * 2.0)
    idle_lengths = np.maximum((weights * idle_total).astype(int), 1)

    # Fixed-length pieces first, so the cruise lengths can be sized to make
    # the total land exactly on the requested duration.
    ups = [_ramp_up(t, spec.accel_max) for t in targets]
    downs = [_ramp_down(t, spec.decel_max) for t in targets]
    bump = _peak_bump(targets[peak_trip], v_max, spec.accel_max, spec.decel_max)
    fixed = (1 + int(np.sum(idle_lengths)) + sum(len(u) for u in ups)
             + sum(len(d) for d in downs) + len(bump))
    deficit = max(n_total - fixed, 4 * trips)
    share = targets / targets.sum()
    cruise_lengths = np.maximum((share * deficit).astype(int), 4)

    segments = [np.zeros(1)]
    for k in range(trips):
        segments.append(np.zeros(idle_lengths[k]))
        segments.append(ups[k])
        cl = int(cruise_lengths[k])
        if k == peak_trip and len(bump):
            half = cl // 2
            segments.append(_cruise(targets[k], half, spec.speed_jitter,
                                    rng, v_max))
            segments.append(bump)
            segments.append(_cruise(targets[k], cl - half, spec.speed_jitter,
                                    rng, v_max))
        else:
            segments.append(_cruise(targets[k], cl, spec.speed_jitter,
                                    rng, v_max))
        segments.append(downs[k])
    trace = np.concatenate(segments)

    if len(trace) > n_total:
        # Trim the tail, then force a clean deceleration to rest.
        trace = trace[:n_total]
        tail = _ramp_down(trace[-1], spec.decel_max)
        room = min(len(tail), len(trace) - 1)
        trace[-room:] = tail[-room:]
    elif len(trace) < n_total:
        trace = np.concatenate([trace, np.zeros(n_total - len(trace))])
    trace[-1] = 0.0
    return np.maximum(trace, 0.0)


def synthesize(spec: CycleSpec) -> DriveCycle:
    """Synthesise a drive cycle matching ``spec``.

    Bisects the cruise-speed scale so the trip mean speed lands within ~1.5%
    of the spec (tighter is not meaningful given integer-second ramps).
    """
    target_mean = kmh_to_ms(spec.mean_speed_kmh)
    lo, hi = 0.25, 1.6
    trace = _build(spec, 1.0)
    for _ in range(24):
        mid = 0.5 * (lo + hi)
        trace = _build(spec, mid)
        mean = np.trapezoid(trace) / (len(trace) - 1)
        if abs(mean - target_mean) / target_mean < 0.015:
            break
        if mean < target_mean:
            lo = mid
        else:
            hi = mid
    return DriveCycle(spec.name, trace, dt=1.0)
