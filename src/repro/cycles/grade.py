"""Road-grade profile synthesis.

The paper's vehicle dynamics (Eq. 5) include the road-slope force
``F_g = m g sin(theta)``, but regulatory cycles are flat.  This module
attaches synthetic grade profiles to a cycle so users can exercise the
grade path: rolling hills (sinusoidal in *distance*, so the terrain does
not depend on how fast the cycle drives over it) and net-zero random
terrain for closed loops.
"""

from __future__ import annotations

import numpy as np

from repro.cycles.cycle import DriveCycle

MAX_GRADE = 0.15
"""Sanity bound on synthetic grades, radians (~8.5 degrees)."""


def _cumulative_distance(cycle: DriveCycle) -> np.ndarray:
    """Distance travelled at each sample, m."""
    v_mid = 0.5 * (cycle.speeds[1:] + cycle.speeds[:-1])
    return np.concatenate([[0.0], np.cumsum(v_mid * cycle.dt)])


def rolling_hills(cycle: DriveCycle, amplitude: float = 0.03,
                  wavelength: float = 800.0, phase: float = 0.0) -> DriveCycle:
    """Attach a sinusoidal-in-distance grade profile.

    ``amplitude`` is the peak grade in radians and ``wavelength`` the
    hill-to-hill distance in meters.  Because the profile is a function of
    distance, idle phases sit on constant grade, as real terrain would.
    """
    if not 0.0 <= amplitude <= MAX_GRADE:
        raise ValueError(f"amplitude must be within [0, {MAX_GRADE}] rad")
    if wavelength <= 0:
        raise ValueError("wavelength must be positive")
    distance = _cumulative_distance(cycle)
    grades = amplitude * np.sin(2.0 * np.pi * distance / wavelength + phase)
    return DriveCycle(f"{cycle.name}+hills", cycle.speeds.copy(), cycle.dt,
                      grades)


def net_zero_terrain(cycle: DriveCycle, roughness: float = 0.02,
                     correlation_length: float = 300.0,
                     seed: int = 0) -> DriveCycle:
    """Attach random terrain whose total elevation change is zero.

    Builds a smooth random elevation profile over distance (Gaussian noise
    convolved to the requested correlation length), detrends it so the trip
    starts and ends at the same altitude (a closed commuting loop), and
    differentiates to grade.  ``roughness`` caps the resulting grade RMS.
    """
    if roughness <= 0 or roughness > MAX_GRADE:
        raise ValueError(f"roughness must be within (0, {MAX_GRADE}] rad")
    if correlation_length <= 0:
        raise ValueError("correlation length must be positive")
    distance = _cumulative_distance(cycle)
    total = float(distance[-1])
    if total <= 0:
        return DriveCycle(f"{cycle.name}+flat", cycle.speeds.copy(),
                          cycle.dt, np.zeros_like(cycle.speeds))

    rng = np.random.default_rng(seed)
    # Elevation on a uniform distance grid, smoothed to the correlation
    # length, then linearly detrended to close the loop.
    grid_step = max(correlation_length / 8.0, 1.0)
    n_grid = max(int(total / grid_step) + 2, 8)
    raw = rng.standard_normal(n_grid)
    kernel_n = max(int(correlation_length / grid_step) | 1, 3)
    kernel = np.hanning(kernel_n + 2)[1:-1]
    kernel /= kernel.sum()
    elevation = np.convolve(raw, kernel, mode="same")
    elevation -= np.linspace(elevation[0], elevation[-1], n_grid)

    grid = np.linspace(0.0, total, n_grid)
    grade_grid = np.gradient(elevation, grid)
    rms = float(np.sqrt(np.mean(grade_grid ** 2)))
    if rms > 0:
        grade_grid *= roughness / rms
    grades = np.interp(distance, grid, grade_grid)
    grades = np.clip(grades, -MAX_GRADE, MAX_GRADE)
    return DriveCycle(f"{cycle.name}+terrain", cycle.speeds.copy(),
                      cycle.dt, grades)


def elevation_profile(cycle: DriveCycle) -> np.ndarray:
    """Integrate a cycle's grades into an elevation trace, m.

    For small angles the climb per step is ``v * dt * sin(theta)``.
    """
    v_mid = 0.5 * (cycle.speeds[1:] + cycle.speeds[:-1])
    g_mid = 0.5 * (cycle.grades[1:] + cycle.grades[:-1])
    climb = v_mid * cycle.dt * np.sin(g_mid)
    return np.concatenate([[0.0], np.cumsum(climb)])
