"""Rule-based supervisory baseline (after Banvait et al., ACC'09 [5]).

The classic charge-depleting / charge-sustaining rule set the paper
compares against:

* **Braking** — regenerate as hard as the demand, machine envelope, and
  charge-current limit allow.
* **Low SoC** (below the charge threshold) — engine mode with a fixed
  charging current; auxiliaries shed to their floor when SoC is critical.
* **EV region** — below the electric-launch speed and power thresholds
  with sufficient SoC, drive electrically.
* **Otherwise** — engine mode near its efficient region: the battery
  assists above the assist-power threshold and trickle-charges when SoC is
  below target, while the gear is chosen to keep the crankshaft closest to
  the engine's sweet-spot speed.

Auxiliaries run at the driver-preferred draw except in the critical-SoC
shedding rule — the baseline does *not* co-optimise them, which is exactly
the behaviour the paper's joint controller improves upon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.base import Controller
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import RewardConfig, build_reward_function


@dataclass(frozen=True)
class RuleBasedConfig:
    """Thresholds of the rule set."""

    ev_speed_limit: float = 12.0
    """Electric-only launch allowed below this speed, m/s."""

    ev_power_limit: float = 9_000.0
    """Electric-only operation allowed below this demand, W."""

    assist_power_threshold: float = 14_000.0
    """Demand above which the battery assists the engine, W."""

    assist_current: float = 30.0
    """Discharge current used when assisting, A."""

    charge_current: float = -18.0
    """Charging current used in charge-sustaining mode, A."""

    soc_charge_threshold: float = 0.52
    """Below this SoC the engine trickle-charges the pack."""

    soc_critical: float = 0.44
    """Below this SoC the auxiliaries shed to their floor and charging is
    forced."""

    soc_ev_minimum: float = 0.50
    """Electric-only operation requires at least this SoC."""

    shift_speeds: tuple = (4.0, 8.5, 13.0, 18.5)
    """Up-shift vehicle speeds, m/s: gear k is preferred between
    ``shift_speeds[k-1]`` and ``shift_speeds[k]`` — the fixed shift schedule
    typical of production rule-based controllers (they shift by speed, not
    by searching the fuel map)."""

    def __post_init__(self) -> None:
        if not (0 < self.soc_critical < self.soc_charge_threshold < 1):
            raise ValueError("SoC thresholds out of order")
        if self.charge_current >= 0:
            raise ValueError("charge current must be negative")
        if self.assist_current <= 0:
            raise ValueError("assist current must be positive")


class RuleBasedController(Controller):
    """Deterministic threshold-rule supervisory controller."""

    def __init__(self, solver: PowertrainSolver,
                 config: Optional[RuleBasedConfig] = None,
                 reward_config: Optional[RewardConfig] = None):
        """``reward_config`` only affects the *reported* reward (so baselines
        and the RL agent are scored identically); it never drives decisions."""
        self.solver = solver
        self.config = config or RuleBasedConfig()
        self.reward = build_reward_function(solver, reward_config)
        self._preferred_aux = solver.auxiliary.utility.argmax(
            solver.auxiliary.max_power)
        self._gears = np.arange(solver.transmission.num_gears)

    def begin_episode(self) -> None:
        """The rule set is stateless across steps; nothing to reset."""

    def finish_episode(self, learn: bool = True) -> None:
        """No learning state to flush."""

    # ------------------------------------------------------------- decision ---

    def _target_current(self, p_dem: float, speed: float, soc: float) -> float:
        """Apply the threshold rules; returns the commanded current, A."""
        cfg = self.config
        battery = self.solver.battery
        if p_dem < 0.0:
            # Brake: command maximal regeneration; the solver saturates it
            # against the demand, the envelope, and the current limit.
            return -battery.params.max_current
        if soc <= cfg.soc_critical:
            return cfg.charge_current
        if (speed <= cfg.ev_speed_limit and p_dem <= cfg.ev_power_limit
                and soc >= cfg.soc_ev_minimum):
            # EV mode: discharge enough to carry demand plus auxiliaries.
            est_power = p_dem / 0.72 + self._preferred_aux
            return float(battery.clamp_current(
                battery.current_for_power(est_power, soc)))
        if p_dem >= cfg.assist_power_threshold:
            return cfg.assist_current
        if soc <= cfg.soc_charge_threshold:
            return cfg.charge_current
        return 0.0

    def _aux_power(self, soc: float) -> float:
        """Auxiliary rule: preferred draw, shed to floor at critical SoC."""
        if soc <= self.config.soc_critical:
            return self.solver.auxiliary.min_power
        return self._preferred_aux

    def _gear_order(self, speed: float) -> np.ndarray:
        """Gears in rule preference order: the speed-schedule gear first,
        then its neighbours (the fallback when the scheduled gear cannot
        carry the demand)."""
        preferred = int(np.searchsorted(self.config.shift_speeds, speed))
        preferred = min(preferred, len(self._gears) - 1)
        return np.asarray(
            sorted(self._gears, key=lambda g: abs(int(g) - preferred)),
            dtype=int)

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Apply the threshold rules and execute in the scheduled gear."""
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        current = self._target_current(p_dem, speed, soc)
        aux = self._aux_power(soc)
        order = self._gear_order(speed)

        # Evaluate the rule's current in every gear at once; execute the
        # first feasible gear in sweet-spot order.  If the rule current
        # cannot meet demand anywhere, escalate the assist current before
        # falling back to the least-bad point.
        candidates = [current, self.config.assist_current,
                      self.solver.battery.params.max_current]
        chosen = None
        batch = None
        for cand in candidates:
            batch = self.solver.evaluate_actions(
                speed, acceleration, soc,
                np.full(len(order), cand), order,
                np.full(len(order), aux), dt, grade)
            feasible = np.nonzero(batch.feasible)[0]
            if len(feasible):
                chosen = int(feasible[0])
                break
        if chosen is None:
            violation = np.asarray(
                self.reward.window_violation(batch.soc_next))
            score = (np.where(batch.meets_demand, 0.0, 1e6)
                     + violation * 1e3 + batch.shortfall)
            chosen = int(np.argmin(score))
        fallback = not bool(batch.feasible[chosen])

        reward = float(self.reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt,
            soc_next=batch.soc_next[chosen], soc_prev=soc,
            shortfall=batch.shortfall[chosen]))
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt))
        return ExecutedStep(
            state=-1, rl_action=-1,
            current=float(batch.battery_current[chosen]),
            gear=int(batch.gear[chosen]),
            aux_power=float(batch.aux_power[chosen]),
            fuel_rate=float(batch.fuel_rate[chosen]),
            soc_next=float(batch.soc_next[chosen]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[chosen]),
            power_demand=p_dem,
            shortfall=float(batch.shortfall[chosen]))
