"""Thermostat (bang-bang) charge-sustaining baseline.

The simplest classical HEV supervisory strategy (a special case of the
rule-based family the paper's related work surveys): the battery SoC is
regulated like a thermostat — below the low threshold the engine charges
hard until the high threshold is reached; above it the vehicle drives
electrically whenever the EM alone can carry the demand.  No load
levelling, no efficiency-map awareness: a useful lower anchor between
"no strategy" and the tuned rule-based controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.base import Controller
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import RewardConfig, build_reward_function


@dataclass(frozen=True)
class ThermostatConfig:
    """Thermostat thresholds."""

    soc_low: float = 0.50
    """Start charging below this SoC."""

    soc_high: float = 0.70
    """Stop charging above this SoC."""

    charge_current: float = -25.0
    """Charging current while the thermostat is on, A."""

    ev_power_limit: float = 10_000.0
    """EM-only driving allowed below this demand while the thermostat is
    off, W."""

    def __post_init__(self) -> None:
        if not 0 < self.soc_low < self.soc_high < 1:
            raise ValueError("thermostat thresholds out of order")
        if self.charge_current >= 0:
            raise ValueError("charge current must be negative")


class ThermostatController(Controller):
    """Bang-bang charge-sustaining controller with EV preference."""

    def __init__(self, solver: PowertrainSolver,
                 config: Optional[ThermostatConfig] = None,
                 reward_config: Optional[RewardConfig] = None):
        self.solver = solver
        self.config = config or ThermostatConfig()
        self.reward = build_reward_function(solver, reward_config)
        self._charging = False
        self._preferred_aux = solver.auxiliary.utility.argmax(
            solver.auxiliary.max_power)
        self._gears = np.arange(solver.transmission.num_gears)

    def begin_episode(self) -> None:
        """Reset the thermostat to the not-charging side of the hysteresis."""
        self._charging = False

    def finish_episode(self, learn: bool = True) -> None:
        """No learning state."""

    def _update_thermostat(self, soc: float) -> None:
        if soc <= self.config.soc_low:
            self._charging = True
        elif soc >= self.config.soc_high:
            self._charging = False

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Apply the bang-bang rule and execute in the lowest feasible gear."""
        self._update_thermostat(soc)
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        battery = self.solver.battery
        if p_dem < 0.0:
            current = -battery.params.max_current
        elif self._charging:
            current = self.config.charge_current
        elif p_dem <= self.config.ev_power_limit:
            current = float(battery.clamp_current(battery.current_for_power(
                p_dem / 0.72 + self._preferred_aux, soc)))
        else:
            current = 0.0

        batch = self.solver.evaluate_actions(
            speed, acceleration, soc,
            np.full(len(self._gears), current), self._gears,
            np.full(len(self._gears), self._preferred_aux), dt, grade)
        feasible = np.nonzero(batch.feasible)[0]
        if len(feasible):
            chosen = int(feasible[0])  # lowest feasible gear
            fallback = False
        else:
            violation = np.asarray(self.reward.window_violation(
                batch.soc_next))
            score = (np.where(batch.meets_demand, 0.0, 1e6)
                     + violation * 1e3 + batch.shortfall)
            chosen = int(np.argmin(score))
            fallback = True

        reward = float(self.reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt,
            soc_next=batch.soc_next[chosen], soc_prev=soc,
            shortfall=batch.shortfall[chosen]))
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt))
        return ExecutedStep(
            state=-1, rl_action=-1,
            current=float(batch.battery_current[chosen]),
            gear=int(batch.gear[chosen]),
            aux_power=float(batch.aux_power[chosen]),
            fuel_rate=float(batch.fuel_rate[chosen]),
            soc_next=float(batch.soc_next[chosen]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[chosen]),
            power_demand=p_dem,
            shortfall=float(batch.shortfall[chosen]))
