"""Conventional-vehicle baseline: the ICE does everything.

The paper's introduction motivates HEVs by their fuel-economy advantage
over conventional ICE vehicles.  This controller emulates a conventional
drivetrain on the same vehicle: no regenerative braking, no electric
assist — the engine alone covers traction, and the battery only carries
the alternator-style auxiliary load (sustained by a small engine-driven
charge).  The gap between this controller and any hybrid strategy *is* the
hybridisation benefit, separated from all other modelling differences.

Two emulation caveats: below the engine's minimum coupling speed the
solver still drives electrically (a real conventional car slips a clutch or
torque converter there), and the engine does not idle at standstill — both
make this baseline slightly *optimistic*, so the measured HEV benefit is
conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.base import Controller
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import RewardConfig, build_reward_function


@dataclass(frozen=True)
class ConventionalConfig:
    """Behaviour of the conventional emulation."""

    alternator_current: float = -4.0
    """Trickle charge emulating the alternator, A (keeps the small battery
    topped up against the auxiliary draw)."""

    soc_target: float = 0.60
    """SoC above which the alternator stops charging."""

    shift_speeds: tuple = (4.0, 8.5, 13.0, 18.5)
    """Speed-based up-shift schedule, m/s."""

    def __post_init__(self) -> None:
        if self.alternator_current >= 0:
            raise ValueError("alternator current must be negative (charging)")
        if not 0 < self.soc_target < 1:
            raise ValueError("SoC target must be a fraction")


class ConventionalController(Controller):
    """ICE-only operation: no regen, no assist, alternator-style charging."""

    def __init__(self, solver: PowertrainSolver,
                 config: Optional[ConventionalConfig] = None,
                 reward_config: Optional[RewardConfig] = None):
        self.solver = solver
        self.config = config or ConventionalConfig()
        self.reward = build_reward_function(solver, reward_config)
        self._preferred_aux = solver.auxiliary.utility.argmax(
            solver.auxiliary.max_power)
        self._gears = np.arange(solver.transmission.num_gears)

    def begin_episode(self) -> None:
        """Stateless across steps."""

    def finish_episode(self, learn: bool = True) -> None:
        """No learning state."""

    def _gear_order(self, speed: float) -> np.ndarray:
        preferred = int(np.searchsorted(self.config.shift_speeds, speed))
        preferred = min(preferred, len(self._gears) - 1)
        return np.asarray(
            sorted(self._gears, key=lambda g: abs(int(g) - preferred)),
            dtype=int)

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Engine-only traction with alternator-style battery sustenance."""
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        battery = self.solver.battery
        if p_dem < 0.0:
            # Friction brakes only: command zero current; the solver clips
            # motoring against brakes, and aux-sustaining discharge remains.
            current = float(battery.clamp_current(
                battery.current_for_power(self._preferred_aux, soc)))
        elif soc < self.config.soc_target:
            current = self.config.alternator_current
        else:
            # Battery neutral apart from carrying the auxiliary load.
            current = float(battery.clamp_current(
                battery.current_for_power(self._preferred_aux, soc)))

        order = self._gear_order(speed)
        batch = self.solver.evaluate_actions(
            speed, acceleration, soc, np.full(len(order), current), order,
            np.full(len(order), self._preferred_aux), dt, grade)
        feasible = np.nonzero(batch.feasible)[0]
        if len(feasible):
            chosen = int(feasible[0])
            fallback = False
        else:
            violation = np.asarray(self.reward.window_violation(
                batch.soc_next))
            score = (np.where(batch.meets_demand, 0.0, 1e6)
                     + violation * 1e3 + batch.shortfall)
            chosen = int(np.argmin(score))
            fallback = True

        reward = float(self.reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt,
            soc_next=batch.soc_next[chosen], soc_prev=soc,
            shortfall=batch.shortfall[chosen]))
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt))
        return ExecutedStep(
            state=-1, rl_action=-1,
            current=float(batch.battery_current[chosen]),
            gear=int(batch.gear[chosen]),
            aux_power=float(batch.aux_power[chosen]),
            fuel_rate=float(batch.fuel_rate[chosen]),
            soc_next=float(batch.soc_next[chosen]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[chosen]),
            power_demand=p_dem,
            shortfall=float(batch.shortfall[chosen]))
