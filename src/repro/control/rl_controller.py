"""RL controller wrapper and factory presets.

:class:`JointControlAgent` already speaks the controller protocol;
:class:`RLController` pins that contract nominally and the factory builds
the three configurations the paper's evaluation uses:

* ``proposed`` — prediction-enhanced joint control of powertrain and
  auxiliaries (the paper's contribution),
* ``no_prediction`` — same joint control without the prediction state
  dimension (isolates the Fig. 2 prediction gain),
* ``baseline13`` — RL powertrain control only, prediction off and
  auxiliaries pinned at their preferred draw (the ICCAD'14 policy [13]).
"""

from __future__ import annotations

from typing import Optional

from repro.control.base import Controller
from repro.powertrain.solver import PowertrainSolver
from repro.prediction.exponential import ExponentialPredictor
from repro.prediction.base import Predictor
from repro.rl.agent import ActionSpaceConfig, ExecutedStep, JointControlAgent
from repro.rl.exploration import EpsilonGreedy
from repro.rl.reward import RewardConfig
from repro.rl.td_lambda import TDLambdaConfig


class RLController(Controller):
    """Controller-protocol adapter around a :class:`JointControlAgent`."""

    def __init__(self, agent: JointControlAgent):
        self.agent = agent

    def begin_episode(self) -> None:
        """Delegate to the wrapped agent."""
        self.agent.begin_episode()

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Delegate to the wrapped agent."""
        return self.agent.act(speed, acceleration, soc, dt, grade,
                              learn=learn, greedy=greedy)

    def finish_episode(self, learn: bool = True) -> None:
        """Delegate to the wrapped agent."""
        self.agent.finish_episode(learn=learn)

    def act_batch(self, speeds, accelerations, socs, dt: float,
                  grades=None) -> list:
        """Delegate to the agent's side-effect-free vectorised probe."""
        return self.agent.act_batch(speeds, accelerations, socs, dt,
                                    grades=grades)


def build_rl_controller(solver: PowertrainSolver, variant: str = "proposed",
                        td_config: Optional[TDLambdaConfig] = None,
                        reward_config: Optional[RewardConfig] = None,
                        action_config: Optional[ActionSpaceConfig] = None,
                        predictor: Optional[Predictor] = None,
                        seed: int = 42) -> RLController:
    """Build one of the paper's RL controller configurations.

    ``variant`` is ``"proposed"``, ``"no_prediction"``, or ``"baseline13"``.
    Pass ``predictor`` to override the default exponential predictor of the
    proposed variant (the predictor ablation does).
    """
    if variant == "proposed":
        predictor = predictor or ExponentialPredictor()
        action = action_config or ActionSpaceConfig(control_aux=True)
    elif variant == "no_prediction":
        predictor = None
        action = action_config or ActionSpaceConfig(control_aux=True)
    elif variant == "baseline13":
        predictor = None
        action = action_config or ActionSpaceConfig(control_aux=False)
    else:
        raise ValueError(
            f"unknown variant {variant!r}; expected 'proposed', "
            f"'no_prediction', or 'baseline13'")
    agent = JointControlAgent(
        solver,
        td_config=td_config,
        reward_config=reward_config,
        action_config=action,
        predictor=predictor,
        exploration=EpsilonGreedy(seed=seed),
        seed=seed)
    return RLController(agent)
