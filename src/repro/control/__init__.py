"""HEV supervisory controllers.

All controllers speak the :class:`Controller` protocol the simulator
drives: the proposed RL agent (wrapped), the rule-based baseline of
Banvait et al. the paper compares against, an ECMS baseline, and an
offline dynamic-programming optimum used as an upper bound in the
ablation benches.
"""

from repro.control.base import Controller
from repro.control.rule_based import RuleBasedConfig, RuleBasedController
from repro.control.rl_controller import RLController, build_rl_controller
from repro.control.ecms import ECMSConfig, ECMSController
from repro.control.dp import DPConfig, DPController, solve_dp
from repro.control.thermostat import ThermostatConfig, ThermostatController
from repro.control.conventional import ConventionalConfig, ConventionalController

__all__ = [
    "Controller",
    "RuleBasedConfig",
    "RuleBasedController",
    "RLController",
    "build_rl_controller",
    "ECMSConfig",
    "ECMSController",
    "DPConfig",
    "DPController",
    "solve_dp",
    "ThermostatConfig",
    "ThermostatController",
    "ConventionalConfig",
    "ConventionalController",
]
