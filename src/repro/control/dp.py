"""Offline dynamic-programming optimum (extension; upper bound for benches).

With the whole drive cycle known in advance, backward induction over a
(time x state-of-charge) grid yields the globally optimal control sequence
for the joint objective — the bound every online controller (rule-based,
ECMS, RL) is measured against in the ablation benches.

Stage cost is the negated paper reward ``(mdot_f - w * f_aux) * dt`` so the
DP minimises exactly what the RL agent maximises; the terminal cost charges
any final-SoC deficit at the engine's average fuel-to-electricity
conversion efficiency, enforcing charge sustenance.

The forward pass re-optimises each step against the stored value function
(a rollout on the exact model), which keeps the executed trajectory
consistent with the simulator's physics without storing per-node policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import RewardConfig, build_reward_function


@dataclass(frozen=True)
class DPConfig:
    """Grid resolution of the DP solve."""

    soc_nodes: int = 21
    """Number of state-of-charge grid nodes across the operating window."""

    current_levels: int = 15
    """Number of candidate battery currents."""

    aux_levels: int = 4
    """Number of candidate auxiliary power levels."""

    conversion_efficiency: float = 0.30
    """Fuel-to-stored-electricity efficiency pricing the terminal SoC
    deficit."""

    infeasible_cost: float = 1e4
    """Stage cost assigned where no action is feasible (keeps the value
    function finite on unreachable grid corners)."""

    def __post_init__(self) -> None:
        if self.soc_nodes < 3:
            raise ValueError("need at least three SoC nodes")
        if self.current_levels < 3 or self.aux_levels < 1:
            raise ValueError("action grids too small")
        if not 0 < self.conversion_efficiency <= 1:
            raise ValueError("conversion efficiency must be in (0, 1]")


@dataclass
class DPSolution:
    """Value function of one backward-induction solve."""

    soc_grid: np.ndarray
    """SoC nodes (fractions), ascending."""

    values: np.ndarray
    """``values[t, j]`` = optimal cost-to-go from SoC node j at step t;
    shape (steps + 1, soc_nodes)."""

    cycle_name: str
    """Cycle the solution was computed for."""

    initial_soc: float
    """SoC whose deficit the terminal cost charges."""

    def cost_to_go(self, t: int, soc: float) -> float:
        """Linear interpolation of the value function at (t, soc)."""
        return float(np.interp(soc, self.soc_grid, self.values[t]))

    @property
    def optimal_cost(self) -> float:
        """Cost-to-go from the initial SoC at departure (grams equivalent)."""
        return self.cost_to_go(0, self.initial_soc)


def _action_grid(solver: PowertrainSolver, config: DPConfig):
    i_max = solver.params.battery.max_current
    currents = np.linspace(-i_max, i_max, config.current_levels)
    gears = np.arange(solver.transmission.num_gears)
    aux_levels = solver.auxiliary.power_levels(config.aux_levels)
    grid = np.array(np.meshgrid(currents, gears, aux_levels,
                                indexing="ij")).reshape(3, -1)
    return grid[0], grid[1].astype(int), grid[2]


def solve_dp(solver: PowertrainSolver, cycle: DriveCycle,
             initial_soc: float = 0.60, config: Optional[DPConfig] = None,
             reward_config: Optional[RewardConfig] = None) -> DPSolution:
    """Backward induction over the (time, SoC) grid for ``cycle``."""
    config = config or DPConfig()
    reward_config = reward_config or RewardConfig()
    battery = solver.params.battery
    reward = build_reward_function(solver, reward_config)
    currents, gears, aux = _action_grid(solver, config)

    soc_grid = np.linspace(battery.soc_min, battery.soc_max, config.soc_nodes)
    steps = len(cycle) - 1
    values = np.zeros((steps + 1, config.soc_nodes))

    # Terminal cost: price the SoC deficit in grams of fuel.
    nominal_voltage = float(solver.battery.open_circuit_voltage(
        0.5 * (battery.soc_min + battery.soc_max)))
    deficit = np.maximum(initial_soc - soc_grid, 0.0)
    values[steps] = (deficit * battery.capacity * nominal_voltage
                     / (config.conversion_efficiency
                        * solver.engine.fuel_energy_density))

    demands = list(cycle.steps())
    for t in range(steps - 1, -1, -1):
        speed, accel, grade = demands[t]
        next_values = values[t + 1]
        for j, soc in enumerate(soc_grid):
            batch = solver.evaluate_actions(speed, accel, soc, currents,
                                            gears, aux, cycle.dt, grade)
            stage = -np.asarray(reward.paper_reward(
                batch.fuel_rate, batch.aux_power, cycle.dt))
            future = np.interp(batch.soc_next, soc_grid, next_values)
            total = np.where(batch.feasible, stage + future, np.inf)
            best = float(np.min(total))
            values[t, j] = (best if np.isfinite(best)
                            else config.infeasible_cost + float(next_values[j]))
    return DPSolution(soc_grid=soc_grid, values=values,
                      cycle_name=cycle.name, initial_soc=initial_soc)


class DPController(Controller):
    """Forward rollout of a :class:`DPSolution` (optimal on its own cycle)."""

    def __init__(self, solver: PowertrainSolver, solution: DPSolution,
                 config: Optional[DPConfig] = None,
                 reward_config: Optional[RewardConfig] = None):
        self.solver = solver
        self.solution = solution
        self.config = config or DPConfig()
        self.reward = build_reward_function(solver, reward_config)
        self._currents, self._gears, self._aux = _action_grid(solver,
                                                              self.config)
        self._t = 0

    def begin_episode(self) -> None:
        """Rewind the rollout to the first cycle step."""
        self._t = 0

    def finish_episode(self, learn: bool = True) -> None:
        """DP carries no learning state."""

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Pick the action minimising stage cost plus interpolated cost-to-go."""
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        batch = self.solver.evaluate_actions(
            speed, acceleration, soc, self._currents, self._gears, self._aux,
            dt, grade)
        stage = -np.asarray(self.reward.paper_reward(
            batch.fuel_rate, batch.aux_power, dt))
        t_next = min(self._t + 1, len(self.solution.values) - 1)
        future = np.interp(batch.soc_next, self.solution.soc_grid,
                           self.solution.values[t_next])
        total = np.where(batch.feasible, stage + future, np.inf)
        chosen = int(np.argmin(total))
        fallback = not np.isfinite(total[chosen])
        if fallback:
            violation = np.asarray(
                self.reward.window_violation(batch.soc_next))
            score = (np.where(batch.meets_demand, 0.0, 1e6)
                     + violation * 1e3 + batch.shortfall)
            chosen = int(np.argmin(score))
        self._t += 1

        reward = float(self.reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt,
            soc_next=batch.soc_next[chosen], soc_prev=soc,
            shortfall=batch.shortfall[chosen]))
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt))
        return ExecutedStep(
            state=-1, rl_action=-1,
            current=float(batch.battery_current[chosen]),
            gear=int(batch.gear[chosen]),
            aux_power=float(batch.aux_power[chosen]),
            fuel_rate=float(batch.fuel_rate[chosen]),
            soc_next=float(batch.soc_next[chosen]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[chosen]),
            power_demand=p_dem,
            shortfall=float(batch.shortfall[chosen]))
