"""The controller protocol the simulator drives.

Any supervisory controller — learning or not — implements three methods:
``begin_episode`` at departure, ``act`` once per time step, and
``finish_episode`` at arrival.  ``act`` receives exactly what a real HEV
supervisory controller can observe (speed, pedal-implied acceleration,
grade, battery SoC from Coulomb counting) and returns the
:class:`repro.rl.agent.ExecutedStep` describing what was done.
"""

from __future__ import annotations

import abc

from repro.rl.agent import ExecutedStep


class Controller(abc.ABC):
    """Abstract supervisory controller."""

    @abc.abstractmethod
    def begin_episode(self) -> None:
        """Prepare for a new drive (reset episode-scoped state)."""

    @abc.abstractmethod
    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Decide and execute one step; returns the resolved step.

        Non-learning controllers ignore ``learn``/``greedy``.
        """

    @abc.abstractmethod
    def finish_episode(self, learn: bool = True) -> None:
        """Drive finished (flush terminal learning updates, if any)."""
