"""The controller protocol the simulator drives.

Any supervisory controller — learning or not — implements three methods:
``begin_episode`` at departure, ``act`` once per time step, and
``finish_episode`` at arrival.  ``act`` receives exactly what a real HEV
supervisory controller can observe (speed, pedal-implied acceleration,
grade, battery SoC from Coulomb counting) and returns the
:class:`repro.rl.agent.ExecutedStep` describing what was done.
"""

from __future__ import annotations

import abc

from repro.rl.agent import ExecutedStep


class Controller(abc.ABC):
    """Abstract supervisory controller."""

    @abc.abstractmethod
    def begin_episode(self) -> None:
        """Prepare for a new drive (reset episode-scoped state)."""

    @abc.abstractmethod
    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Decide and execute one step; returns the resolved step.

        Non-learning controllers ignore ``learn``/``greedy``.
        """

    @abc.abstractmethod
    def finish_episode(self, learn: bool = True) -> None:
        """Drive finished (flush terminal learning updates, if any)."""

    def act_batch(self, speeds, accelerations, socs, dt: float,
                  grades=None) -> list:
        """Greedy policy probe over N *independent* observations.

        Unlike :meth:`act`, the observations are not consecutive steps of
        one drive: each ``(speed, acceleration, soc, grade)`` tuple is a
        standalone "what would you do here" query, and answering must not
        mutate controller state (no learning, no exploration advance).
        Returns one :class:`ExecutedStep` per observation.

        The default implementation falls back to the scalar :meth:`act`
        with ``learn=False, greedy=True`` — correct for stateless
        controllers; stateful ones (e.g. the RL agent) override it with a
        genuinely side-effect-free vectorised path.
        """
        if grades is None:
            grades = [0.0] * len(speeds)
        if not (len(speeds) == len(accelerations) == len(socs)
                == len(grades)):
            raise ValueError(
                "speeds, accelerations, socs, and grades must be "
                "index-aligned")
        return [self.act(float(speeds[i]), float(accelerations[i]),
                         float(socs[i]), dt, float(grades[i]),
                         learn=False, greedy=True)
                for i in range(len(speeds))]
