"""Equivalent Consumption Minimisation Strategy (ECMS) baseline.

The classic real-time optimisation-based strategy the paper's related-work
section describes (Delprat et al. [10]): at each instant, convert battery
power into *equivalent* fuel flow through an equivalence factor ``s`` and
minimise

    cost = mdot_f + s * P_batt / D_f - w * f_aux(p_aux)

over the admissible actions.  A proportional SoC feedback keeps the pack
inside its charge-sustaining window by inflating ``s`` when the charge is
low (discharging becomes expensive) and deflating it when high.

Unlike the RL agent, ECMS needs the full fuel map at decision time — it is
the model-*based* reference point in the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.control.base import Controller
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import RewardConfig, build_reward_function


@dataclass(frozen=True)
class ECMSConfig:
    """ECMS tuning parameters."""

    equivalence_factor: float = 2.4
    """Baseline equivalence factor ``s0`` (dimensionless; ~2-3 for
    charge-sustaining gasoline hybrids)."""

    soc_feedback_gain: float = 6.0
    """Proportional gain of the SoC-sustaining feedback on ``s``."""

    soc_target: float = 0.60
    """SoC the feedback regulates toward (fraction)."""

    current_levels: int = 21
    """Number of candidate battery currents evaluated per step."""

    aux_levels: int = 6
    """Number of candidate auxiliary power levels per step."""

    def __post_init__(self) -> None:
        if self.equivalence_factor <= 0:
            raise ValueError("equivalence factor must be positive")
        if self.soc_feedback_gain < 0:
            raise ValueError("feedback gain cannot be negative")
        if not 0 < self.soc_target < 1:
            raise ValueError("SoC target must be a fraction")
        if self.current_levels < 3 or self.aux_levels < 1:
            raise ValueError("candidate grids too small")


class ECMSController(Controller):
    """Instantaneous equivalent-fuel minimiser with SoC feedback."""

    def __init__(self, solver: PowertrainSolver,
                 config: Optional[ECMSConfig] = None,
                 reward_config: Optional[RewardConfig] = None):
        self.solver = solver
        self.config = config or ECMSConfig()
        self._reward_config = reward_config or RewardConfig()
        self.reward = build_reward_function(solver, self._reward_config)
        self._fuel_energy = solver.engine.fuel_energy_density

        i_max = solver.params.battery.max_current
        currents = np.linspace(-i_max, i_max, self.config.current_levels)
        gears = np.arange(solver.transmission.num_gears)
        aux_levels = solver.auxiliary.power_levels(self.config.aux_levels)
        grid = np.array(np.meshgrid(currents, gears, aux_levels,
                                    indexing="ij")).reshape(3, -1)
        self._grid_currents = grid[0]
        self._grid_gears = grid[1].astype(int)
        self._grid_aux = grid[2]

    def begin_episode(self) -> None:
        """ECMS carries no episode state."""

    def finish_episode(self, learn: bool = True) -> None:
        """ECMS carries no learning state."""

    def equivalence_factor(self, soc: float) -> float:
        """SoC-feedback-adjusted equivalence factor ``s(soc)``."""
        cfg = self.config
        return max(cfg.equivalence_factor
                   * (1.0 + cfg.soc_feedback_gain * (cfg.soc_target - soc)),
                   0.1)

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Minimise the instantaneous equivalent fuel over the action grid."""
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        batch = self.solver.evaluate_actions(
            speed, acceleration, soc, self._grid_currents, self._grid_gears,
            self._grid_aux, dt, grade)
        s = self.equivalence_factor(soc)
        utility = np.asarray(self.solver.auxiliary.utility(batch.aux_power))
        cost = (batch.fuel_rate
                + s * batch.battery_power / self._fuel_energy
                - self._reward_config.aux_weight * utility)
        masked = np.where(batch.feasible, cost, np.inf)
        chosen = int(np.argmin(masked))
        fallback = not np.isfinite(masked[chosen])
        if fallback:
            violation = np.asarray(
                self.reward.window_violation(batch.soc_next))
            score = (np.where(batch.meets_demand, 0.0, 1e6)
                     + violation * 1e3 + batch.shortfall)
            chosen = int(np.argmin(score))

        reward = float(self.reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt,
            soc_next=batch.soc_next[chosen], soc_prev=soc,
            shortfall=batch.shortfall[chosen]))
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[chosen], batch.aux_power[chosen], dt))
        return ExecutedStep(
            state=-1, rl_action=-1,
            current=float(batch.battery_current[chosen]),
            gear=int(batch.gear[chosen]),
            aux_power=float(batch.aux_power[chosen]),
            fuel_rate=float(batch.fuel_rate[chosen]),
            soc_next=float(batch.soc_next[chosen]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[chosen]),
            power_demand=p_dem,
            shortfall=float(batch.shortfall[chosen]))
