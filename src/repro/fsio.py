"""Injectable filesystem shim for the durability-critical write paths.

Every write the repository's persistence layers promise durability for —
sweep-manifest appends (:mod:`repro.exec.manifest`), policy/checkpoint
atomic writes (:mod:`repro.rl.persistence`), and telemetry event appends
(:mod:`repro.telemetry.events`) — is routed through the thin wrappers in
this module.  With no shim installed (the production default, and the
only state the library itself ever runs in) each wrapper is a single
``is None`` branch in front of the exact seed-behaviour call, so an
uninjected run is bit-identical to pre-shim behaviour (golden-tested in
``tests/test_chaos.py``).

The chaos harness (:mod:`repro.chaos`) installs a
:class:`FilesystemShim` to simulate infrastructure faults — out-of-disk
(``ENOSPC``) appends, torn partial writes, pathologically slow I/O —
without patching any library internals, then verifies the documented
recovery invariants hold.  A shim sees the *logical* destination path of
every operation, so it can target one artifact (just the manifest, just
the ``.npz``) and leave the rest of the run untouched.

Shims are process-local state, installed/removed explicitly
(:func:`install_shim` / :func:`uninstall_shim`) or scoped with the
:func:`shimmed` context manager.  Installation is deliberately not
re-entrant: installing over an active shim raises, because two
overlapping fault injections would make a campaign's fault schedule
ambiguous.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import ChaosError

PathLike = Union[str, Path]


class FilesystemShim:
    """Base interception points; every default is pure pass-through.

    Subclasses override the hooks they want to corrupt.  Each hook
    receives the logical destination ``path`` (the artifact being
    persisted — for atomic tmp-then-rename writes this is the *final*
    path, not the temporary sibling) and a ``default`` callable that
    performs the real operation; a hook may call it with modified
    arguments (partial data = a torn write), delay before calling it
    (slow I/O), or raise ``OSError`` instead (``ENOSPC``, ``EIO``).
    """

    def write(self, path: Optional[Path], data: bytes,
              default: Callable[[bytes], Optional[int]]) -> Optional[int]:
        """One logical write of ``data`` toward ``path``."""
        return default(data)

    def fsync(self, path: Optional[Path],
              default: Callable[[], None]) -> None:
        """One fsync of the descriptor backing ``path``."""
        default()

    def replace(self, src: Path, dst: Path,
                default: Callable[[], None]) -> None:
        """One atomic rename of ``src`` over ``dst``."""
        default()

    def read(self, path: Optional[Path], size: Optional[int],
             default: Callable[[], bytes]) -> bytes:
        """One logical read of up to ``size`` bytes from ``path``.

        ``size=None`` reads the whole file.  Added for the serving
        layer's artifact loads; a shim may delay before calling
        ``default`` (slow storage) or raise ``OSError`` (failed read).
        """
        return default()


_SHIM: Optional[FilesystemShim] = None


def current_shim() -> Optional[FilesystemShim]:
    """The installed shim, or None (the production state)."""
    return _SHIM


def install_shim(shim: FilesystemShim) -> None:
    """Install ``shim`` as the process-wide write interceptor."""
    global _SHIM
    if not isinstance(shim, FilesystemShim):
        raise ChaosError(
            f"filesystem shims must subclass FilesystemShim; "
            f"got {type(shim).__name__}")
    if _SHIM is not None:
        raise ChaosError(
            "a filesystem shim is already installed; overlapping fault "
            "injections would make the fault schedule ambiguous "
            "(uninstall_shim first)")
    _SHIM = shim


def uninstall_shim() -> None:
    """Remove the installed shim (idempotent)."""
    global _SHIM
    _SHIM = None


@contextmanager
def shimmed(shim: FilesystemShim):
    """Install ``shim`` for the duration of the block, then remove it."""
    install_shim(shim)
    try:
        yield shim
    finally:
        uninstall_shim()


# -- wrappers used by the persistence layers --------------------------------
#
# Each wrapper's no-shim branch is exactly the call the layer made before
# the shim existed; keep it first and branch-free beyond the None check.

def os_write(fd: int, data: bytes, path: Optional[PathLike] = None) -> int:
    """``os.write`` with shim interception (telemetry event appends)."""
    if _SHIM is None:
        return os.write(fd, data)
    result = _SHIM.write(_as_path(path), data, lambda b: os.write(fd, b))
    return len(data) if result is None else result


def file_write(fh, data, path: Optional[PathLike] = None) -> None:
    """``fh.write`` with shim interception (manifest/atomic writes).

    ``data`` may be ``str`` or ``bytes``, matching the mode ``fh`` was
    opened with; a shim always sees bytes (UTF-8 for text handles).
    """
    if _SHIM is None:
        fh.write(data)
        return
    if isinstance(data, str):
        _SHIM.write(_as_path(path), data.encode("utf-8"),
                    lambda b: fh.write(b.decode("utf-8")))
    else:
        _SHIM.write(_as_path(path), data, lambda b: fh.write(b))


def fsync(fd: int, path: Optional[PathLike] = None) -> None:
    """``os.fsync`` with shim interception."""
    if _SHIM is None:
        os.fsync(fd)
        return
    _SHIM.fsync(_as_path(path), lambda: os.fsync(fd))


def replace(src: PathLike, dst: PathLike) -> None:
    """``os.replace`` with shim interception (atomic rename-into-place)."""
    if _SHIM is None:
        os.replace(src, dst)
        return
    _SHIM.replace(Path(src), Path(dst), lambda: os.replace(src, dst))


def read_bytes(path: PathLike, size: Optional[int] = None) -> bytes:
    """Read up to ``size`` bytes of ``path`` (all when ``None``).

    The serving layer's artifact loads go through here so the chaos
    harness can inject slow or failing storage on the *read* side; with
    no shim installed this is a plain open-and-read.
    """
    def _read() -> bytes:
        with open(path, "rb") as fh:
            return fh.read() if size is None else fh.read(size)
    if _SHIM is None:
        return _read()
    return _SHIM.read(_as_path(path), size, _read)


def fsync_directory(directory: PathLike) -> None:
    """Best-effort fsync of ``directory`` (durability of a rename).

    After ``os.replace`` the *file* contents are durable but the
    directory entry pointing at them may not be; fsyncing the parent
    directory closes that window.  Platforms/filesystems that refuse to
    fsync a directory descriptor degrade silently — the rename itself
    already happened, so this is strictly additional durability.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # containment: directory fsync is best-effort hardening
        return
    try:
        if _SHIM is None:
            os.fsync(fd)
        else:
            _SHIM.fsync(Path(directory), lambda: os.fsync(fd))
    except OSError:  # containment: some filesystems cannot fsync directories
        pass
    finally:
        os.close(fd)


def _as_path(path: Optional[PathLike]) -> Optional[Path]:
    return None if path is None else Path(path)
