"""Markov-chain power-demand predictor (ablation alternative).

Discretises the measured power demand into bins, learns the empirical
first-order transition matrix online, and predicts the expected value of
the next bin given the current one.  Compared with the exponential filter
this captures recurring demand patterns (stop-and-go rhythms) at the price
of a short warm-up and per-step bookkeeping.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.base import Predictor


class MarkovPredictor(Predictor):
    """Online first-order Markov-chain predictor over power-demand bins."""

    def __init__(self, power_min: float = -40_000.0, power_max: float = 40_000.0,
                 num_bins: int = 16, prior_count: float = 0.5):
        """Bins span ``[power_min, power_max]`` W; ``prior_count`` is the
        Laplace smoothing added to every transition cell."""
        if power_max <= power_min:
            raise ValueError("power range is empty")
        if num_bins < 2:
            raise ValueError("need at least two bins")
        if prior_count < 0:
            raise ValueError("prior count cannot be negative")
        self._edges = np.linspace(power_min, power_max, num_bins + 1)
        self._centers = 0.5 * (self._edges[:-1] + self._edges[1:])
        self._counts = np.full((num_bins, num_bins), prior_count)
        self._prior_count = prior_count
        self._last_bin: int = num_bins // 2
        self._initial_bin: int = num_bins // 2

    def _bin_of(self, power: float) -> int:
        idx = int(np.searchsorted(self._edges, power, side="right") - 1)
        return int(np.clip(idx, 0, len(self._centers) - 1))

    def update(self, measurement: float) -> None:
        """Count the transition into the measurement's bin and move there."""
        new_bin = self._bin_of(float(measurement))
        self._counts[self._last_bin, new_bin] += 1.0
        self._last_bin = new_bin

    def predict(self) -> float:
        """Expected next demand: probability-weighted bin centres, W."""
        row = self._counts[self._last_bin]
        total = row.sum()
        if total <= 0:
            return float(self._centers[self._last_bin])
        return float(np.dot(row / total, self._centers))

    def reset(self) -> None:
        """Reset the chain position but keep the learned transitions.

        The transition statistics generalise across episodes of the same
        driving environment, so only the position is episode-specific.
        """
        self._last_bin = self._initial_bin

    def forget(self) -> None:
        """Drop all learned transition statistics (full re-initialisation)."""
        self._counts.fill(self._prior_count)
        self._last_bin = self._initial_bin
