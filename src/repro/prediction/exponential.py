"""Exponential weighting predictor (paper Eq. 12).

    pre_i = (1 - alpha) * pre_{i-1} + alpha * meas_{i-1}

The paper selects this filter deliberately: prediction accuracy is
inherently limited, and a more elaborate predictor only adds state-space
dimensions to the RL algorithm.  The exponential filter captures the
short-term power-demand trend — the quantity the agent's action (battery
current, gear) couples to — at O(1) cost.
"""

from __future__ import annotations

from repro.prediction.base import Predictor


class ExponentialPredictor(Predictor):
    """First-order exponential smoothing of the measured power demand."""

    def __init__(self, learning_rate: float = 0.35, initial: float = 0.0):
        """``learning_rate`` is the paper's alpha in (0, 1]; ``initial`` is the
        prior prediction before any measurement arrives, W."""
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning rate must be in (0, 1]")
        self._alpha = learning_rate
        self._initial = float(initial)
        self._prediction = float(initial)

    @property
    def learning_rate(self) -> float:
        """The smoothing factor alpha of Eq. 12."""
        return self._alpha

    def update(self, measurement: float) -> None:
        """Apply the Eq. 12 recurrence with the completed step's demand, W."""
        self._prediction = ((1.0 - self._alpha) * self._prediction
                            + self._alpha * float(measurement))

    def predict(self) -> float:
        """Current smoothed prediction of the upcoming demand, W."""
        return self._prediction

    def reset(self) -> None:
        """Restore the prior prediction (new episode)."""
        self._prediction = self._initial
