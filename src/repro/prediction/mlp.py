"""Tiny feed-forward neural-network predictor (the paper's "ANN" alternative).

A one-hidden-layer perceptron trained online by stochastic gradient descent
on (history window -> next demand) pairs.  Inputs and targets are scaled to
a fixed power range so the learning rate behaves uniformly across cycles.
The network is deliberately small — the paper notes that heavier predictors
buy little, because prediction accuracy is limited by driver randomness and
extra precision bloats the RL state space anyway.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.prediction.base import Predictor


class MLPPredictor(Predictor):
    """Online-trained single-hidden-layer MLP over a demand history window."""

    def __init__(self, window: int = 8, hidden: int = 12,
                 learning_rate: float = 0.02, power_scale: float = 30_000.0,
                 seed: int = 7):
        """``window`` past measurements feed ``hidden`` tanh units; weights
        start at small seeded random values and train online by SGD."""
        if window < 1 or hidden < 1:
            raise ValueError("window and hidden size must be positive")
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if power_scale <= 0:
            raise ValueError("power scale must be positive")
        self._window = window
        self._scale = power_scale
        self._lr = learning_rate
        rng = np.random.default_rng(seed)
        self._w1 = rng.normal(0.0, 0.3, size=(hidden, window))
        self._b1 = np.zeros(hidden)
        self._w2 = rng.normal(0.0, 0.3, size=hidden)
        self._b2 = 0.0
        self._history: deque = deque(maxlen=window)

    def _features(self) -> np.ndarray:
        """Scaled history window, zero-padded on the old side."""
        x = np.zeros(self._window)
        hist = list(self._history)
        if hist:
            x[-len(hist):] = np.asarray(hist) / self._scale
        return x

    def _forward(self, x: np.ndarray):
        h = np.tanh(self._w1 @ x + self._b1)
        y = float(self._w2 @ h + self._b2)
        return h, y

    def update(self, measurement: float) -> None:
        """One SGD step on (history window -> measurement), then slide the
        window forward."""
        target = float(measurement) / self._scale
        if len(self._history) == self._window:
            # One SGD step on (previous window -> this measurement).
            x = self._features()
            h, y = self._forward(x)
            err = y - target
            grad_w2 = err * h
            grad_h = err * self._w2 * (1.0 - h ** 2)
            self._w2 -= self._lr * grad_w2
            self._b2 -= self._lr * err
            self._w1 -= self._lr * np.outer(grad_h, x)
            self._b1 -= self._lr * grad_h
        self._history.append(float(measurement))

    def predict(self) -> float:
        """Network output for the current history window, W."""
        if not self._history:
            return 0.0
        _, y = self._forward(self._features())
        return y * self._scale

    def reset(self) -> None:
        """Clear the episode history; learned weights persist across episodes."""
        self._history.clear()
