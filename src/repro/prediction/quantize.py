"""Quantisation of predictions into RL state levels.

The paper stresses the accuracy/complexity trade-off: every extra precision
level of the prediction adds a dimension's worth of state-action pairs to
the Q-table.  The quantiser maps the continuous predicted power demand into
a small number of levels (three by default: regenerating / light / heavy
demand) that become the ``pre`` component of the RL state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class PredictionQuantizer:
    """Maps a continuous prediction to one of ``len(thresholds) + 1`` levels."""

    def __init__(self, thresholds: Sequence[float] = (0.0, 8_000.0)):
        """``thresholds`` are strictly increasing power boundaries in W; a
        prediction below the first threshold maps to level 0, and so on."""
        t = [float(x) for x in thresholds]
        if len(t) < 1:
            raise ValueError("need at least one threshold")
        if any(b <= a for a, b in zip(t, t[1:])):
            raise ValueError("thresholds must be strictly increasing")
        self._thresholds = np.asarray(t)

    @property
    def num_levels(self) -> int:
        """Number of discrete prediction levels."""
        return len(self._thresholds) + 1

    def __call__(self, prediction: float) -> int:
        """Quantise one prediction to its level index."""
        return int(np.searchsorted(self._thresholds, prediction, side="right"))
