"""Velocity-based demand prediction (the alternative the paper rejects).

Section 4.2 observes that although one could predict either future
*velocity* or future *power demand*, predicting the demand is more useful
because it couples directly to the agent's action.  This predictor makes
that comparison concrete: it exponentially smooths the measured velocity
and converts the smoothed velocity to an equivalent steady-state power
demand through the vehicle's road-load model (zero acceleration).  The
predictor ablation shows what the indirection costs: transient demand
(accelerations, braking) is invisible to a velocity average.
"""

from __future__ import annotations

from repro.prediction.base import Predictor
from repro.vehicle.dynamics import VehicleDynamics


class VelocityPredictor(Predictor):
    """Exponentially smoothed velocity mapped to steady-state power demand.

    Feed :meth:`update_velocity` with the measured vehicle speed each step
    (the generic :meth:`update` accepts the power-demand measurement for
    interface compatibility but ignores it — this predictor deliberately
    only looks at velocity).
    """

    def __init__(self, dynamics: VehicleDynamics,
                 learning_rate: float = 0.35):
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning rate must be in (0, 1]")
        self._dynamics = dynamics
        self._alpha = learning_rate
        self._velocity = 0.0

    def update_velocity(self, speed: float) -> None:
        """Feed the measured vehicle speed of the completed step, m/s."""
        if speed < 0:
            raise ValueError("speed cannot be negative")
        self._velocity = ((1.0 - self._alpha) * self._velocity
                          + self._alpha * float(speed))

    def update(self, measurement: float) -> None:
        """Interface shim: power-demand measurements are ignored.

        The simulator feeds every predictor the measured demand; this
        predictor's information channel is :meth:`update_velocity`, wired
        by the agent when it recognises the type.
        """

    def predict(self) -> float:
        """Steady-state road-load power at the smoothed velocity, W."""
        return float(self._dynamics.power_demand(self._velocity, 0.0))

    def reset(self) -> None:
        """Forget the smoothed velocity (new episode)."""
        self._velocity = 0.0
