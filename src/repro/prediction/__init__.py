"""Prediction of future driving-profile characteristics (paper Section 4.2).

The predicted quantity is the *propulsion power demand* — the paper argues
it is more useful to the agent than predicted velocity because it relates
directly to the chosen action.  The primary method is the exponential
weighting function of Eq. 12; a Markov-chain predictor and a tiny
feed-forward neural network (the paper's "ANN" alternative) are provided for
the predictor-choice ablation.
"""

from repro.prediction.base import Predictor
from repro.prediction.exponential import ExponentialPredictor
from repro.prediction.markov import MarkovPredictor
from repro.prediction.mlp import MLPPredictor
from repro.prediction.quantize import PredictionQuantizer
from repro.prediction.velocity import VelocityPredictor

__all__ = [
    "Predictor",
    "ExponentialPredictor",
    "MarkovPredictor",
    "MLPPredictor",
    "PredictionQuantizer",
    "VelocityPredictor",
]
