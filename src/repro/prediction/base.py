"""Common interface of driving-profile predictors.

A predictor is an online filter: at each time step it is fed the measured
propulsion power demand and exposes a prediction of the upcoming demand.
``predict()`` must be callable before the first ``update()`` (returning a
neutral prior) because the RL agent needs a state at t = 0.
"""

from __future__ import annotations

import abc


class Predictor(abc.ABC):
    """Online one-step-ahead predictor of propulsion power demand."""

    @abc.abstractmethod
    def update(self, measurement: float) -> None:
        """Feed the measured power demand of the step that just completed, W."""

    @abc.abstractmethod
    def predict(self) -> float:
        """Return the predicted upcoming power demand, W."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Forget all history (start of a new driving episode)."""

    def observe_and_predict(self, measurement: float) -> float:
        """Convenience: update with ``measurement`` then return the prediction."""
        self.update(measurement)
        return self.predict()
