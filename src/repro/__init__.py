"""repro: reproduction of "Joint Automatic Control of the Powertrain and
Auxiliary Systems to Enhance the Electromobility in Hybrid Electric
Vehicles" (Wang, Lin, Pedram, Chang — DAC 2015).

The package implements the paper's full stack from scratch:

* :mod:`repro.vehicle` — quasi-static parallel-HEV component models,
* :mod:`repro.powertrain` — the backward-looking solver,
* :mod:`repro.cycles` — drive-cycle synthesis and I/O,
* :mod:`repro.prediction` — driving-profile predictors (Eq. 12 and
  alternatives),
* :mod:`repro.rl` — the TD(lambda) joint control framework (the paper's
  contribution),
* :mod:`repro.control` — baselines: rule-based [5], ECMS, offline DP,
* :mod:`repro.sim` — episode simulation and training loops,
* :mod:`repro.exec` — supervised parallel execution (worker isolation,
  timeouts, retries, resumable sweep manifests),
* :mod:`repro.faults` — fault injection for degraded-mode studies,
* :mod:`repro.analysis` — metrics and report rendering.

Quickstart::

    from repro import quick_agent
    from repro.cycles import udds
    from repro.sim import train

    controller, simulator = quick_agent()
    run = train(simulator, controller, udds(), episodes=20)
    print(run.evaluation.summary())
"""

from typing import Optional, Tuple

from repro.control.rl_controller import RLController, build_rl_controller
from repro.powertrain.solver import PowertrainSolver
from repro.sim.simulator import Simulator
from repro.vehicle.params import VehicleParams, default_vehicle

__version__ = "1.0.0"

__all__ = ["quick_agent", "__version__"]


def quick_agent(params: Optional[VehicleParams] = None,
                variant: str = "proposed",
                seed: int = 42) -> Tuple[RLController, Simulator]:
    """One-call setup: default vehicle, solver, RL controller, simulator.

    Returns the ``(controller, simulator)`` pair ready for
    :func:`repro.sim.train`.
    """
    solver = PowertrainSolver(params or default_vehicle())
    controller = build_rl_controller(solver, variant=variant, seed=seed)
    return controller, Simulator(solver)
