"""Physical constants, fuel properties, and unit conversions.

Every quantity in this library is SI unless a suffix says otherwise
(``_kmh``, ``_mpg``, ``_g`` ...).  This module centralises the handful of
constants the vehicle models share and the conversions the analysis layer
needs to express results the way the paper does (MPG, normalised fuel mass).
"""

from __future__ import annotations

import math

# --- physical constants -----------------------------------------------------

GRAVITY = 9.81
"""Standard gravitational acceleration in m/s^2."""

AIR_DENSITY = 1.2041
"""Density of air at 20 C sea level in kg/m^3 (used in the air-drag force)."""

# --- fuel properties (gasoline) ----------------------------------------------

GASOLINE_ENERGY_DENSITY = 42_500.0
"""Lower heating value of gasoline, J/g (the paper's ``D_f``)."""

GASOLINE_DENSITY = 0.745
"""Density of gasoline in g/mL (0.745 kg/L)."""

GALLON_IN_LITERS = 3.785411784
"""One U.S. liquid gallon expressed in liters."""

MILE_IN_METERS = 1609.344
"""One statute mile expressed in meters."""

# --- conversions --------------------------------------------------------------


def kmh_to_ms(speed_kmh: float) -> float:
    """Convert a speed from km/h to m/s."""
    return speed_kmh / 3.6


def ms_to_kmh(speed_ms: float) -> float:
    """Convert a speed from m/s to km/h."""
    return speed_ms * 3.6


def mph_to_ms(speed_mph: float) -> float:
    """Convert a speed from miles/h to m/s."""
    return speed_mph * MILE_IN_METERS / 3600.0


def ms_to_mph(speed_ms: float) -> float:
    """Convert a speed from m/s to miles/h."""
    return speed_ms * 3600.0 / MILE_IN_METERS


def rpm_to_rads(speed_rpm: float) -> float:
    """Convert a rotational speed from rev/min to rad/s."""
    return speed_rpm * 2.0 * math.pi / 60.0


def rads_to_rpm(speed_rads: float) -> float:
    """Convert a rotational speed from rad/s to rev/min."""
    return speed_rads * 60.0 / (2.0 * math.pi)


def grams_to_gallons(fuel_g: float) -> float:
    """Convert a gasoline mass in grams to U.S. gallons."""
    liters = fuel_g / (GASOLINE_DENSITY * 1000.0)
    return liters / GALLON_IN_LITERS


def meters_to_miles(distance_m: float) -> float:
    """Convert a distance in meters to statute miles."""
    return distance_m / MILE_IN_METERS


def mpg(distance_m: float, fuel_g: float) -> float:
    """Miles-per-gallon for a trip of ``distance_m`` meters burning ``fuel_g`` grams.

    Returns ``math.inf`` when no fuel was burned (an all-electric trip).
    """
    if fuel_g <= 0.0:
        return math.inf
    return meters_to_miles(distance_m) / grams_to_gallons(fuel_g)


def liters_per_100km(distance_m: float, fuel_g: float) -> float:
    """European fuel-economy figure: liters of gasoline per 100 km."""
    if distance_m <= 0.0:
        raise ValueError("distance must be positive")
    liters = fuel_g / (GASOLINE_DENSITY * 1000.0)
    return liters / (distance_m / 100_000.0)
