"""The runtime safety supervisor mediating every controller action.

:class:`SafetySupervisor` wraps any :class:`repro.control.base.Controller`
and speaks the same protocol, so the simulator drives it unchanged.  Per
step it

1. decides which controller acts from the current health mode (the
   wrapped controller in NOMINAL/DEGRADED, the fallback in LIMP_HOME),
2. validates the executed action against the physical feasibility
   envelope and substitutes the nearest feasible action when it violates
   (journaling a :class:`~repro.safety.events.GuardEvent`),
3. feeds the health monitors and steps the
   ``NOMINAL -> DEGRADED -> LIMP_HOME -> HALT`` state machine, and
4. journals every transition; reaching HALT raises
   :class:`repro.errors.SafetyHaltError` with the report so far.

Pass-through guarantee
----------------------
In NOMINAL mode with a feasible, envelope-clean action the supervisor
returns the wrapped controller's :class:`ExecutedStep` object *unchanged*:
it consumes no randomness, issues no solver calls, and forwards
``learn``/``greedy`` verbatim — a guarded run on a healthy cycle is
bit-identical to an unguarded one.

Mode semantics
--------------
* **DEGRADED** freezes learning (``learn=False`` to the wrapped
  controller, pending TD transition dropped on entry) and derates the
  admissible current magnitude to ``degraded_current_fraction`` of the
  pack bound.
* **LIMP_HOME** hands control to the fallback controller (default: the
  rule-based baseline) in pure-exploitation mode.
* **HALT** is terminal: the episode stops with a structured error.

Recovery is hysteretic: sustained clean operation steps the mode back
toward NOMINAL one level at a time (never out of HALT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.control.base import Controller
from repro.errors import ConfigurationError, ReproError, SafetyHaltError
from repro.powertrain.solver import PowertrainSolver
from repro.rl.agent import ExecutedStep
from repro.rl.reward import build_reward_function
from repro.safety.envelope import FeasibilityEnvelope
from repro.safety.events import (GuardEvent, ModeTransition, SafetyLog,
                                 SafetyReport)
from repro.safety.monitors import (InfeasibilityMonitor, Monitor,
                                   QTableMonitor, RewardCollapseMonitor,
                                   SoCWindowMonitor, StepContext)
from repro.safety.state_machine import (AlarmLevel, HealthState,
                                        HealthStateMachine)

_TOL = 1e-6


@dataclass(frozen=True)
class SupervisorConfig:
    """Thresholds and dwell times of the safety supervisor."""

    escalate_after: int = 3
    """Consecutive alarmed steps before the mode escalates one level."""

    recover_after: int = 40
    """Consecutive clean steps before the mode recovers one level."""

    degraded_current_fraction: float = 0.6
    """Fraction of the pack current bound admissible while DEGRADED."""

    q_divergence_threshold: float = 1e6
    """Q-table magnitude beyond which the divergence warning fires."""

    q_check_every: int = 5
    """Steps between full Q-table health scans (the scan touches every
    table entry; checking each step would dominate small-step cycles)."""

    infeasible_warn_after: int = 5
    """Consecutive infeasible/guarded steps before a DEGRADED vote."""

    infeasible_severe_after: int = 20
    """Consecutive infeasible/guarded steps before a LIMP_HOME vote."""

    soc_warn_after: int = 10
    """Consecutive out-of-window steps before a DEGRADED vote."""

    soc_severe_after: int = 60
    """Consecutive out-of-window steps before a LIMP_HOME vote."""

    reward_window: int = 25
    """Recent-step window of the reward-collapse statistic."""

    reward_sigmas: float = 6.0
    """Collapse threshold in episode-level standard deviations."""

    reward_min_history: int = 120
    """Baseline steps (older than the window) before the collapse detector
    votes at all."""

    max_events: int = 256
    """Guard events journaled per episode before counting-only overflow."""

    def __post_init__(self) -> None:
        if self.escalate_after < 1 or self.recover_after < 1:
            raise ConfigurationError("dwell counts must be >= 1")
        if not 0.0 < self.degraded_current_fraction <= 1.0:
            raise ConfigurationError(
                "degraded current fraction must be in (0, 1]")
        if self.q_check_every < 1:
            raise ConfigurationError("q_check_every must be >= 1")


class SafetySupervisor(Controller):
    """Wraps a controller with envelope guarding and health supervision."""

    def __init__(self, controller: Controller, solver: PowertrainSolver,
                 fallback: Optional[Controller] = None,
                 config: Optional[SupervisorConfig] = None,
                 telemetry=None):
        """``fallback`` takes over in LIMP_HOME (default: the rule-based
        baseline on the same solver, mirroring the paper's conventional
        comparison strategy).  ``telemetry`` (a
        :class:`repro.telemetry.Telemetry`, opt-in) streams every guard
        intervention and health transition into the event sink as they
        happen — the in-memory :class:`~repro.safety.events.SafetyLog`
        journal is unchanged either way."""
        if fallback is controller:
            raise ConfigurationError(
                "the fallback controller must be a different instance from "
                "the supervised controller")
        self.controller = controller
        self.solver = solver
        self.telemetry = telemetry
        if fallback is None:
            from repro.control.rule_based import RuleBasedController
            fallback = RuleBasedController(solver)
        self.fallback = fallback
        self.config = config or SupervisorConfig()
        self.envelope = FeasibilityEnvelope(solver)
        cfg = self.config
        self._machine = HealthStateMachine(cfg.escalate_after,
                                           cfg.recover_after)
        self._monitors: List[Monitor] = [
            QTableMonitor(cfg.q_divergence_threshold),
            InfeasibilityMonitor(cfg.infeasible_warn_after,
                                 cfg.infeasible_severe_after),
            SoCWindowMonitor(cfg.soc_warn_after, cfg.soc_severe_after),
            RewardCollapseMonitor(cfg.reward_window, cfg.reward_sigmas,
                                  cfg.reward_min_history),
        ]
        self._log = SafetyLog(cfg.max_events)
        # Reward used to score substituted steps identically to the wrapped
        # controller's own scoring (duck-typed off the controller/agent).
        reward = getattr(controller, "reward", None)
        if reward is None:
            reward = getattr(getattr(controller, "agent", None), "reward",
                             None)
        self._reward = reward if reward is not None else \
            build_reward_function(solver)
        self._step = 0
        self._time = 0.0
        self._q_cache: Tuple[Optional[bool], float] = (None, 0.0)
        self._last_report: Optional[SafetyReport] = None

    # ------------------------------------------------------------ telemetry ---

    def _record_guard(self, event: GuardEvent,
                      intervention: bool = True) -> None:
        """Journal one guard event; mirror it into the telemetry sink."""
        self._log.record_event(event, intervention=intervention)
        if self.telemetry is not None:
            self.telemetry.event(
                "guard_intervention", step=event.step, time=event.time,
                kind=event.kind, detail=event.detail)
            self.telemetry.metrics.counter("safety.guard_events").inc()

    # ------------------------------------------------------------- protocol ---

    @property
    def mode(self) -> HealthState:
        """The supervisor's current health mode."""
        return self._machine.state

    def begin_episode(self) -> None:
        """Reset supervision state and both controllers for a new drive."""
        self._machine.reset()
        for monitor in self._monitors:
            monitor.reset()
        self._log.reset()
        self._step = 0
        self._time = 0.0
        self._q_cache = (None, 0.0)
        self._last_report = None
        self.controller.begin_episode()
        self.fallback.begin_episode()

    def finish_episode(self, learn: bool = True) -> None:
        """Close the episode and freeze the safety report.

        The wrapped controller only flushes its terminal learning update
        when the episode *ends* NOMINAL — anything else means its last
        transitions were taken under supervision and must not train.
        """
        inner_learn = learn and self._machine.state is HealthState.NOMINAL
        self.controller.finish_episode(learn=inner_learn)
        self.fallback.finish_episode(learn=False)
        self._last_report = self._log.report(self._machine.state.name)

    def episode_safety_report(self) -> Optional[SafetyReport]:
        """The report of the last finished episode (None before any)."""
        return self._last_report

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Mediate one step (see the module docstring for the pipeline)."""
        mode = self._machine.state
        if mode is HealthState.HALT:
            raise SafetyHaltError(
                "the supervisor is halted; begin a new episode to reset",
                step=self._step, reason="acted while halted",
                report=self._log.report(HealthState.HALT.name))
        self._log.record_mode(int(mode))

        step, intervened, envelope_clean = self._decide(
            mode, speed, acceleration, soc, dt, grade, learn, greedy)
        mode = self._machine.state  # a controller crash may have forced it

        self._observe_and_escalate(step, intervened, envelope_clean, soc,
                                   learn)
        self._step += 1
        self._time += dt
        return step

    # -------------------------------------------------------------- deciding ---

    def _decide(self, mode: HealthState, speed: float, acceleration: float,
                soc: float, dt: float, grade: float, learn: bool,
                greedy: bool) -> Tuple[ExecutedStep, bool, bool]:
        """Pick the acting controller, run it, and mediate the result.

        Returns ``(executed step, intervened, envelope_clean)``.
        """
        if mode is HealthState.LIMP_HOME:
            step = self.fallback.act(speed, acceleration, soc, dt, grade,
                                     learn=False, greedy=True)
            return self._mediate(step, speed, acceleration, soc, dt, grade,
                                 derate=1.0, intervened=False)

        inner_learn = learn and mode is HealthState.NOMINAL
        try:
            step = self.controller.act(speed, acceleration, soc, dt, grade,
                                       learn=inner_learn, greedy=greedy)
        except SafetyHaltError:
            raise
        except ReproError as exc:
            # The controller itself failed structurally: journal it, force
            # LIMP_HOME (repeating the crash to satisfy a dwell count would
            # be absurd), and let the fallback carry this very step.
            self._record_guard(GuardEvent(
                step=self._step, time=self._time, kind="controller_error",
                detail=f"{type(exc).__name__}: {exc}"))
            transition = self._machine.force(
                HealthState.LIMP_HOME,
                f"controller raised {type(exc).__name__}")
            self._handle_transition(transition)
            step = self.fallback.act(speed, acceleration, soc, dt, grade,
                                     learn=False, greedy=True)
            self._record_guard(GuardEvent(
                step=self._step, time=self._time, kind="fallback_engaged",
                detail="fallback controller engaged after controller error"),
                intervention=False)
            return self._mediate(step, speed, acceleration, soc, dt, grade,
                                 derate=1.0, intervened=True)

        derate = (self.config.degraded_current_fraction
                  if mode is HealthState.DEGRADED else 1.0)
        return self._mediate(step, speed, acceleration, soc, dt, grade,
                             derate=derate, intervened=False)

    def _mediate(self, step: ExecutedStep, speed: float, acceleration: float,
                 soc: float, dt: float, grade: float, derate: float,
                 intervened: bool) -> Tuple[ExecutedStep, bool, bool]:
        """Envelope-check one executed step, substituting if it violates."""
        violations = self.envelope.check(step.current, step.gear,
                                         step.aux_power, step.soc_next)
        if derate < 1.0 and not violations:
            i_max = self.envelope.limits().max_current * derate
            if abs(step.current) > i_max + _TOL:
                violations = [(
                    "degraded_clamp",
                    f"|{step.current:.1f} A| exceeds the DEGRADED derate "
                    f"bound {i_max:.1f} A")]
        if not violations:
            return step, intervened, True

        substitute = self.envelope.resolve(
            speed, acceleration, soc, dt, grade, step.current, step.gear,
            step.aux_power, derate)
        reward = float(self._reward(
            substitute.fuel_rate, substitute.aux_power, dt,
            soc_next=substitute.soc_next, soc_prev=soc,
            shortfall=substitute.shortfall))
        paper_reward = float(self._reward.paper_reward(
            substitute.fuel_rate, substitute.aux_power, dt))
        self._record_guard(GuardEvent(
            step=self._step, time=self._time, kind=violations[0][0],
            detail="; ".join(d for _, d in violations),
            action_before={"current": float(step.current),
                           "gear": int(step.gear),
                           "aux_power": float(step.aux_power)},
            action_after={"current": substitute.current,
                          "gear": substitute.gear,
                          "aux_power": substitute.aux_power}))
        mediated = ExecutedStep(
            state=step.state, rl_action=step.rl_action,
            current=substitute.current, gear=substitute.gear,
            aux_power=substitute.aux_power, fuel_rate=substitute.fuel_rate,
            soc_next=substitute.soc_next, reward=reward,
            paper_reward=paper_reward, feasible=substitute.feasible,
            mode=substitute.mode, power_demand=step.power_demand)
        return mediated, True, False

    # ------------------------------------------------------------ monitoring ---

    def _q_health(self) -> Tuple[Optional[bool], float]:
        """Cached Q-table health of the wrapped controller (duck-typed)."""
        if self._step % self.config.q_check_every == 0:
            agent = getattr(self.controller, "agent", self.controller)
            probe = getattr(agent, "q_health", None)
            self._q_cache = probe() if callable(probe) else (None, 0.0)
        return self._q_cache

    def _observe_and_escalate(self, step: ExecutedStep, intervened: bool,
                              envelope_clean: bool, soc: float,
                              learn: bool) -> None:
        """Feed the monitors and step the health state machine."""
        battery = self.solver.params.battery
        q_finite, q_max_abs = self._q_health()
        ctx = StepContext(
            step=self._step,
            feasible=bool(step.feasible) and envelope_clean,
            intervened=intervened,
            soc_outside=not battery.soc_min <= soc <= battery.soc_max,
            reward=float(step.reward),
            q_finite=q_finite, q_max_abs=q_max_abs)
        worst: Tuple[AlarmLevel, str] = (AlarmLevel.OK, "")
        for monitor in self._monitors:
            vote = monitor.observe(ctx)
            if vote[0] > worst[0]:
                worst = vote
        transition = self._machine.step(worst[0], worst[1])
        self._handle_transition(transition)

    def _handle_transition(self, transition) -> None:
        """Journal a state-machine transition and apply its side effects."""
        if transition is None:
            return
        source, target, reason = transition
        self._log.record_transition(ModeTransition(
            step=self._step, time=self._time, source=source.name,
            target=target.name, reason=reason))
        if self.telemetry is not None:
            self.telemetry.event(
                "health_transition", step=self._step, time=self._time,
                source=source.name, target=target.name, reason=reason)
            metrics = self.telemetry.metrics
            metrics.counter("safety.transitions").inc()
            metrics.gauge("safety.mode").set(int(target))
        if source is HealthState.NOMINAL and target > source:
            # Leaving NOMINAL freezes learning; the wrapped agent's pending
            # TD transition would otherwise train on a stale step pair
            # after recovery.
            agent = getattr(self.controller, "agent", self.controller)
            drop = getattr(agent, "drop_pending", None)
            if callable(drop):
                drop()
        if target is HealthState.HALT:
            self._log.record_halt()
            report = self._log.report(HealthState.HALT.name)
            self._last_report = report
            raise SafetyHaltError(
                f"safety supervisor halted at step {self._step}: {reason}",
                step=self._step, reason=reason, report=report)
