"""Health monitors feeding the supervisor's state machine.

Each monitor consumes one :class:`StepContext` per step and votes an
:class:`~repro.safety.state_machine.AlarmLevel`; the supervisor takes the
worst vote.  Monitors are deliberately pure counters/statistics over the
context — everything plant- or controller-specific (Q-table health, the
SoC window test) is extracted by the supervisor and handed in as plain
fields, so monitors stay trivially unit-testable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.safety.state_machine import AlarmLevel

Vote = Tuple[AlarmLevel, str]
_OK: Vote = (AlarmLevel.OK, "")


@dataclass(frozen=True)
class StepContext:
    """What the monitors see of one mediated step."""

    step: int
    """Episode step index."""

    feasible: bool
    """Whether the executed step was fully feasible (envelope-clean and no
    fallback primitive inside the controller)."""

    intervened: bool
    """Whether the supervisor substituted/clamped the action this step."""

    soc_outside: bool
    """Whether the *pre-step* SoC sits outside the charge-sustaining
    window (the plant truth, not the controller's possibly-faulted
    observation)."""

    reward: float
    """Learning reward of the executed step."""

    q_finite: Optional[bool] = None
    """Whether every Q-table entry is finite (None: controller exposes no
    Q-table — e.g. a rule-based baseline)."""

    q_max_abs: float = 0.0
    """Largest Q-table magnitude (0.0 when no Q-table)."""


class Monitor:
    """One health monitor: reset per episode, vote per step."""

    name = "monitor"

    def reset(self) -> None:
        """Clear per-episode state."""

    def observe(self, ctx: StepContext) -> Vote:
        """Vote an alarm level for this step."""
        raise NotImplementedError


class QTableMonitor(Monitor):
    """Non-finite Q-values are fatal; runaway magnitudes are a warning.

    A NaN in the table poisons every greedy argmax from then on — there is
    no graceful way to keep learning, so the vote is FATAL (immediate
    HALT).  Mere divergence (|Q| beyond ``divergence_threshold``) still
    selects *some* action, so it only warrants DEGRADED.
    """

    name = "q_table"

    def __init__(self, divergence_threshold: float = 1e6):
        self.divergence_threshold = divergence_threshold

    def observe(self, ctx: StepContext) -> Vote:
        """FATAL on any non-finite Q-value, WARN on runaway magnitude."""
        if ctx.q_finite is None:
            return _OK
        if not ctx.q_finite:
            return (AlarmLevel.FATAL, "non-finite value in the Q-table")
        if ctx.q_max_abs > self.divergence_threshold:
            return (AlarmLevel.WARN,
                    f"Q-table diverging (|Q| up to {ctx.q_max_abs:.3g} > "
                    f"{self.divergence_threshold:.3g})")
        return _OK


class InfeasibilityMonitor(Monitor):
    """Counts consecutive infeasible/intervened steps.

    The occasional guard substitution is normal life with a discrete
    action set; a *run* of them means the controller has lost the plot
    (or the plant has shrunk under it) and clamping every step is no
    longer control.
    """

    name = "infeasibility"

    def __init__(self, warn_after: int = 5, severe_after: int = 20):
        if not 1 <= warn_after <= severe_after:
            raise ConfigurationError("need 1 <= warn_after <= severe_after")
        self.warn_after = warn_after
        self.severe_after = severe_after
        self.reset()

    def reset(self) -> None:
        """Clear the consecutive-infeasibility streak."""
        self._streak = 0

    def observe(self, ctx: StepContext) -> Vote:
        """Escalate WARN/SEVERE with the infeasible-step streak length."""
        if ctx.feasible and not ctx.intervened:
            self._streak = 0
            return _OK
        self._streak += 1
        if self._streak >= self.severe_after:
            return (AlarmLevel.SEVERE,
                    f"{self._streak} consecutive infeasible steps")
        if self._streak >= self.warn_after:
            return (AlarmLevel.WARN,
                    f"{self._streak} consecutive infeasible steps")
        return _OK


class SoCWindowMonitor(Monitor):
    """Counts consecutive steps spent outside the SoC operating window."""

    name = "soc_window"

    def __init__(self, warn_after: int = 10, severe_after: int = 60):
        if not 1 <= warn_after <= severe_after:
            raise ConfigurationError("need 1 <= warn_after <= severe_after")
        self.warn_after = warn_after
        self.severe_after = severe_after
        self.reset()

    def reset(self) -> None:
        """Clear the consecutive out-of-window streak."""
        self._streak = 0

    def observe(self, ctx: StepContext) -> Vote:
        """Escalate WARN/SEVERE with the out-of-window streak length."""
        if not ctx.soc_outside:
            self._streak = 0
            return _OK
        self._streak += 1
        if self._streak >= self.severe_after:
            return (AlarmLevel.SEVERE,
                    f"SoC outside the operating window for "
                    f"{self._streak} consecutive steps")
        if self._streak >= self.warn_after:
            return (AlarmLevel.WARN,
                    f"SoC outside the operating window for "
                    f"{self._streak} consecutive steps")
        return _OK


class RewardCollapseMonitor(Monitor):
    """Flags a sustained collapse of the step reward.

    Keeps Welford running statistics of the episode's rewards *older than*
    the last ``window`` steps (the lag matters: folding the collapsed
    rewards into their own baseline would inflate the deviation and cap
    the detectable deficit below any useful threshold) and compares the
    mean of the last ``window`` steps against them: a recent mean more
    than ``sigmas`` baseline standard deviations below the baseline mean
    is the signature of a policy falling off a cliff (reward scales here
    are negative fuel, so "collapse" = strongly more negative).  Needs
    ``min_history`` baseline steps before it votes at all.
    """

    name = "reward_collapse"

    def __init__(self, window: int = 25, sigmas: float = 6.0,
                 min_history: int = 120):
        if window < 2 or min_history <= window:
            raise ConfigurationError("need window >= 2 and min_history > window")
        self.window = window
        self.sigmas = sigmas
        self.min_history = min_history
        self.reset()

    def reset(self) -> None:
        """Clear the lagged baseline statistics and the recent window."""
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._recent: deque = deque()

    def observe(self, ctx: StepContext) -> Vote:
        """WARN when the recent reward mean falls ``sigmas`` baseline
        deviations below the lagged episode baseline."""
        r = float(ctx.reward)
        if not np.isfinite(r):
            # The simulator's watchdog handles non-finite rewards; the
            # collapse statistic just skips them.
            return _OK
        self._recent.append(r)
        if len(self._recent) > self.window:
            # The oldest recent reward ages out into the lagged baseline.
            oldest = self._recent.popleft()
            self._count += 1
            delta = oldest - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (oldest - self._mean)
        if self._count < self.min_history:
            return _OK
        std = float(np.sqrt(self._m2 / (self._count - 1)))
        if std <= 0.0:
            return _OK
        recent_mean = float(np.mean(self._recent))
        deficit = (self._mean - recent_mean) / std
        if deficit > self.sigmas:
            return (AlarmLevel.WARN,
                    f"reward collapsed: recent mean {recent_mean:.3g} is "
                    f"{deficit:.1f} sigma below the episode baseline "
                    f"{self._mean:.3g}")
        return _OK
