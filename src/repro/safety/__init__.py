"""Runtime safety supervision: envelope guarding, health monitoring, and
graceful controller degradation (NOMINAL -> DEGRADED -> LIMP_HOME -> HALT).
"""

from repro.safety.envelope import (EnvelopeLimits, FeasibilityEnvelope,
                                   Substitute)
from repro.safety.events import (GuardEvent, ModeTransition, SafetyLog,
                                 SafetyReport)
from repro.safety.monitors import (InfeasibilityMonitor, Monitor,
                                   QTableMonitor, RewardCollapseMonitor,
                                   SoCWindowMonitor, StepContext)
from repro.safety.state_machine import (AlarmLevel, HealthState,
                                        HealthStateMachine)
from repro.safety.supervisor import SafetySupervisor, SupervisorConfig

__all__ = [
    "AlarmLevel",
    "EnvelopeLimits",
    "FeasibilityEnvelope",
    "GuardEvent",
    "HealthState",
    "HealthStateMachine",
    "InfeasibilityMonitor",
    "ModeTransition",
    "Monitor",
    "QTableMonitor",
    "RewardCollapseMonitor",
    "SafetyLog",
    "SafetyReport",
    "SafetySupervisor",
    "SoCWindowMonitor",
    "StepContext",
    "Substitute",
    "SupervisorConfig",
]
