"""Physical feasibility envelope the supervisor validates actions against.

The envelope is the contract between *any* controller and the plant: the
battery current magnitude bound, the discrete gear range, the auxiliary
power band, the charge-sustaining SoC window, and plain finiteness.  A
well-behaved controller that routes its actions through the solver never
violates it — the envelope exists for the controllers that misbehave
(diverged Q-tables proposing garbage, third-party controllers skipping
solver saturation, faulted plants whose limits shifted under the
controller's feet).

Limits are read *live* from the solver on every check rather than frozen
at construction, because plant faults mutate the shared solver in place
mid-episode (capacity fade shrinks the pack, a derate lowers the current
bound); a frozen envelope would validate against a vehicle that no longer
exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.powertrain.solver import PowertrainSolver, _WINDOW_SLACK

_TOL = 1e-6
"""Absolute slack on the continuous bounds: solver round-off must not be
reported as a violation."""


@dataclass(frozen=True)
class EnvelopeLimits:
    """One snapshot of the live plant limits."""

    max_current: float
    """Battery current magnitude bound, A."""

    num_gears: int
    """Selectable gears (valid 0-based indices are ``0..num_gears-1``)."""

    aux_min: float
    """Auxiliary power floor (non-sheddable loads), W."""

    aux_max: float
    """Auxiliary power cap, W."""

    soc_lo: float
    """Lower admissible post-step SoC (window minus solver slack)."""

    soc_hi: float
    """Upper admissible post-step SoC (window plus solver slack)."""


@dataclass(frozen=True)
class Substitute:
    """A fully resolved replacement action (one solver batch row)."""

    current: float
    """Executed battery current, A."""

    gear: int
    """Executed 0-based gear index."""

    aux_power: float
    """Executed auxiliary draw, W."""

    fuel_rate: float
    """Fuel mass-flow of the substituted step, g/s."""

    soc_next: float
    """Post-step state of charge under the substitute (fraction)."""

    shortfall: float
    """Undelivered shaft torque, N*m."""

    feasible: bool
    """Whether the substitute is fully feasible (False when even the
    fallback ladder could only minimise the violation)."""

    mode: int
    """Operating-mode classification of the substituted point."""


class FeasibilityEnvelope:
    """Validates executed steps and substitutes nearest-feasible actions."""

    def __init__(self, solver: PowertrainSolver):
        self._solver = solver

    def limits(self) -> EnvelopeLimits:
        """Read the current plant limits off the (possibly faulted) solver."""
        battery = self._solver.params.battery
        aux = self._solver.auxiliary
        return EnvelopeLimits(
            max_current=float(battery.max_current),
            num_gears=int(self._solver.transmission.num_gears),
            aux_min=float(aux.min_power),
            aux_max=float(aux.max_power),
            soc_lo=float(battery.soc_min - _WINDOW_SLACK),
            soc_hi=float(battery.soc_max + _WINDOW_SLACK))

    # ------------------------------------------------------------- checking ---

    def check(self, current: float, gear: int, aux_power: float,
              soc_next: float) -> List[Tuple[str, str]]:
        """Violations of one executed action as ``(kind, detail)`` pairs.

        An empty list means the action is inside the envelope and the
        supervisor passes the step through untouched.
        """
        lim = self.limits()
        violations: List[Tuple[str, str]] = []
        if not (np.isfinite(current) and np.isfinite(aux_power)
                and np.isfinite(soc_next)):
            violations.append((
                "nonfinite_action",
                f"current={current!r}, aux={aux_power!r}, "
                f"soc_next={soc_next!r}"))
            return violations
        if abs(current) > lim.max_current + _TOL:
            violations.append((
                "current_limit",
                f"|{current:.1f} A| exceeds the {lim.max_current:.1f} A "
                f"pack bound"))
        if not 0 <= int(gear) < lim.num_gears:
            violations.append((
                "gear_range",
                f"gear {gear} outside 0..{lim.num_gears - 1}"))
        if not lim.aux_min - _TOL <= aux_power <= lim.aux_max + _TOL:
            violations.append((
                "aux_limit",
                f"p_aux={aux_power:.0f} W outside "
                f"[{lim.aux_min:.0f}, {lim.aux_max:.0f}] W"))
        if not lim.soc_lo - _TOL <= soc_next <= lim.soc_hi + _TOL:
            violations.append((
                "soc_window",
                f"post-step SoC {soc_next:.3f} outside "
                f"[{lim.soc_lo:.3f}, {lim.soc_hi:.3f}]"))
        return violations

    def window_violation(self, soc_next: np.ndarray) -> np.ndarray:
        """Distance of each post-step SoC outside the slackened window."""
        lim = self.limits()
        soc_next = np.asarray(soc_next, dtype=float)
        return np.maximum(0.0, np.maximum(lim.soc_lo - soc_next,
                                          soc_next - lim.soc_hi))

    # --------------------------------------------------------- substitution ---

    def clamp(self, current: float, gear: int, aux_power: float,
              derate: float = 1.0) -> Tuple[float, int, float]:
        """Project an action onto the (optionally derated) envelope box.

        Non-finite components collapse to the safest member of their range
        (zero current, lowest gear, auxiliary floor).
        """
        lim = self.limits()
        i_max = lim.max_current * float(np.clip(derate, 0.0, 1.0))
        c = float(np.clip(current, -i_max, i_max)) if np.isfinite(current) \
            else 0.0
        try:
            g = int(gear)
        except (TypeError, ValueError, OverflowError):
            g = 0
        g = int(np.clip(g, 0, lim.num_gears - 1))
        a = float(np.clip(aux_power, lim.aux_min, lim.aux_max)) \
            if np.isfinite(aux_power) else lim.aux_min
        return c, g, a

    def resolve(self, speed: float, acceleration: float, soc: float,
                dt: float, grade: float, current: float, gear: int,
                aux_power: float, derate: float = 1.0) -> Substitute:
        """Nearest-feasible substitute for a rejected action.

        Clamps the action into the (derated) envelope box, then evaluates a
        small ladder of fallback currents stepping from the clamped intent
        toward zero and gentle charging — the direction that relieves both
        discharge-side window violations and pack-limit violations.  The
        executed point is the feasible candidate closest to the intent, or
        failing that the candidate with the smallest SoC-window excursion
        and torque shortfall.
        """
        c, g, a = self.clamp(current, gear, aux_power, derate)
        lim = self.limits()
        i_max = lim.max_current * float(np.clip(derate, 0.0, 1.0))
        ladder = np.unique(np.asarray(
            [c, 0.5 * c, 0.0, -0.25 * i_max, -0.5 * i_max], dtype=float))
        batch = self._solver.evaluate_actions(
            speed, acceleration, soc, ladder,
            np.full(len(ladder), g, dtype=int),
            np.full(len(ladder), a, dtype=float), dt, grade)
        feasible = np.nonzero(batch.feasible)[0]
        if len(feasible):
            # Among feasible candidates, stay closest to the intent.
            idx = int(feasible[np.argmin(np.abs(ladder[feasible] - c))])
        else:
            score = (np.asarray(self.window_violation(batch.soc_next)) * 1e3
                     + np.where(batch.meets_demand, 0.0, 1e6)
                     + batch.shortfall)
            idx = int(np.argmin(score))
        return Substitute(
            current=float(batch.battery_current[idx]),
            gear=int(batch.gear[idx]),
            aux_power=float(batch.aux_power[idx]),
            fuel_rate=float(batch.fuel_rate[idx]),
            soc_next=float(batch.soc_next[idx]),
            shortfall=float(batch.shortfall[idx]),
            feasible=bool(batch.feasible[idx]),
            mode=int(batch.mode[idx]))
