"""Hysteresis health state machine: NOMINAL -> DEGRADED -> LIMP_HOME -> HALT.

Monitors vote an :class:`AlarmLevel` each step; the machine escalates one
level at a time only after the alarm persists (``escalate_after``
consecutive steps), and recovers one level at a time only after a much
longer clean streak (``recover_after``) — the hysteresis keeps a noisy
controller from flapping between modes every few steps.  FATAL alarms
bypass the dwell and jump straight to HALT, which is terminal.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional, Tuple

from repro.errors import ConfigurationError


class HealthState(IntEnum):
    """Supervisor health mode, ordered by severity."""

    NOMINAL = 0
    DEGRADED = 1
    LIMP_HOME = 2
    HALT = 3


class AlarmLevel(IntEnum):
    """Severity a monitor reports for one step."""

    OK = 0
    WARN = 1
    SEVERE = 2
    FATAL = 3


#: Mode a sustained alarm level demands (WARN wants DEGRADED, SEVERE wants
#: LIMP_HOME, FATAL wants HALT).
_ALARM_TARGET = {
    AlarmLevel.OK: HealthState.NOMINAL,
    AlarmLevel.WARN: HealthState.DEGRADED,
    AlarmLevel.SEVERE: HealthState.LIMP_HOME,
    AlarmLevel.FATAL: HealthState.HALT,
}


class HealthStateMachine:
    """Dwell-based escalation with hysteresis recovery.

    Escalation: an alarm whose target mode exceeds the current mode must
    persist for ``escalate_after`` consecutive steps before the machine
    moves up — and it moves one level at a time, so even a sustained
    SEVERE alarm passes through DEGRADED before reaching LIMP_HOME.
    FATAL is the exception: it halts immediately.

    Recovery: ``recover_after`` consecutive OK steps step the mode back
    down one level.  HALT never recovers.
    """

    def __init__(self, escalate_after: int = 3, recover_after: int = 40):
        if escalate_after < 1 or recover_after < 1:
            raise ConfigurationError("dwell counts must be >= 1")
        self.escalate_after = escalate_after
        self.recover_after = recover_after
        self.reset()

    def reset(self) -> None:
        """Return to NOMINAL with cleared dwell counters (new episode)."""
        self.state = HealthState.NOMINAL
        self._alarm_streak = 0
        self._clean_streak = 0

    def force(self, target: HealthState,
              reason: str) -> Optional[Tuple[HealthState, HealthState, str]]:
        """Jump directly to ``target`` (used for controller crashes where
        dwell would mean repeating the crash).  Returns the transition as
        ``(source, target, reason)`` or None if already at/above it."""
        if target <= self.state:
            return None
        source = self.state
        self.state = target
        self._alarm_streak = 0
        self._clean_streak = 0
        return (source, target, reason)

    def step(self, alarm: AlarmLevel,
             reason: str) -> Optional[Tuple[HealthState, HealthState, str]]:
        """Feed one step's worst alarm; returns a transition or None."""
        if self.state is HealthState.HALT:
            return None
        if alarm is AlarmLevel.FATAL:
            return self.force(HealthState.HALT, reason)

        target = _ALARM_TARGET[alarm]
        if target > self.state:
            self._clean_streak = 0
            self._alarm_streak += 1
            if self._alarm_streak >= self.escalate_after:
                source = self.state
                self.state = HealthState(self.state + 1)
                self._alarm_streak = 0
                return (source, self.state, reason)
        elif alarm is AlarmLevel.OK and self.state is not HealthState.NOMINAL:
            self._alarm_streak = 0
            self._clean_streak += 1
            if self._clean_streak >= self.recover_after:
                source = self.state
                self.state = HealthState(self.state - 1)
                self._clean_streak = 0
                return (source, self.state,
                        f"recovered after {self.recover_after} clean steps")
        else:
            # Alarm matches the current mode (e.g. WARN while DEGRADED):
            # neither an escalation vote nor a clean step.
            self._alarm_streak = 0
            self._clean_streak = 0
        return None
