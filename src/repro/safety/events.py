"""Safety journal: guard events, mode transitions, and the episode report.

Everything the supervisor does to (or observes about) the wrapped
controller is journaled here as plain dataclasses with JSON-able fields,
so the record survives the trip through the CLI, the robustness report,
and the sweep-manifest payload codec unchanged.  The log is append-only
during an episode; the :class:`SafetyReport` built from it at episode end
is what :class:`repro.sim.results.EpisodeResult` exposes.

Event storage is bounded (a pathological drive could otherwise journal an
event per step for thousands of steps); when the cap is hit, further
events are counted in :attr:`SafetyReport.events_dropped` rather than
silently discarded — the report always says what it is missing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GuardEvent:
    """One supervisor intervention on a single step."""

    step: int
    """Episode step index the event occurred at."""

    time: float
    """Episode time, s."""

    kind: str
    """What tripped the guard: ``"nonfinite_action"``, ``"current_limit"``,
    ``"gear_range"``, ``"aux_limit"``, ``"soc_window"``,
    ``"degraded_clamp"``, ``"controller_error"``, or
    ``"fallback_engaged"``."""

    detail: str
    """Human-readable description of the violation and the substitution."""

    action_before: Optional[dict] = None
    """The proposed ``{"current", "gear", "aux_power"}`` (None when the
    controller raised instead of proposing)."""

    action_after: Optional[dict] = None
    """The substituted action actually executed (None for pure
    observations such as ``controller_error``)."""


@dataclass(frozen=True)
class ModeTransition:
    """One health-state-machine transition."""

    step: int
    """Episode step index the transition occurred at."""

    time: float
    """Episode time, s."""

    source: str
    """Mode left (``"NOMINAL"``, ``"DEGRADED"``, ``"LIMP_HOME"``)."""

    target: str
    """Mode entered (``"DEGRADED"``, ``"LIMP_HOME"``, ``"HALT"``, or back
    toward ``"NOMINAL"`` on hysteresis recovery)."""

    reason: str
    """The alarm (or recovery condition) that drove the transition."""


@dataclass
class SafetyReport:
    """Episode-level summary of the supervisor's activity."""

    modes: np.ndarray
    """Per-step health mode id (the mode each step was decided in):
    0 = NOMINAL, 1 = DEGRADED, 2 = LIMP_HOME, 3 = HALT."""

    events: List[GuardEvent]
    """Journaled guard events (bounded; see :attr:`events_dropped`)."""

    transitions: List[ModeTransition]
    """Every mode transition, in order (never capped)."""

    interventions: int
    """Steps on which the supervisor substituted or clamped the action."""

    steps: int
    """Steps the supervisor mediated this episode."""

    final_mode: str
    """Health mode at episode end (or at the halt)."""

    halted: bool
    """True when the episode ended in a :class:`SafetyHaltError`."""

    events_dropped: int = 0
    """Guard events that occurred beyond the journal cap (counted, not
    stored)."""

    MODE_NAMES = ("NOMINAL", "DEGRADED", "LIMP_HOME", "HALT")

    def time_in_mode(self) -> Dict[str, int]:
        """Steps spent in each mode, keyed by mode name (all modes listed,
        zeros included, so downstream tables have stable columns)."""
        counts = {name: 0 for name in self.MODE_NAMES}
        ids, tallies = np.unique(self.modes, return_counts=True)
        for mode_id, tally in zip(ids, tallies):
            if 0 <= int(mode_id) < len(self.MODE_NAMES):
                counts[self.MODE_NAMES[int(mode_id)]] = int(tally)
        return counts

    @property
    def intervention_rate(self) -> float:
        """Fraction of mediated steps the guard intervened on."""
        return self.interventions / self.steps if self.steps > 0 else 0.0

    def render(self) -> str:
        """Human-readable journal (the ``repro guard-report`` body)."""
        lines = [
            f"safety report: {self.steps} steps mediated, "
            f"{self.interventions} intervention(s) "
            f"({self.intervention_rate:.1%}), final mode {self.final_mode}"
            + (" [HALTED]" if self.halted else ""),
            "time in mode: " + ", ".join(
                f"{name}={steps}" for name, steps in
                self.time_in_mode().items()),
        ]
        if self.transitions:
            lines.append("transitions:")
            for tr in self.transitions:
                lines.append(f"  step {tr.step:5d} (t={tr.time:7.1f}s)  "
                             f"{tr.source} -> {tr.target}: {tr.reason}")
        else:
            lines.append("transitions: none (stayed NOMINAL)")
        if self.events:
            lines.append(f"guard events ({len(self.events)} journaled"
                         + (f", {self.events_dropped} beyond cap"
                            if self.events_dropped else "") + "):")
            for ev in self.events:
                lines.append(f"  step {ev.step:5d} (t={ev.time:7.1f}s)  "
                             f"[{ev.kind}] {ev.detail}")
        else:
            lines.append("guard events: none")
        return "\n".join(lines)


class SafetyLog:
    """Append-only episode journal the supervisor writes into."""

    def __init__(self, max_events: int = 256):
        if max_events < 1:
            raise ConfigurationError("need room for at least one event")
        self._max_events = max_events
        self.reset()

    def reset(self) -> None:
        """Start a fresh episode journal."""
        self._events: List[GuardEvent] = []
        self._transitions: List[ModeTransition] = []
        self._modes: List[int] = []
        self._interventions = 0
        self._dropped = 0
        self._halted = False

    @property
    def interventions(self) -> int:
        """Interventions journaled so far this episode."""
        return self._interventions

    def record_mode(self, mode_id: int) -> None:
        """Journal the health mode one step was decided in."""
        self._modes.append(int(mode_id))

    def record_event(self, event: GuardEvent,
                     intervention: bool = True) -> None:
        """Journal one guard event (bounded storage, honest counting)."""
        if intervention:
            self._interventions += 1
        if len(self._events) < self._max_events:
            self._events.append(event)
        else:
            self._dropped += 1

    def record_transition(self, transition: ModeTransition) -> None:
        """Journal one state-machine transition (never capped)."""
        self._transitions.append(transition)

    def record_halt(self) -> None:
        """Mark the episode as ended by a safety halt."""
        self._halted = True

    def report(self, final_mode: str) -> SafetyReport:
        """Freeze the journal into an episode report."""
        return SafetyReport(
            modes=np.asarray(self._modes, dtype=np.int8),
            events=list(self._events),
            transitions=list(self._transitions),
            interventions=self._interventions,
            steps=len(self._modes),
            final_mode=final_mode,
            halted=self._halted,
            events_dropped=self._dropped)
