"""The joint reward function (paper Section 4.3.3).

    r = (-mdot_f + w * f_aux(p_aux)) * dT

Fuel rate enters negatively (the agent minimises consumption), auxiliary
utility positively, coupled by the weighting factor ``w``.  Because the
reward must also keep the battery inside its charge-sustaining window, a
soft quadratic penalty on window violations is added — the standard device
for encoding the paper's hard state constraint in a tabular learner (the
solver additionally marks window-leaving actions infeasible, so the penalty
only fires on the slack band and fallback steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.vehicle.auxiliary import UtilityFunction

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class RewardConfig:
    """Weights of the joint reward."""

    aux_weight: float = 0.3
    """The paper's ``w``: relative importance of auxiliary utility versus
    fuel rate.  With fuel in g/s (cruise ~0.5-2.5 g/s) and utility in [~-4, 1],
    w = 0.3 makes the two terms comparable, matching the magnitude of the
    paper's Table 2 cumulative rewards."""

    window_penalty: float = 10.0
    """Quadratic penalty coefficient on SoC-window violation (per unit
    squared fraction of capacity, per second)."""

    shortfall_penalty: float = 0.05
    """Penalty per N*m of undelivered shaft torque per second — only nonzero
    on pathological fallback steps where no action meets the demand."""

    soc_price: Optional[float] = None
    """Fuel-equivalent price of battery charge in grams per unit SoC
    fraction.  The learning reward adds ``soc_price * (soc_next - soc)``
    each step, so draining the pack is charged (and banking charge is
    credited) at the engine's average fuel-to-electricity conversion rate —
    the shaping that makes a finite-horizon learner charge-sustaining.
    ``None`` derives the price from the battery pack and fuel properties via
    :func:`default_soc_price`."""

    adaptive_price_gain: float = 0.0
    """Per-episode adaptation gain of the SoC price (grams per unit SoC of
    final-SoC error), in the style of adaptive-ECMS:
    ``price -= gain * (soc_final - soc_target)`` after each training
    episode.  Disabled (0) by default: the outer loop couples with the
    Q-table's own adaptation and oscillates — a higher price teaches the
    agent to bank charge, which drops the price, which teaches draining,
    and the moving reward keeps the table from settling.  Kept as an
    explicit knob because the failure mode itself is instructive (and the
    ablation benches can demonstrate it)."""

    soc_target: float = 0.60
    """Final SoC the adaptive pricing regulates toward (fraction)."""

    price_bounds: tuple = (250.0, 750.0)
    """Clamp on the adapted SoC price, g per unit SoC."""

    def __post_init__(self) -> None:
        if self.adaptive_price_gain < 0:
            raise ConfigurationError("adaptation gain cannot be negative")
        if not 0 < self.soc_target < 1:
            raise ConfigurationError("SoC target must be a fraction")
        if not 0 < self.price_bounds[0] < self.price_bounds[1]:
            raise ConfigurationError("price bounds out of order")
        if self.aux_weight < 0:
            raise ConfigurationError("aux weight cannot be negative")
        if self.window_penalty < 0 or self.shortfall_penalty < 0:
            raise ConfigurationError("penalties cannot be negative")
        if self.soc_price is not None and self.soc_price < 0:
            raise ConfigurationError("SoC price cannot be negative")


def default_soc_price(capacity: float, nominal_voltage: float,
                      fuel_energy_density: float,
                      conversion_efficiency: float = 0.33) -> float:
    """Fuel-equivalent value of one full unit of SoC, grams.

    ``capacity`` in Coulombs and ``nominal_voltage`` in V give the pack
    energy; dividing by the engine's average fuel-to-electricity conversion
    chain efficiency and the fuel energy density converts it to grams.
    """
    if capacity <= 0 or nominal_voltage <= 0:
        raise ConfigurationError("pack energy must be positive")
    if not 0 < conversion_efficiency <= 1:
        raise ConfigurationError("conversion efficiency must be in (0, 1]")
    return (capacity * nominal_voltage
            / (conversion_efficiency * fuel_energy_density))


class RewardFunction:
    """Computes the per-step joint reward for scalar or batched inputs."""

    def __init__(self, utility: UtilityFunction, config: RewardConfig,
                 soc_min: float, soc_max: float, soc_price: float = 0.0):
        """``soc_price`` (g per unit SoC) is used when the config leaves its
        own ``soc_price`` as None; pass the :func:`default_soc_price` of the
        simulated pack for charge-sustaining shaping."""
        self._utility = utility
        self._config = config
        self._soc_min = soc_min
        self._soc_max = soc_max
        self._soc_price = (config.soc_price if config.soc_price is not None
                           else soc_price)

    @property
    def config(self) -> RewardConfig:
        """The weight configuration."""
        return self._config

    def window_violation(self, soc: ArrayLike) -> ArrayLike:
        """Fractional distance outside the [soc_min, soc_max] window (>= 0)."""
        soc = np.asarray(soc, dtype=float)
        below = np.maximum(self._soc_min - soc, 0.0)
        above = np.maximum(soc - self._soc_max, 0.0)
        return below + above

    @property
    def soc_price(self) -> float:
        """Active fuel-equivalent price of charge, g per unit SoC."""
        return self._soc_price

    def set_soc_price(self, price: float) -> None:
        """Pin the active SoC price (checkpoint restore of the adaptive
        outer loop's state)."""
        if price < 0:
            raise ConfigurationError("SoC price cannot be negative")
        self._soc_price = float(price)

    def adapt_price(self, final_soc: float) -> float:
        """Adaptive-ECMS-style outer loop: move the SoC price against the
        final-SoC error and return the new price.

        A drive that banked charge (final above target) means charging was
        over-credited, so the price drops; a drained pack raises it.  The
        price is clamped to the configured bounds.
        """
        c = self._config
        if c.adaptive_price_gain > 0:
            lo, hi = c.price_bounds
            self._soc_price = float(np.clip(
                self._soc_price
                - c.adaptive_price_gain * (final_soc - c.soc_target),
                lo, hi))
        return self._soc_price

    def __call__(self, fuel_rate: ArrayLike, aux_power: ArrayLike, dt: float,
                 soc_next: ArrayLike = None, soc_prev: ArrayLike = None,
                 shortfall: ArrayLike = 0.0) -> ArrayLike:
        """Per-step learning reward (dimensionally: grams-of-fuel-equivalent).

        ``fuel_rate`` in g/s, ``aux_power`` in W, ``dt`` in s.  ``soc_next``
        (fraction) activates the window penalty; passing ``soc_prev`` as well
        adds the charge-sustaining shaping term
        ``soc_price * (soc_next - soc_prev)``; ``shortfall`` (N*m) activates
        the demand-miss penalty.  Note the shaping term is *not* multiplied
        by dt — it prices the actual charge moved during the step.
        """
        c = self._config
        base = (-np.asarray(fuel_rate, dtype=float)
                + c.aux_weight * np.asarray(self._utility(aux_power),
                                            dtype=float))
        penalty = np.asarray(shortfall, dtype=float) * c.shortfall_penalty
        if soc_next is not None:
            penalty = penalty + c.window_penalty * self.window_violation(
                soc_next) ** 2
        reward = (base - penalty) * dt
        if soc_next is not None and soc_prev is not None:
            reward = reward + self._soc_price * (
                np.asarray(soc_next, dtype=float)
                - np.asarray(soc_prev, dtype=float))
        return reward

    def paper_reward(self, fuel_rate: ArrayLike, aux_power: ArrayLike,
                     dt: float) -> ArrayLike:
        """The unpenalised reward exactly as printed in the paper's Table 2:
        ``(-mdot_f + w * f_aux(p_aux)) * dT``."""
        return ((-np.asarray(fuel_rate, dtype=float)
                 + self._config.aux_weight
                 * np.asarray(self._utility(aux_power), dtype=float)) * dt)


def build_reward_function(solver, config: Optional[RewardConfig] = None
                          ) -> RewardFunction:
    """Build a :class:`RewardFunction` wired to a powertrain solver.

    Derives the charge-sustaining SoC price from the solver's battery pack
    and fuel properties (unless the config pins an explicit price).  All
    controllers score their steps through a function built here so the
    comparisons in the benches are apples-to-apples.
    """
    config = config or RewardConfig()
    battery = solver.params.battery
    nominal_voltage = float(solver.battery.open_circuit_voltage(
        0.5 * (battery.soc_min + battery.soc_max)))
    price = default_soc_price(battery.capacity, nominal_voltage,
                              solver.engine.fuel_energy_density)
    return RewardFunction(solver.auxiliary.utility, config,
                          battery.soc_min, battery.soc_max, soc_price=price)
