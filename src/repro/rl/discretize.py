"""State-space discretisation (paper Section 4.3.1, Eq. 13-14).

A state is ``s = [p_dem, v, q, pre]``: propulsion power demand, vehicle
speed, battery charge, and the quantised prediction of upcoming demand.
Each continuous component is binned by a strictly increasing edge list; the
four bin indices are ravelled into a single integer state id so the
Q-table can be a dense array.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def uniform_edges(low: float, high: float, num_bins: int) -> np.ndarray:
    """Interior edges splitting ``[low, high]`` into ``num_bins`` equal bins.

    This is how the paper's Eq. 14 charge levels ``q_1 < ... < q_N`` are
    constructed over ``[q_min, q_max]``.
    """
    if num_bins < 1:
        raise ValueError("need at least one bin")
    if high <= low:
        raise ValueError("empty range")
    return np.linspace(low, high, num_bins + 1)[1:-1]


class StateDiscretizer:
    """Maps continuous HEV observations onto the finite RL state set."""

    #: Default interior edges for the power-demand dimension, W.  Negative
    #: bins separate braking from propulsion; positive ones cover the urban
    #: and highway propulsion ranges of a compact HEV.  The defaults are
    #: deliberately coarse — the paper stresses that the number of
    #: state-action pairs bounds TD(lambda)'s convergence speed, and a
    #: training budget of tens of episodes covers ~10^4 pairs, not ~10^5.
    DEFAULT_POWER_EDGES = (-5_000.0, 500.0, 4_000.0, 9_000.0, 16_000.0)

    #: Default interior edges for vehicle speed, m/s.
    DEFAULT_SPEED_EDGES = (1.0, 8.0, 16.0, 24.0)

    def __init__(self,
                 power_edges: Sequence[float] = DEFAULT_POWER_EDGES,
                 speed_edges: Sequence[float] = DEFAULT_SPEED_EDGES,
                 soc_min: float = 0.40, soc_max: float = 0.80,
                 soc_bins: int = 8, prediction_levels: int = 3):
        for edges in (power_edges, speed_edges):
            e = list(edges)
            if any(b <= a for a, b in zip(e, e[1:])):
                raise ValueError("bin edges must be strictly increasing")
        if soc_bins < 1:
            raise ValueError("need at least one SoC bin")
        if prediction_levels < 1:
            raise ValueError("need at least one prediction level")
        if not 0.0 <= soc_min < soc_max <= 1.0:
            raise ValueError("SoC window out of order")
        self._power_edges = np.asarray(power_edges, dtype=float)
        self._speed_edges = np.asarray(speed_edges, dtype=float)
        self._soc_edges = uniform_edges(soc_min, soc_max, soc_bins)
        self._shape = (
            len(self._power_edges) + 1,
            len(self._speed_edges) + 1,
            soc_bins,
            prediction_levels,
        )

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        """Bin counts per dimension: (power, speed, charge, prediction)."""
        return self._shape

    @property
    def num_states(self) -> int:
        """Total number of discrete states |S|."""
        return int(np.prod(self._shape))

    def indices(self, power_demand: float, speed: float, soc: float,
                prediction_level: int) -> Tuple[int, int, int, int]:
        """Per-dimension bin indices of one observation."""
        ip = int(np.searchsorted(self._power_edges, power_demand, side="right"))
        iv = int(np.searchsorted(self._speed_edges, speed, side="right"))
        iq = int(np.clip(np.searchsorted(self._soc_edges, soc, side="right"),
                         0, self._shape[2] - 1))
        il = int(np.clip(prediction_level, 0, self._shape[3] - 1))
        return ip, iv, iq, il

    def state_of(self, power_demand: float, speed: float, soc: float,
                 prediction_level: int = 0) -> int:
        """Ravel one observation into its integer state id."""
        return int(np.ravel_multi_index(
            self.indices(power_demand, speed, soc, prediction_level),
            self._shape))

    def state_of_batch(self, power_demands: np.ndarray, speeds: np.ndarray,
                       socs: np.ndarray,
                       prediction_levels: np.ndarray = 0) -> np.ndarray:
        """Ravel many observations into state ids in one vectorized pass.

        Element-for-element identical to :meth:`state_of` (golden-tested);
        ``prediction_levels`` broadcasts, so a scalar 0 serves the common
        no-predictor case.  This is the fleet-serving hot path: one call
        discretises a whole vehicle population per tick.
        """
        ip = np.searchsorted(self._power_edges,
                             np.asarray(power_demands, dtype=float),
                             side="right")
        iv = np.searchsorted(self._speed_edges,
                             np.asarray(speeds, dtype=float), side="right")
        iq = np.clip(np.searchsorted(self._soc_edges,
                                     np.asarray(socs, dtype=float),
                                     side="right"),
                     0, self._shape[2] - 1)
        il = np.clip(np.asarray(prediction_levels, dtype=np.intp),
                     0, self._shape[3] - 1)
        return np.ravel_multi_index(
            np.broadcast_arrays(ip, iv, iq, il), self._shape)

    def unravel(self, state: int) -> Tuple[int, int, int, int]:
        """Recover the per-dimension bin indices of a state id."""
        return tuple(int(i) for i in np.unravel_index(state, self._shape))
