"""Saving and loading trained joint-control policies.

A trained policy is more than the Q-table: reloading it requires the exact
state discretisation, action grid, and reward weights it was trained with,
or the table's rows and columns mean something else entirely.  This module
serialises the Q-table (``.npz``) together with a JSON sidecar of the
configuration fingerprint, and refuses to load a table into an agent whose
configuration does not match.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.rl.agent import JointControlAgent

FORMAT_VERSION = 1
"""Serialisation format version."""


def _fingerprint(agent: JointControlAgent) -> dict:
    """Configuration fingerprint that must match between save and load."""
    return {
        "format_version": FORMAT_VERSION,
        "num_states": agent.discretizer.num_states,
        "state_shape": list(agent.discretizer.shape),
        "num_rl_actions": agent.num_rl_actions,
        "current_levels": [float(x) for x in agent.current_levels],
        "aux_levels": [float(x) for x in agent.aux_levels],
        "reduced": agent.action_config.reduced,
        "has_predictor": agent.predictor is not None,
        "aux_weight": agent.reward_config.aux_weight,
    }


def save_policy(agent: JointControlAgent, path: Union[str, Path]) -> None:
    """Persist an agent's policy to ``<path>.npz`` + ``<path>.json``.

    ``path`` is a stem: two files are written next to each other.
    """
    stem = Path(path)
    agent.learner.qtable.save(stem.with_suffix(".npz"))
    with open(stem.with_suffix(".json"), "w") as f:
        json.dump(_fingerprint(agent), f, indent=2, sort_keys=True)


def load_policy(agent: JointControlAgent, path: Union[str, Path]) -> None:
    """Load a saved policy into a compatibly configured agent (in place).

    Raises ``ValueError`` when the agent's configuration fingerprint does
    not match the sidecar — a mismatched discretiser or action grid would
    silently scramble the policy otherwise.
    """
    stem = Path(path)
    with open(stem.with_suffix(".json")) as f:
        saved = json.load(f)
    current = _fingerprint(agent)
    mismatched = {key for key in current
                  if saved.get(key) != current[key]}
    if mismatched:
        raise ValueError(
            "saved policy is incompatible with this agent; mismatched "
            f"fields: {sorted(mismatched)}")
    data = np.load(stem.with_suffix(".npz"))
    q = data["q"]
    if q.shape != agent.learner.qtable.values.shape:
        raise ValueError(
            f"Q-table shape {q.shape} does not match agent "
            f"{agent.learner.qtable.values.shape}")
    agent.learner.qtable.values[:] = q
