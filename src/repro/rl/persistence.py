"""Saving and loading trained joint-control policies and training checkpoints.

A trained policy is more than the Q-table: reloading it requires the exact
state discretisation, action grid, and reward weights it was trained with,
or the table's rows and columns mean something else entirely.  This module
serialises the Q-table (``.npz``) together with a JSON sidecar of the
configuration fingerprint, and refuses to load a table into an agent whose
configuration does not match.

Two durability guarantees underpin crash-safe training
(:func:`repro.sim.training.train` with ``checkpoint_path=`` /
``resume_from=``):

* **Atomic writes** — every file is written to a temporary sibling and
  moved into place with :func:`os.replace`, so a crash mid-write can never
  leave a truncated checkpoint where a good one used to be.
* **Complete state** — a training checkpoint captures, besides the value
  tables, every random-number-generator state and annealing counter the
  training loop consumes (exploration RNG + epsilon, learner episode
  counter, double-Q coin, adaptive SoC price, exploring-starts RNG), so a
  killed-and-resumed run replays *bit-identically* the episodes an
  uninterrupted run would have produced.
* **Integrity checking** — the JSON sidecar records the SHA-256 digest of
  the ``.npz`` archive; loading verifies it, so silent on-disk corruption
  (bit rot, torn copies, partial downloads) surfaces as a structured
  :class:`repro.errors.PersistenceError` naming both digests instead of a
  numpy/zipfile traceback — or worse, a quietly scrambled policy.
  Digestless legacy sidecars still load, but emit a ``RuntimeWarning``
  naming the file: an unverified load is never silent.

All writes go through :mod:`repro.fsio`, the chaos harness's fault
injection point (``repro.chaos`` attacks these guarantees with simulated
ENOSPC, torn writes, and bit rot, and verifies the promises above); with
no shim installed the wrappers are pass-through.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import tempfile
import warnings
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro import fsio
from repro.errors import CheckpointError, PersistenceError
from repro.rl.agent import JointControlAgent

FORMAT_VERSION = 1
"""Policy serialisation format version."""

CHECKPOINT_VERSION = 1
"""Training-checkpoint serialisation format version."""


# ------------------------------------------------------------ atomic writes ---

def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    """Write ``payload`` to ``path`` atomically (tmp file + ``os.replace``).

    The temporary sibling is fsynced before the rename and the parent
    directory after it, so the swap is durable, not just atomic.  All
    I/O goes through :mod:`repro.fsio` (the chaos harness's injection
    point); an ``OSError`` anywhere — ENOSPC, EIO, a chaos shim —
    surfaces as a :class:`repro.errors.PersistenceError` and leaves any
    previous file at ``path`` untouched.
    """
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as f:
            fsio.file_write(f, payload, path=path)
            f.flush()
            fsio.fsync(f.fileno(), path=path)
        fsio.replace(tmp, path)
    except BaseException as exc:
        try:
            os.unlink(tmp)
        except OSError:  # containment: best-effort tmp cleanup; the original error re-raises below
            pass
        if isinstance(exc, OSError):
            raise PersistenceError(
                f"{path}: cannot persist ({exc}); the write was aborted "
                "and the previous file, if any, is untouched") from exc
        raise
    fsio.fsync_directory(path.parent)


def _atomic_save_npz(path: Path, **arrays: np.ndarray) -> str:
    """Atomically persist arrays as a compressed ``.npz``; returns the
    SHA-256 hexdigest of the written bytes (recorded in the sidecar for
    load-time integrity verification)."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    payload = buffer.getvalue()
    _atomic_write_bytes(path, payload)
    return hashlib.sha256(payload).hexdigest()


def _load_npz_verified(path: Path, expected_digest: Optional[str]) -> dict:
    """Read an ``.npz``, verifying its digest against the sidecar's record.

    Sidecars written before integrity checking carry no digest
    (``expected_digest=None``); those load unverified for compatibility —
    but *loudly*, with a ``RuntimeWarning`` naming the file, so an
    operator can tell a verified load from a trust-me one (mirroring the
    torn-manifest-line warning).  Any corruption — digest mismatch,
    truncated archive, unreadable member — raises
    :class:`repro.errors.PersistenceError`.
    """
    payload = path.read_bytes()
    if expected_digest is None:
        warnings.warn(
            f"{path}: sidecar records no SHA-256 digest (written before "
            f"integrity checking); loading unverified — re-save to gain "
            f"corruption detection", RuntimeWarning, stacklevel=3)
    if expected_digest is not None:
        actual = hashlib.sha256(payload).hexdigest()
        if actual != expected_digest:
            raise PersistenceError(
                f"{path}: integrity check failed — SHA-256 digest "
                f"{actual} does not match the sidecar's recorded "
                f"{expected_digest}; the file was corrupted or replaced "
                "after it was written")
    try:
        data = np.load(io.BytesIO(payload))
        return {name: data[name] for name in data.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        raise PersistenceError(
            f"{path}: archive is unreadable ({exc}); the file is "
            "truncated or corrupt") from exc


def _load_sidecar(path: Path) -> dict:
    """Read a JSON sidecar, mapping parse failures to a structured error."""
    try:
        with open(path) as f:
            return json.load(f)
    except json.JSONDecodeError as exc:
        raise PersistenceError(
            f"{path}: sidecar is not valid JSON ({exc}); the file is "
            "truncated or corrupt") from exc


def _atomic_write_json(path: Path, obj: dict) -> None:
    """Atomically persist a JSON document."""
    payload = json.dumps(obj, indent=2, sort_keys=True).encode()
    _atomic_write_bytes(path, payload + b"\n")


# ---------------------------------------------------------------- policies ---

def _fingerprint(agent: JointControlAgent) -> dict:
    """Configuration fingerprint that must match between save and load."""
    return {
        "format_version": FORMAT_VERSION,
        "num_states": agent.discretizer.num_states,
        "state_shape": list(agent.discretizer.shape),
        "num_rl_actions": agent.num_rl_actions,
        "current_levels": [float(x) for x in agent.current_levels],
        "aux_levels": [float(x) for x in agent.aux_levels],
        "reduced": agent.action_config.reduced,
        "has_predictor": agent.predictor is not None,
        "aux_weight": agent.reward_config.aux_weight,
    }


def save_policy(agent: JointControlAgent, path: Union[str, Path]) -> None:
    """Persist an agent's policy to ``<path>.npz`` + ``<path>.json``.

    ``path`` is a stem: two files are written next to each other, each
    atomically (a crash mid-save never corrupts an existing policy).
    """
    stem = Path(path)
    digest = _atomic_save_npz(stem.with_suffix(".npz"),
                              q=agent.learner.qtable.values)
    sidecar = dict(_fingerprint(agent), npz_sha256=digest)
    _atomic_write_json(stem.with_suffix(".json"), sidecar)


def load_policy(agent: JointControlAgent, path: Union[str, Path]) -> None:
    """Load a saved policy into a compatibly configured agent (in place).

    Raises :class:`repro.errors.CheckpointError` when the agent's
    configuration fingerprint does not match the sidecar — a mismatched
    discretiser or action grid would silently scramble the policy
    otherwise.
    """
    stem = Path(path)
    saved = _load_sidecar(stem.with_suffix(".json"))
    current = _fingerprint(agent)
    mismatched = {key for key in current
                  if saved.get(key) != current[key]}
    if mismatched:
        raise CheckpointError(
            "saved policy is incompatible with this agent; mismatched "
            f"fields: {sorted(mismatched)}")
    data = _load_npz_verified(stem.with_suffix(".npz"),
                              saved.get("npz_sha256"))
    q = data["q"]
    if q.shape != agent.learner.qtable.values.shape:
        raise CheckpointError(
            f"Q-table shape {q.shape} does not match agent "
            f"{agent.learner.qtable.values.shape}")
    agent.learner.qtable.values[:] = q


# -------------------------------------------------------------- checkpoints ---

def save_checkpoint(agent: JointControlAgent, path: Union[str, Path],
                    episode: int,
                    train_rng: Optional[np.random.Generator] = None) -> None:
    """Write a crash-safe training checkpoint at an episode boundary.

    ``episode`` is the number of training episodes *completed* so far.
    ``train_rng`` is the training loop's exploring-starts generator (its
    state is captured so resumed runs draw the same initial SoCs).  Files
    land at ``<path>.npz`` + ``<path>.json``; both writes are atomic, and
    the JSON (written last) is the marker of a complete checkpoint.
    """
    if episode < 0:
        raise CheckpointError("completed-episode count cannot be negative")
    stem = Path(path)
    learner = agent.learner
    digest = _atomic_save_npz(stem.with_suffix(".npz"),
                              **learner.checkpoint_arrays())
    meta = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "npz_sha256": digest,
        "fingerprint": _fingerprint(agent),
        "episode": int(episode),
        "learner": learner.checkpoint_meta(),
        "exploration": agent.exploration.state_dict(),
        "soc_price": float(agent.reward.soc_price),
        "train_rng_state": (train_rng.bit_generator.state
                            if train_rng is not None else None),
    }
    _atomic_write_json(stem.with_suffix(".json"), meta)


def load_checkpoint(agent: JointControlAgent, path: Union[str, Path],
                    train_rng: Optional[np.random.Generator] = None) -> int:
    """Restore a training checkpoint into ``agent`` (in place).

    Restores value tables, learner counters, exploration state, the
    adaptive SoC price, and — when ``train_rng`` is passed — the training
    loop's exploring-starts generator state.  Returns the number of
    episodes already completed, so the caller continues from there.

    Raises :class:`repro.errors.CheckpointError` on fingerprint or format
    mismatches; a missing file surfaces as :class:`FileNotFoundError`.
    """
    stem = Path(path)
    meta = _load_sidecar(stem.with_suffix(".json"))
    if meta.get("checkpoint_version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {meta.get('checkpoint_version')!r}"
            f" (expected {CHECKPOINT_VERSION}); was this written by "
            "save_policy instead of save_checkpoint?")
    current = _fingerprint(agent)
    saved = meta.get("fingerprint", {})
    mismatched = {key for key in current if saved.get(key) != current[key]}
    if mismatched:
        raise CheckpointError(
            "checkpoint is incompatible with this agent; mismatched "
            f"fields: {sorted(mismatched)}")
    arrays = _load_npz_verified(stem.with_suffix(".npz"),
                                meta.get("npz_sha256"))
    try:
        agent.learner.restore_checkpoint(arrays, meta["learner"])
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint is missing learner state {exc}; the saved learner "
            "algorithm probably differs from this agent's") from exc
    agent.exploration.load_state_dict(meta["exploration"])
    agent.reward.set_soc_price(meta["soc_price"])
    if train_rng is not None:
        if meta.get("train_rng_state") is None:
            raise CheckpointError(
                "checkpoint has no training-loop RNG state; it was not "
                "written by the training loop's checkpointer")
        train_rng.bit_generator.state = meta["train_rng_state"]
    return int(meta["episode"])
