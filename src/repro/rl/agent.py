"""The joint powertrain + auxiliary control agent (paper Section 4.3).

The agent glues together the state discretiser, the predictor, the
TD(lambda) learner, and the powertrain solver:

* **Reduced action space** (the paper's recommendation): the RL action is
  the battery current level only; for the chosen current, the gear ``R(k)``
  and the auxiliary power ``p_aux`` are picked by an inner optimisation that
  maximises the instantaneous reward over a candidate grid — one vectorised
  solver call evaluates the whole (current x gear x aux) cross product per
  step, so the inner optimisation costs nothing extra.
* **Full action space**: every (current, gear, aux level) triple is its own
  RL action, exactly Eq. 15.  Slower to converge — the ablation bench
  measures by how much.

The agent is deliberately *partially model-free*: it never inverts the
engine fuel map or plans over the cycle; it only asks the solver "what
happens if I apply this action now", which is the measurement a real HEV
supervisory controller has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.powertrain.operating_point import BatchResult
from repro.powertrain.solver import PowertrainSolver
from repro.prediction.base import Predictor
from repro.prediction.quantize import PredictionQuantizer
from repro.rl.discretize import StateDiscretizer
from repro.rl.exploration import EpsilonGreedy
from repro.rl.reward import RewardConfig, build_reward_function
from repro.rl.td_lambda import TDLambdaConfig, TDLambdaLearner


@dataclass(frozen=True)
class ActionSpaceConfig:
    """Shape of the agent's action space (Eq. 15 or the reduced variant)."""

    current_levels: Tuple[float, ...] = (-60.0, -30.0, -15.0, -6.0, 0.0,
                                         6.0, 15.0, 30.0, 60.0)
    """Discretised battery current set I, A (positive discharges).  Nine
    levels keep the state-action product small enough for tens-of-episodes
    convergence; the action-space ablation bench sweeps the count."""

    reduced: bool = True
    """True: RL action = current only, gear/aux inner-optimised (the paper's
    recommended reduced space).  False: full Eq. 15 cross product."""

    aux_candidates: int = 6
    """Number of auxiliary power levels in the candidate grid."""

    control_aux: bool = True
    """False freezes p_aux at ``fixed_aux_power`` — used to reproduce the
    prediction-only study (Fig. 2) and the no-aux-control baseline [13]."""

    fixed_aux_power: Optional[float] = None
    """Auxiliary draw when ``control_aux`` is False, W (defaults to the
    utility-preferred power)."""

    def __post_init__(self) -> None:
        if len(self.current_levels) < 2:
            raise ValueError("need at least two current levels")
        levels = list(self.current_levels)
        if levels != sorted(levels):
            raise ValueError("current levels must be sorted")
        if self.aux_candidates < 1:
            raise ValueError("need at least one auxiliary candidate")


@dataclass(frozen=True)
class ExecutedStep:
    """What the agent actually did at one time step."""

    state: int
    """Discrete RL state id observed."""

    rl_action: int
    """Chosen RL action index (current level in the reduced space)."""

    current: float
    """Actual battery current after solver saturation, A."""

    gear: int
    """Executed 0-based gear index."""

    aux_power: float
    """Executed auxiliary draw, W."""

    fuel_rate: float
    """Fuel mass-flow of the step, g/s."""

    soc_next: float
    """Post-step battery state of charge (fraction)."""

    reward: float
    """Learning reward (penalties included)."""

    paper_reward: float
    """Unpenalised reward as printed in the paper's Table 2."""

    feasible: bool
    """False when the step executed a fallback primitive."""

    mode: int
    """Operating-mode classification of the executed point."""

    power_demand: float
    """Driver propulsion power demand of the step, W."""

    shortfall: float = 0.0
    """Torque the executed point failed to deliver, N·m (0 when demand
    was met; defaults for controllers predating the shortfall trace)."""


class JointControlAgent:
    """RL agent jointly controlling battery current, gear, and p_aux."""

    def __init__(self, solver: PowertrainSolver,
                 discretizer: Optional[StateDiscretizer] = None,
                 td_config: Optional[TDLambdaConfig] = None,
                 reward_config: Optional[RewardConfig] = None,
                 action_config: Optional[ActionSpaceConfig] = None,
                 predictor: Optional[Predictor] = None,
                 quantizer: Optional[PredictionQuantizer] = None,
                 exploration: Optional[EpsilonGreedy] = None,
                 algorithm: str = "td_lambda",
                 seed: int = 42):
        """``predictor=None`` disables the prediction state dimension (the
        configuration of the baseline RL controller [13]).  ``algorithm``
        selects the learner: ``"td_lambda"`` (Algorithm 1, the paper's) or
        ``"double_q"`` (the double-estimator extension)."""
        self.solver = solver
        battery = solver.params.battery
        levels = 1
        if predictor is not None:
            quantizer = quantizer or PredictionQuantizer()
            levels = quantizer.num_levels
        self.discretizer = discretizer or StateDiscretizer(
            soc_min=battery.soc_min, soc_max=battery.soc_max,
            prediction_levels=levels)
        self.action_config = action_config or ActionSpaceConfig()
        self.reward_config = reward_config or RewardConfig()
        self.reward = build_reward_function(solver, self.reward_config)
        self.predictor = predictor
        self.quantizer = quantizer if predictor is not None else None
        self.exploration = exploration or EpsilonGreedy(seed=seed)

        self._build_action_grid()
        if algorithm == "td_lambda":
            self.learner = TDLambdaLearner(
                self.discretizer.num_states, self.num_rl_actions,
                td_config, seed=seed)
        elif algorithm == "double_q":
            from repro.rl.double_q import DoubleQLearner
            self.learner = DoubleQLearner(
                self.discretizer.num_states, self.num_rl_actions,
                td_config, seed=seed)
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}; expected "
                             f"'td_lambda' or 'double_q'")
        self._pending: Optional[Tuple[int, int, float]] = None
        self._last_soc: Optional[float] = None

    # ------------------------------------------------------------- actions ---

    def _build_action_grid(self) -> None:
        """Enumerate the primitive (current, gear, aux) grid and the mapping
        from primitives to RL actions."""
        cfg = self.action_config
        aux = self.solver.auxiliary
        currents = np.asarray(cfg.current_levels, dtype=float)
        gears = np.arange(self.solver.transmission.num_gears)
        if cfg.control_aux:
            aux_levels = aux.power_levels(cfg.aux_candidates)
            preferred = aux.utility.argmax(aux.max_power)
            if not np.any(np.isclose(aux_levels, preferred)):
                aux_levels = np.sort(np.append(aux_levels, preferred))
        else:
            fixed = (cfg.fixed_aux_power if cfg.fixed_aux_power is not None
                     else aux.utility.argmax(aux.max_power))
            aux_levels = np.asarray([float(aux.clamp(fixed))])

        grid = np.array(np.meshgrid(np.arange(len(currents)),
                                    np.arange(len(gears)),
                                    np.arange(len(aux_levels)),
                                    indexing="ij")).reshape(3, -1)
        self._grid_currents = currents[grid[0]]
        self._grid_gears = gears[grid[1]]
        self._grid_aux = aux_levels[grid[2]]
        if cfg.reduced:
            self._grid_group = grid[0]
            self.num_rl_actions = len(currents)
        else:
            self._grid_group = np.arange(grid.shape[1])
            self.num_rl_actions = grid.shape[1]
        self.current_levels = currents
        self.aux_levels = aux_levels
        # One workspace for the life of the agent: the candidate grid is
        # fixed, so its statics (clamped currents, resistive terms, unique
        # gears) are computed once here and the per-step solver call reuses
        # the same preallocated buffers instead of rebuilding the grid.
        self._workspace = self.solver.workspace(
            self._grid_currents, self._grid_gears, self._grid_aux)

    # --------------------------------------------------------------- acting ---

    def begin_episode(self) -> None:
        """Reset per-episode machinery (traces, predictor history, pending)."""
        self.learner.start_episode()
        if self.predictor is not None:
            self.predictor.reset()
        self._pending = None

    def finish_episode(self, learn: bool = True) -> None:
        """Flush the last pending transition and adapt the SoC price.

        The terminal TD update closes the episode; the adaptive-pricing
        outer loop then moves the charge price against the episode's final
        SoC error (only while learning, so evaluation runs are pure).
        """
        if learn and self._pending is not None:
            state, action, reward = self._pending
            self.learner.update_terminal(state, action, reward)
        self._pending = None
        if learn:
            self.exploration.new_episode()
            if self._last_soc is not None:
                self.reward.adapt_price(self._last_soc)
        self._last_soc = None

    def observe_state(self, power_demand: float, speed: float,
                      soc: float) -> int:
        """Discretise the current observation into an RL state id."""
        level = 0
        if self.predictor is not None:
            level = self.quantizer(self.predictor.predict())
        return self.discretizer.state_of(power_demand, speed, soc, level)

    def act(self, speed: float, acceleration: float, soc: float, dt: float,
            grade: float = 0.0, learn: bool = True,
            greedy: bool = False) -> ExecutedStep:
        """Observe, (optionally) learn from the previous step, and act.

        Performs one vectorised solver evaluation of the whole primitive
        grid, reduces it to per-RL-action feasibility and best-primitive
        choices, selects an RL action epsilon-greedily (greedily in
        evaluation mode), and returns the executed step.
        """
        p_dem = float(self.solver.dynamics.power_demand(speed, acceleration,
                                                        grade))
        state = self.observe_state(p_dem, speed, soc)
        if self.predictor is not None:
            self.predictor.update(p_dem)
            update_velocity = getattr(self.predictor, "update_velocity",
                                      None)
            if update_velocity is not None:
                update_velocity(speed)

        if learn and self._pending is not None:
            prev_state, prev_action, prev_reward = self._pending
            self.learner.update(prev_state, prev_action, prev_reward, state)

        batch = self.solver.evaluate_grid(
            self._workspace, speed, acceleration, soc, dt, grade)
        rewards = np.asarray(self.reward(
            batch.fuel_rate, batch.aux_power, dt, soc_next=batch.soc_next,
            soc_prev=soc, shortfall=batch.shortfall), dtype=float)

        feasible_group, best_primitive = self._reduce(batch, rewards)
        # Myopically best RL action — the guidance target for exploration.
        if np.any(feasible_group):
            group_rewards = np.where(feasible_group,
                                     rewards[best_primitive], -np.inf)
            myopic = int(np.argmax(group_rewards))
        else:
            myopic = None
        rl_action = self.exploration.select(
            self.learner.qtable.row(state), feasible_group, greedy=greedy,
            guided=myopic)

        if feasible_group[rl_action]:
            prim = int(best_primitive[rl_action])
            fallback = False
        else:
            prim = self._fallback_primitive(batch)
            fallback = True

        reward = float(rewards[prim])
        paper_reward = float(self.reward.paper_reward(
            batch.fuel_rate[prim], batch.aux_power[prim], dt))
        if learn:
            self._pending = (state, rl_action, reward)
        self._last_soc = float(batch.soc_next[prim])

        return ExecutedStep(
            state=state, rl_action=rl_action,
            current=float(batch.battery_current[prim]),
            gear=int(batch.gear[prim]),
            aux_power=float(batch.aux_power[prim]),
            fuel_rate=float(batch.fuel_rate[prim]),
            soc_next=float(batch.soc_next[prim]),
            reward=reward, paper_reward=paper_reward,
            feasible=not fallback, mode=int(batch.mode[prim]),
            power_demand=p_dem, shortfall=float(batch.shortfall[prim]))

    def act_batch(self, speeds, accelerations, socs, dt: float,
                  grades=None) -> list:
        """Greedy policy probe over N independent observations.

        Answers "what would the trained policy do in each of these
        situations" without mutating any agent state: no TD update, no
        pending transition, no predictor/exploration advance (the
        prediction level is read from the predictor's current state).
        Each observation still gets the full vectorised grid evaluation
        through the shared workspace.  Returns one :class:`ExecutedStep`
        per observation.
        """
        speeds = np.asarray(speeds, dtype=float)
        accelerations = np.asarray(accelerations, dtype=float)
        socs = np.asarray(socs, dtype=float)
        if grades is None:
            grades = np.zeros(len(speeds))
        else:
            grades = np.asarray(grades, dtype=float)
        if not (len(speeds) == len(accelerations) == len(socs)
                == len(grades)):
            raise ValueError(
                "speeds, accelerations, socs, and grades must be "
                "index-aligned")
        level = 0
        if self.predictor is not None:
            level = self.quantizer(self.predictor.predict())

        steps = []
        for i in range(len(speeds)):
            speed = float(speeds[i])
            accel = float(accelerations[i])
            soc = float(socs[i])
            grade = float(grades[i])
            p_dem = float(self.solver.dynamics.power_demand(speed, accel,
                                                            grade))
            state = self.discretizer.state_of(p_dem, speed, soc, level)
            batch = self.solver.evaluate_grid(
                self._workspace, speed, accel, soc, dt, grade)
            rewards = np.asarray(self.reward(
                batch.fuel_rate, batch.aux_power, dt,
                soc_next=batch.soc_next, soc_prev=soc,
                shortfall=batch.shortfall), dtype=float)
            feasible_group, best_primitive = self._reduce(batch, rewards)
            masked = np.where(feasible_group,
                              self.learner.qtable.row(state), -np.inf)
            if np.any(feasible_group):
                rl_action = int(np.argmax(masked))
                prim = int(best_primitive[rl_action])
                fallback = False
            else:
                rl_action = int(np.argmax(self.learner.qtable.row(state)))
                prim = self._fallback_primitive(batch)
                fallback = True
            steps.append(ExecutedStep(
                state=state, rl_action=rl_action,
                current=float(batch.battery_current[prim]),
                gear=int(batch.gear[prim]),
                aux_power=float(batch.aux_power[prim]),
                fuel_rate=float(batch.fuel_rate[prim]),
                soc_next=float(batch.soc_next[prim]),
                reward=float(rewards[prim]),
                paper_reward=float(self.reward.paper_reward(
                    batch.fuel_rate[prim], batch.aux_power[prim], dt)),
                feasible=not fallback, mode=int(batch.mode[prim]),
                power_demand=p_dem,
                shortfall=float(batch.shortfall[prim])))
        return steps

    # -------------------------------------------------------- monitor hooks ---

    def drop_pending(self) -> None:
        """Discard the pending TD transition without applying it.

        The safety supervisor calls this when it freezes learning
        mid-episode: the stored ``(state, action, reward)`` would otherwise
        be paired with whatever state the agent observes *after* recovery,
        training on a transition that never happened.
        """
        self._pending = None

    def q_health(self) -> Tuple[bool, float]:
        """``(all finite, max |Q|)`` over the learner's value table(s).

        The supervisor's Q-table monitor polls this; both learners expose
        their table(s) through ``.qtable.values``.
        """
        values = self.learner.qtable.values
        finite = bool(np.all(np.isfinite(values)))
        max_abs = float(np.max(np.abs(values))) if finite else float("inf")
        return finite, max_abs

    # ------------------------------------------------------------ internals ---

    def _reduce(self, batch: BatchResult,
                rewards: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-RL-action feasibility and the best feasible primitive index
        (the inner optimisation of the reduced action space).

        The primitive grid is built current-major (meshgrid ``indexing='ij'``
        with the current index first), so each RL-action group occupies a
        contiguous, equal-size block and the reduction is a single reshape.
        """
        n = self.num_rl_actions
        masked = np.where(batch.feasible, rewards, -np.inf)
        blocks = masked.reshape(n, -1)
        best_in_block = np.argmax(blocks, axis=1)
        best_primitive = best_in_block + np.arange(n) * blocks.shape[1]
        feasible_group = np.isfinite(
            blocks[np.arange(n), best_in_block])
        return feasible_group, best_primitive

    def _fallback_primitive(self, batch: BatchResult) -> int:
        """Least-bad primitive when no action is fully feasible.

        Prefer meeting the traction demand, then the smallest SoC-window
        excursion, then the smallest torque shortfall.
        """
        violation = self.reward.window_violation(batch.soc_next)
        score = (np.where(batch.meets_demand, 0.0, 1e6)
                 + np.asarray(violation) * 1e3
                 + batch.shortfall)
        return int(np.argmin(score))
