"""Reinforcement-learning core: the paper's joint control framework.

Implements Section 4.3 end to end: the four-dimensional discretised state
space (power demand, speed, battery charge, predicted demand level), the
full and reduced action spaces, the reward coupling fuel to auxiliary
utility, and the TD(lambda) learner of Algorithm 1 with the bounded
M-most-recent eligibility-trace list.
"""

from repro.rl.discretize import StateDiscretizer, uniform_edges
from repro.rl.qtable import QTable
from repro.rl.traces import EligibilityTraces
from repro.rl.reward import RewardConfig, RewardFunction
from repro.rl.exploration import EpsilonGreedy
from repro.rl.td_lambda import TDLambdaConfig, TDLambdaLearner
from repro.rl.double_q import DoubleQLearner
from repro.rl.agent import ActionSpaceConfig, JointControlAgent
from repro.rl.persistence import load_policy, save_policy

__all__ = [
    "load_policy",
    "save_policy",
    "StateDiscretizer",
    "uniform_edges",
    "QTable",
    "EligibilityTraces",
    "RewardConfig",
    "RewardFunction",
    "EpsilonGreedy",
    "TDLambdaConfig",
    "TDLambdaLearner",
    "DoubleQLearner",
    "ActionSpaceConfig",
    "JointControlAgent",
]
