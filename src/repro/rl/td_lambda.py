"""TD(lambda)-learning (paper Algorithm 1).

The learner keeps the Q-table and the bounded eligibility list and applies
the per-step update:

    delta  <- r_{t+1} + gamma * max_a' Q(s_{t+1}, a') - Q(s_t, a_t)
    e(s_t, a_t) <- e(s_t, a_t) + 1
    for all tracked (s, a):
        Q(s, a) <- Q(s, a) + alpha * e(s, a) * delta
        e(s, a) <- gamma * lambda * e(s, a)

The paper selects TD(lambda) over one-step Q-learning for its faster
convergence and robustness in the non-Markovian environment a real driving
profile constitutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.rl.qtable import QTable
from repro.rl.traces import EligibilityTraces


@dataclass(frozen=True)
class TDLambdaConfig:
    """Hyper-parameters of Algorithm 1."""

    learning_rate: float = 0.12
    """Step size alpha."""

    discount: float = 0.80
    """Discount rate gamma in (0, 1) (Eq. 11).  With the charge-sustaining
    shaping already pricing battery energy into each step's reward, most of
    the long-horizon credit is local and a moderate discount converges much
    faster than gamma near 1 (the discount ablation bench sweeps this)."""

    trace_decay: float = 0.60
    """The lambda of TD(lambda); 0 recovers plain Q-learning."""

    max_traces: int = 48
    """M: number of most-recent state-action pairs whose eligibility is
    tracked (all others are at most lambda^M and are dropped)."""

    learning_rate_decay: float = 0.015
    """Per-episode hyperbolic annealing of alpha:
    ``alpha_ep = alpha / (1 + decay * episode)``.  Zero keeps alpha
    constant; a small decay quiets the late-training update noise so the
    greedy policy settles."""

    def __post_init__(self) -> None:
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning rate must be in (0, 1]")
        if self.learning_rate_decay < 0.0:
            raise ValueError("learning-rate decay cannot be negative")
        if not 0.0 < self.discount < 1.0:
            raise ValueError("discount must be in (0, 1)")
        if not 0.0 <= self.trace_decay <= 1.0:
            raise ValueError("trace decay must be in [0, 1]")
        if self.max_traces < 1:
            raise ValueError("need at least one trace slot")


class TDLambdaLearner:
    """Tabular TD(lambda) with replacing-by-accumulation bounded traces."""

    def __init__(self, num_states: int, num_actions: int,
                 config: Optional[TDLambdaConfig] = None,
                 seed: int = 42):
        self._config = config or TDLambdaConfig()
        rng = np.random.default_rng(seed)
        self.qtable = QTable(num_states, num_actions, rng=rng)
        self._traces = EligibilityTraces(
            decay=self._config.discount * self._config.trace_decay,
            max_entries=self._config.max_traces)
        self._episode = 0
        self._episode_dirty = False

    @property
    def learning_rate(self) -> float:
        """Current (annealed) step size alpha."""
        c = self._config
        return c.learning_rate / (1.0 + c.learning_rate_decay * self._episode)

    @property
    def config(self) -> TDLambdaConfig:
        """The hyper-parameter set."""
        return self._config

    @property
    def traces(self) -> EligibilityTraces:
        """The bounded eligibility list (exposed for tests)."""
        return self._traces

    def start_episode(self) -> None:
        """Clear eligibility at an episode boundary (traces do not span
        independent drives) and advance the learning-rate annealing."""
        if len(self._traces) > 0 or self._episode_dirty:
            self._episode += 1
        self._traces.clear()
        self._episode_dirty = False

    # --- checkpointing ----------------------------------------------------------

    def checkpoint_arrays(self) -> dict:
        """Value arrays to persist at an episode boundary (traces are
        cleared at the next :meth:`start_episode`, so they are not saved)."""
        return {"q": self.qtable.values}

    def checkpoint_meta(self) -> dict:
        """JSON-serialisable learner counters (annealing schedule state)."""
        return {"episode": self._episode, "dirty": self._episode_dirty}

    def restore_checkpoint(self, arrays: dict, meta: dict) -> None:
        """Restore a boundary snapshot written by the checkpoint pair."""
        self.qtable.values[:] = arrays["q"]
        self._episode = int(meta["episode"])
        self._episode_dirty = bool(meta["dirty"])
        self._traces.clear()

    def update(self, state: int, action: int, reward: float,
               next_state: int) -> float:
        """Apply one Algorithm 1 step; returns the TD error delta."""
        c = self._config
        q = self.qtable.values
        delta = (reward + c.discount * self.qtable.best_value(next_state)
                 - q[state, action])
        self._traces.visit(state, action)
        keys = np.array([k for k, _ in self._traces])
        eligibilities = np.array([e for _, e in self._traces])
        q[keys[:, 0], keys[:, 1]] += self.learning_rate * eligibilities * delta
        self._traces.decay()
        self._episode_dirty = True
        return float(delta)

    def update_terminal(self, state: int, action: int, reward: float) -> float:
        """Terminal-transition update: no bootstrap from a successor state."""
        c = self._config
        q = self.qtable.values
        delta = reward - q[state, action]
        self._traces.visit(state, action)
        keys = np.array([k for k, _ in self._traces])
        eligibilities = np.array([e for _, e in self._traces])
        q[keys[:, 0], keys[:, 1]] += self.learning_rate * eligibilities * delta
        self._traces.decay()
        self._episode_dirty = True
        return float(delta)
