"""Bounded eligibility traces for TD(lambda) (paper Section 4.3.4).

The eligibility e(s, a) measures how recently and frequently a state-action
pair was visited; Algorithm 1 updates *all* pairs each step, but the paper
notes that keeping only the M most recent pairs is exact up to lambda^M,
which is negligible for modest M.  This class implements that bounded list:
an ordered map from (state, action) to eligibility, decayed by gamma*lambda
each step and truncated to the M most recent pairs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Tuple


class EligibilityTraces:
    """M-most-recent eligibility list for tabular TD(lambda)."""

    def __init__(self, decay: float, max_entries: int = 64):
        """``decay`` is the per-step factor gamma*lambda in [0, 1); pairs
        beyond the ``max_entries`` most recent are dropped."""
        if not 0.0 <= decay < 1.0:
            raise ValueError("trace decay must be in [0, 1)")
        if max_entries < 1:
            raise ValueError("need room for at least one trace entry")
        self._decay = decay
        self._max = max_entries
        self._traces: "OrderedDict[Tuple[int, int], float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[Tuple[Tuple[int, int], float]]:
        """Iterate over ((state, action), eligibility) pairs, oldest first."""
        return iter(self._traces.items())

    def get(self, state: int, action: int) -> float:
        """Current eligibility of a pair (0 if not tracked)."""
        return self._traces.get((state, action), 0.0)

    def visit(self, state: int, action: int) -> None:
        """Algorithm 1 line 6: accumulate the just-visited pair's trace.

        The pair moves to the most-recent position; if the list overflows,
        the oldest pair (whose eligibility is at most ``decay**M``) is
        dropped.
        """
        key = (state, action)
        value = self._traces.pop(key, 0.0) + 1.0
        self._traces[key] = value
        while len(self._traces) > self._max:
            self._traces.popitem(last=False)

    def decay(self) -> None:
        """Algorithm 1 line 9: multiply every tracked eligibility by the decay."""
        if self._decay == 0.0:
            self._traces.clear()
            return
        for key in self._traces:
            self._traces[key] *= self._decay

    def clear(self) -> None:
        """Drop all traces (start of a new episode)."""
        self._traces.clear()
