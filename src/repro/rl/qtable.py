"""Dense tabular Q-value storage.

The paper's TD(lambda) associates a value Q(s, a) with every state-action
pair.  With the reduced action space (|A| = number of current levels) and
the default discretiser (|S| ~ 1.9k) the table is small enough to keep
dense, which makes the batched update over the eligibility list a single
vectorised numpy operation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError


class QTable:
    """Dense |S| x |A| action-value table."""

    def __init__(self, num_states: int, num_actions: int,
                 initial_value: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        """Values start at ``initial_value``; pass ``rng`` to add small random
        perturbations (Algorithm 1 line 1 allows arbitrary initialisation —
        a tiny jitter breaks argmax ties randomly but reproducibly)."""
        if num_states < 1 or num_actions < 1:
            raise ConfigurationError("table dimensions must be positive")
        self._values = np.full((num_states, num_actions), float(initial_value))
        if rng is not None:
            self._values += rng.uniform(-1e-6, 1e-6, size=self._values.shape)

    @property
    def num_states(self) -> int:
        """Number of rows |S|."""
        return self._values.shape[0]

    @property
    def num_actions(self) -> int:
        """Number of columns |A|."""
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The raw value array (mutated in place by the learner)."""
        return self._values

    def row(self, state: int) -> np.ndarray:
        """Q(s, .) for one state (a view, not a copy)."""
        return self._values[state]

    def best_value(self, state: int) -> float:
        """``max_a Q(s, a)`` (Algorithm 1 line 5 bootstrap target)."""
        return float(np.max(self._values[state]))

    def best_action(self, state: int,
                    feasible: Optional[np.ndarray] = None) -> int:
        """Greedy action for ``state``, optionally restricted to a mask.

        With a feasibility mask, infeasible actions are excluded; if the mask
        is all-false, the unrestricted argmax is returned (the caller's
        fallback logic then decides what to execute).
        """
        q = self._values[state]
        if feasible is not None and np.any(feasible):
            masked = np.where(feasible, q, -np.inf)
            return int(np.argmax(masked))
        return int(np.argmax(q))

    def visited_fraction(self) -> float:
        """Fraction of table cells that have moved away from their init value.

        A coarse coverage diagnostic used by the convergence tests: with a
        jittered init this measures cells touched by at least one update.
        """
        return float(np.mean(np.abs(self._values) > 1e-5))

    # --- persistence -------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist the table to an ``.npz`` file."""
        np.savez_compressed(Path(path), q=self._values)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QTable":
        """Load a table previously written by :meth:`save`."""
        data = np.load(Path(path))
        table = cls(*data["q"].shape)
        table._values[:] = data["q"]
        return table
