"""Double Q-learning (extension; van Hasselt 2010).

Plain Q-learning's ``max_a Q(s', a)`` bootstrap is biased upward under
noisy rewards — and an HEV's reward *is* noisy across visits (the same
discrete state covers a range of demands).  Double Q-learning keeps two
tables and decorrelates action selection from evaluation:

    with prob 1/2:   A(s,a) += alpha (r + gamma B(s', argmax_a A(s',a)) - A(s,a))
    otherwise:       B(s,a) += alpha (r + gamma A(s', argmax_a B(s',a)) - B(s,a))

The learner exposes the same surface as
:class:`repro.rl.td_lambda.TDLambdaLearner` (``qtable`` for action
selection, ``update`` / ``update_terminal`` / ``start_episode``), where the
exposed ``qtable`` is the running *mean* of the two tables — so the joint
agent can swap it in without modification (the double-Q ablation does).
Eligibility traces are not used: the double estimator's corrections would
propagate along traces built for the other table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rl.qtable import QTable
from repro.rl.td_lambda import TDLambdaConfig


class DoubleQLearner:
    """Tabular double Q-learning with the TD-learner interface."""

    def __init__(self, num_states: int, num_actions: int,
                 config: Optional[TDLambdaConfig] = None, seed: int = 42):
        """``config.trace_decay``/``max_traces`` are ignored (no traces);
        the learning rate, its decay, and the discount apply as usual."""
        self._config = config or TDLambdaConfig()
        rng = np.random.default_rng(seed)
        self._table_a = QTable(num_states, num_actions, rng=rng)
        self._table_b = QTable(num_states, num_actions, rng=rng)
        self.qtable = QTable(num_states, num_actions)
        self._refresh_mean()
        self._coin = np.random.default_rng(seed + 1)
        self._episode = 0
        self._episode_dirty = False

    @property
    def config(self) -> TDLambdaConfig:
        """The hyper-parameter set."""
        return self._config

    @property
    def learning_rate(self) -> float:
        """Current (annealed) step size alpha."""
        c = self._config
        return c.learning_rate / (1.0 + c.learning_rate_decay * self._episode)

    def _refresh_mean(self, state: Optional[int] = None) -> None:
        if state is None:
            self.qtable.values[:] = 0.5 * (self._table_a.values
                                           + self._table_b.values)
        else:
            self.qtable.values[state] = 0.5 * (self._table_a.values[state]
                                               + self._table_b.values[state])

    def start_episode(self) -> None:
        """Advance the learning-rate annealing at episode boundaries."""
        if self._episode_dirty:
            self._episode += 1
        self._episode_dirty = False

    # --- checkpointing ----------------------------------------------------------

    def checkpoint_arrays(self) -> dict:
        """Both estimator tables (the exposed mean is rebuilt on restore)."""
        return {"q_a": self._table_a.values, "q_b": self._table_b.values}

    def checkpoint_meta(self) -> dict:
        """JSON-serialisable counters plus the coin-flip generator state."""
        return {"episode": self._episode, "dirty": self._episode_dirty,
                "coin_state": self._coin.bit_generator.state}

    def restore_checkpoint(self, arrays: dict, meta: dict) -> None:
        """Restore a boundary snapshot written by the checkpoint pair."""
        self._table_a.values[:] = arrays["q_a"]
        self._table_b.values[:] = arrays["q_b"]
        self._refresh_mean()
        self._episode = int(meta["episode"])
        self._episode_dirty = bool(meta["dirty"])
        self._coin.bit_generator.state = meta["coin_state"]

    def update(self, state: int, action: int, reward: float,
               next_state: int) -> float:
        """One double-Q update; returns the TD error of the updated table."""
        c = self._config
        if self._coin.random() < 0.5:
            primary, other = self._table_a, self._table_b
        else:
            primary, other = self._table_b, self._table_a
        best_next = int(np.argmax(primary.values[next_state]))
        target = reward + c.discount * other.values[next_state, best_next]
        delta = target - primary.values[state, action]
        primary.values[state, action] += self.learning_rate * delta
        self._refresh_mean(state)
        self._episode_dirty = True
        return float(delta)

    def update_terminal(self, state: int, action: int, reward: float) -> float:
        """Terminal update (no bootstrap): applied to both tables."""
        deltas = []
        for table in (self._table_a, self._table_b):
            delta = reward - table.values[state, action]
            table.values[state, action] += self.learning_rate * delta
            deltas.append(delta)
        self._refresh_mean(state)
        self._episode_dirty = True
        return float(np.mean(deltas))
