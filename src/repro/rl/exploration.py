"""Exploration-versus-exploitation policy (paper Section 4.3.4).

Epsilon-greedy exactly as the paper describes: the current best action is
chosen with probability 1 - epsilon, and *the other* actions are chosen
with equal probability.  Epsilon decays geometrically across episodes so
training anneals from exploration to exploitation; evaluation uses the
greedy policy (epsilon = 0).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EpsilonGreedy:
    """Annealed epsilon-greedy action selection over a feasibility mask."""

    def __init__(self, epsilon: float = 0.30, decay: float = 0.93,
                 epsilon_min: float = 0.01, guided_fraction: float = 0.5,
                 seed: int = 42):
        """Start at ``epsilon``, multiply by ``decay`` each episode, floor at
        ``epsilon_min``.  ``guided_fraction`` of exploration steps take the
        caller-supplied *guided* action (the myopically best one) instead of
        a uniform draw — uniform exploration wastes most of its budget on
        actions whose immediate reward already rules them out, while the
        guided mix keeps coverage without the waste.  Selection randomness
        is seeded for reproducibility."""
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if not 0.0 <= epsilon_min <= epsilon:
            raise ValueError("epsilon floor must be in [0, epsilon]")
        if not 0.0 <= guided_fraction <= 1.0:
            raise ValueError("guided fraction must be in [0, 1]")
        self._epsilon0 = epsilon
        self.epsilon = epsilon
        self._decay = decay
        self._min = epsilon_min
        self._guided_fraction = guided_fraction
        self._rng = np.random.default_rng(seed)

    def new_episode(self) -> None:
        """Anneal epsilon at an episode boundary."""
        self.epsilon = max(self.epsilon * self._decay, self._min)

    def state_dict(self) -> dict:
        """JSON-serialisable snapshot: annealed epsilon plus the exact
        bit-generator state, so a resumed training run replays the same
        exploration draws as an uninterrupted one."""
        return {"epsilon": float(self.epsilon),
                "rng_state": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.epsilon = float(state["epsilon"])
        self._rng.bit_generator.state = state["rng_state"]

    def reset(self) -> None:
        """Restore the initial epsilon (fresh training run)."""
        self.epsilon = self._epsilon0

    def select(self, q_row: np.ndarray,
               feasible: Optional[np.ndarray] = None,
               greedy: bool = False,
               guided: Optional[int] = None) -> int:
        """Pick an action index from one Q-table row.

        Infeasible actions are never selected when at least one feasible
        action exists.  With ``greedy`` the best feasible action is returned
        deterministically (evaluation mode).  ``guided`` is the myopically
        best action the caller recommends for guided exploration steps.
        """
        if feasible is None:
            feasible = np.ones(len(q_row), dtype=bool)
        if not np.any(feasible):
            # Caller handles true fallback; be deterministic here.
            return int(np.argmax(q_row))
        masked = np.where(feasible, q_row, -np.inf)
        best = int(np.argmax(masked))
        if greedy or self._rng.random() >= self.epsilon:
            return best
        if (guided is not None and guided != best and feasible[guided]
                and self._rng.random() < self._guided_fraction):
            return int(guided)
        others = np.nonzero(feasible)[0]
        others = others[others != best]
        if len(others) == 0:
            return best
        return int(self._rng.choice(others))
