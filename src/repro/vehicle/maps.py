"""Tabulated engine maps (ADVISOR-style grids).

ADVISOR — the simulator the paper builds on — describes engines as gridded
steady-state fuel maps.  This module provides the same representation:
an :class:`EngineMap` holds a (speed x torque) fuel-rate grid plus the
wide-open-throttle torque curve, interpolates bilinearly, round-trips
through CSV, and :class:`TabulatedEngine` exposes the same interface as
the parametric :class:`repro.vehicle.engine.Engine` so a measured map can
be dropped into the powertrain solver unchanged.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.vehicle.engine import Engine

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class EngineMap:
    """Gridded steady-state engine description."""

    speed_grid: np.ndarray
    """Crankshaft speeds of the grid columns, rad/s, ascending."""

    torque_grid: np.ndarray
    """Brake torques of the grid rows, N*m, ascending from 0."""

    fuel_rate_grid: np.ndarray
    """Fuel mass-flow at each (torque, speed) grid point, g/s; shape
    (len(torque_grid), len(speed_grid))."""

    max_torque_curve: np.ndarray
    """Wide-open-throttle torque at each grid speed, N*m."""

    fuel_energy_density: float
    """Lower heating value of the fuel, J/g."""

    idle_fuel_rate: float = 0.0
    """Fuel rate at zero torque (already included in the grid; stored for
    round-tripping)."""

    def __post_init__(self) -> None:
        speed = np.asarray(self.speed_grid, dtype=float)
        torque = np.asarray(self.torque_grid, dtype=float)
        fuel = np.asarray(self.fuel_rate_grid, dtype=float)
        if speed.ndim != 1 or len(speed) < 2:
            raise ValueError("need at least two speed grid points")
        if torque.ndim != 1 or len(torque) < 2:
            raise ValueError("need at least two torque grid points")
        if np.any(np.diff(speed) <= 0) or np.any(np.diff(torque) <= 0):
            raise ValueError("grids must be strictly increasing")
        if fuel.shape != (len(torque), len(speed)):
            raise ValueError("fuel grid shape must be (torque, speed)")
        if np.any(fuel < 0):
            raise ValueError("fuel rates cannot be negative")
        if len(self.max_torque_curve) != len(speed):
            raise ValueError("torque curve must match the speed grid")

    # --- interpolation --------------------------------------------------------

    def interpolate(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Bilinear interpolation of the fuel-rate grid, clamped at edges."""
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        ti = np.clip(np.searchsorted(self.torque_grid, torque) - 1,
                     0, len(self.torque_grid) - 2)
        si = np.clip(np.searchsorted(self.speed_grid, speed) - 1,
                     0, len(self.speed_grid) - 2)
        t0, t1 = self.torque_grid[ti], self.torque_grid[ti + 1]
        s0, s1 = self.speed_grid[si], self.speed_grid[si + 1]
        wt = np.clip((torque - t0) / (t1 - t0), 0.0, 1.0)
        ws = np.clip((speed - s0) / (s1 - s0), 0.0, 1.0)
        f = self.fuel_rate_grid
        return ((1 - wt) * (1 - ws) * f[ti, si]
                + (1 - wt) * ws * f[ti, si + 1]
                + wt * (1 - ws) * f[ti + 1, si]
                + wt * ws * f[ti + 1, si + 1])

    def max_torque_at(self, speed: ArrayLike) -> ArrayLike:
        """WOT torque at a speed (linear interpolation, zero outside grid)."""
        speed = np.asarray(speed, dtype=float)
        torque = np.interp(speed, self.speed_grid, self.max_torque_curve)
        inside = (speed >= self.speed_grid[0]) & (speed <= self.speed_grid[-1])
        return np.where(inside, torque, 0.0)

    # --- construction -----------------------------------------------------------

    @classmethod
    def from_engine(cls, engine: Engine, speed_points: int = 24,
                    torque_points: int = 20) -> "EngineMap":
        """Tabulate a parametric :class:`Engine` onto a regular grid."""
        p = engine.params
        speed_grid = np.linspace(p.min_speed, p.max_speed, speed_points)
        torque_grid = np.linspace(0.0, p.max_torque, torque_points)
        fuel = np.zeros((torque_points, speed_points))
        for i, torque in enumerate(torque_grid):
            fuel[i] = np.asarray(engine.fuel_rate(
                np.minimum(torque, engine.max_torque(speed_grid)),
                speed_grid))
        return cls(
            speed_grid=speed_grid, torque_grid=torque_grid,
            fuel_rate_grid=fuel,
            max_torque_curve=np.asarray(engine.max_torque(speed_grid)),
            fuel_energy_density=p.fuel_energy_density,
            idle_fuel_rate=p.idle_fuel_rate)

    # --- persistence ---------------------------------------------------------------

    def to_csv(self, path: Union[str, Path]) -> None:
        """Write the map as CSV: header row of speeds, then one row per
        torque (first column the torque), finally a WOT-curve row."""
        path = Path(path)
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["# fuel_energy_density", self.fuel_energy_density])
            writer.writerow(["torque\\speed"]
                            + [f"{s:.6f}" for s in self.speed_grid])
            for torque, row in zip(self.torque_grid, self.fuel_rate_grid):
                writer.writerow([f"{torque:.6f}"]
                                + [f"{x:.8f}" for x in row])
            writer.writerow(["max_torque"]
                            + [f"{t:.6f}" for t in self.max_torque_curve])

    @classmethod
    def from_csv(cls, path: Union[str, Path]) -> "EngineMap":
        """Load a map written by :meth:`to_csv`."""
        path = Path(path)
        with open(path, newline="") as f:
            rows = [r for r in csv.reader(f) if r]
        if len(rows) < 4 or rows[0][0] != "# fuel_energy_density":
            raise ValueError(f"{path} is not an EngineMap CSV")
        density = float(rows[0][1])
        speed_grid = np.asarray([float(x) for x in rows[1][1:]])
        body = rows[2:-1]
        torque_grid = np.asarray([float(r[0]) for r in body])
        fuel = np.asarray([[float(x) for x in r[1:]] for r in body])
        if rows[-1][0] != "max_torque":
            raise ValueError(f"{path} is missing the max_torque row")
        curve = np.asarray([float(x) for x in rows[-1][1:]])
        return cls(speed_grid=speed_grid, torque_grid=torque_grid,
                   fuel_rate_grid=fuel, max_torque_curve=curve,
                   fuel_energy_density=density)


class TabulatedEngine:
    """Engine model backed by an :class:`EngineMap`.

    Implements the same interface as :class:`repro.vehicle.engine.Engine`
    (``max_torque``, ``efficiency``, ``fuel_rate``, ``is_feasible``,
    ``best_operating_torque`` and a ``params``-like speed band) so it can be
    substituted into :class:`repro.powertrain.solver.PowertrainSolver`.
    """

    def __init__(self, engine_map: EngineMap):
        self._map = engine_map

    @property
    def map(self) -> EngineMap:
        """The backing grid."""
        return self._map

    @property
    def fuel_energy_density(self) -> float:
        """Lower heating value of the fuel, J/g."""
        return self._map.fuel_energy_density

    @property
    def min_speed(self) -> float:
        """Lowest gridded crankshaft speed, rad/s."""
        return float(self._map.speed_grid[0])

    @property
    def max_speed(self) -> float:
        """Highest gridded crankshaft speed, rad/s."""
        return float(self._map.speed_grid[-1])

    def max_torque(self, speed: ArrayLike) -> ArrayLike:
        """WOT torque limit at a speed, N*m."""
        return self._map.max_torque_at(speed)

    def is_feasible(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """True where (T, omega) is inside the gridded envelope."""
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        off = (np.abs(torque) < 1e-12) & (np.abs(speed) < 1e-12)
        in_band = (speed >= self.min_speed) & (speed <= self.max_speed)
        ok = (torque >= 0.0) & (torque <= self.max_torque(speed)) & in_band
        return ok | off

    def fuel_rate(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Interpolated fuel mass-flow, g/s; zero when the engine is off."""
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        running = speed > 1e-9
        rate = np.asarray(self._map.interpolate(np.maximum(torque, 0.0),
                                                speed))
        return np.where(running, rate, 0.0)

    def efficiency(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Brake thermal efficiency implied by the gridded fuel rate."""
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        rate = np.asarray(self.fuel_rate(torque, speed))
        power = np.maximum(torque, 0.0) * speed
        with np.errstate(divide="ignore", invalid="ignore"):
            eta = power / (rate * self._map.fuel_energy_density)
        return np.where(rate > 1e-12, np.minimum(eta, 0.6), 0.0)

    def best_operating_torque(self, speed: ArrayLike) -> ArrayLike:
        """Torque with the highest implied efficiency at each speed."""
        speed = np.atleast_1d(np.asarray(speed, dtype=float))
        torques = self._map.torque_grid
        best = np.zeros_like(speed)
        for i, s in enumerate(speed):
            limit = float(self.max_torque(s))
            candidates = torques[torques <= limit]
            if len(candidates) == 0:
                continue
            eta = np.asarray(self.efficiency(candidates,
                                             np.full(len(candidates), s)))
            best[i] = candidates[int(np.argmax(eta))]
        return best if best.size > 1 else float(best[0])
