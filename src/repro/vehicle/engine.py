"""Quasi-static internal-combustion engine model (paper Eq. 1-2).

The engine is described by a wide-open-throttle torque curve ``T_max(omega)``
and a brake-thermal-efficiency map ``eta(T, omega)``; the fuel mass-flow rate
follows from Eq. 1:

    mdot_f = T * omega / (eta(T, omega) * D_f)

plus an idle term at zero load.  Both surfaces are smooth parametric models
shaped like the ADVISOR steady-state maps (a concave torque curve and an
efficiency hill around a mid-speed, high-load sweet spot).  Everything is
vectorised over numpy arrays so the powertrain solver can evaluate a whole
batch of candidate actions at once.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.vehicle.params import EngineParams

ArrayLike = Union[float, np.ndarray]


class Engine:
    """Quasi-static spark-ignition engine with a parametric fuel map."""

    def __init__(self, params: EngineParams):
        self._params = params
        # Torque curve: concave parabola through (min_speed, t0), peaking at
        # peak_torque_speed with value max_torque, clipped by the power limit.
        self._curve_width = max(
            params.peak_torque_speed - params.min_speed,
            params.max_speed - params.peak_torque_speed,
        )

    @property
    def params(self) -> EngineParams:
        """The engine parameter set this model was built from."""
        return self._params

    @property
    def fuel_energy_density(self) -> float:
        """Lower heating value of the fuel, J/g."""
        return self._params.fuel_energy_density

    # --- operating envelope ---------------------------------------------------

    def max_torque(self, speed: ArrayLike) -> ArrayLike:
        """Wide-open-throttle torque limit ``T_max(omega)`` in N*m (Eq. 2).

        Zero outside the admissible speed band; inside it, the smaller of the
        concave torque curve and the rated-power hyperbola.
        """
        p = self._params
        speed = np.asarray(speed, dtype=float)
        rel = (speed - p.peak_torque_speed) / self._curve_width
        curve = p.max_torque * (1.0 - 0.35 * rel ** 2)
        power_limit = np.where(speed > 0, p.max_power / np.maximum(speed, 1e-9),
                               np.inf)
        torque = np.minimum(curve, power_limit)
        in_band = (speed >= p.min_speed) & (speed <= p.max_speed)
        return np.where(in_band, np.maximum(torque, 0.0), 0.0)

    def is_feasible(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """True where (T, omega) satisfies the Eq. 2 constraints.

        An ICE cannot be back-driven in this model, so negative torque is
        infeasible; the engine-off point (0, 0) is always feasible.
        """
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        off = (np.abs(torque) < 1e-12) & (np.abs(speed) < 1e-12)
        in_band = (speed >= self._params.min_speed) & (speed <= self._params.max_speed)
        ok = (torque >= 0.0) & (torque <= self.max_torque(speed)) & in_band
        return ok | off

    # --- efficiency and fuel --------------------------------------------------

    def efficiency(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Brake thermal efficiency ``eta_ICE(T, omega)`` (Eq. 1), dimensionless.

        A smooth hill: peak ``peak_efficiency`` at (``optimal_speed``,
        ``optimal_torque_fraction * T_max``), degraded quadratically in
        normalised speed and torque distance, floored at
        ``efficiency_floor``.  Defined for positive torque inside the speed
        band; elsewhere the value is the floor (the fuel model never uses it
        there).
        """
        p = self._params
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        t_max = np.maximum(self.max_torque(speed), 1e-9)
        torque_frac = np.clip(torque / t_max, 0.0, 1.5)
        speed_span = p.max_speed - p.min_speed
        ds = (speed - p.optimal_speed) / speed_span
        dt = torque_frac - p.optimal_torque_fraction
        eta = p.peak_efficiency * (
            1.0 - p.speed_falloff * ds ** 2 - p.torque_falloff * dt ** 2)
        return np.clip(eta, p.efficiency_floor, p.peak_efficiency)

    def fuel_rate(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Fuel mass-flow rate ``mdot_f`` in g/s at an operating point (Eq. 1).

        Zero when the engine is off (zero speed).  At positive speed the rate
        is the brake power divided by efficiency and fuel energy density, plus
        the idle (friction/pumping) term which dominates at light load.
        """
        p = self._params
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        running = speed > 1e-9
        power = np.maximum(torque, 0.0) * speed
        eta = self.efficiency(torque, speed)
        load_fuel = power / (eta * p.fuel_energy_density)
        idle_fuel = p.idle_fuel_rate * (speed / p.max_speed + 0.5)
        return np.where(running, load_fuel + idle_fuel, 0.0)

    def best_operating_torque(self, speed: ArrayLike) -> ArrayLike:
        """Torque that maximises efficiency at a given speed, N*m.

        Used by the rule-based baseline, which tries to hold the engine near
        its efficiency sweet spot and load-level with the EM.
        """
        p = self._params
        t_max = self.max_torque(speed)
        return np.clip(p.optimal_torque_fraction * t_max, 0.0, t_max)
