"""Drivetrain mechanics: gearbox plus EM reduction gear (paper Eq. 8-10).

The parallel-HEV drivetrain couples the engine and the electric machine to
the wheels through a selectable gear ratio ``R(k)`` (which here includes the
final drive) and couples the EM to the crankshaft through a fixed reduction
gear ``rho_reg``:

    omega_wh  = omega_ICE / R(k) = omega_EM / (R(k) * rho_reg)
    T_wh      = R(k) * (T_ICE + rho_reg * T_EM * eta_reg^alpha) * eta_gb^beta

with the efficiency exponents ``alpha`` and ``beta`` flipping sign with the
power-flow direction (Eq. 9-10).  All methods broadcast over numpy arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.vehicle.params import TransmissionParams

ArrayLike = Union[float, np.ndarray]


class Transmission:
    """Multi-speed gearbox with an EM reduction gear, per Eq. 8-10."""

    def __init__(self, params: TransmissionParams):
        self._params = params
        self._ratios = np.asarray(params.gear_ratios, dtype=float)

    @property
    def params(self) -> TransmissionParams:
        """The transmission parameter set this model was built from."""
        return self._params

    @property
    def num_gears(self) -> int:
        """Number of selectable gears."""
        return self._params.num_gears

    def ratio(self, gear: ArrayLike) -> ArrayLike:
        """Overall ratio ``R(k)`` for 0-based gear index ``gear``."""
        gear = np.asarray(gear, dtype=int)
        if np.any((gear < 0) | (gear >= self.num_gears)):
            raise IndexError("gear index out of range")
        return self._ratios[gear]

    # --- speed relations (Eq. 8, first line) -----------------------------------

    def engine_speed(self, wheel_speed: ArrayLike, gear: ArrayLike) -> ArrayLike:
        """Crankshaft speed ``omega_ICE = omega_wh * R(k)``, rad/s."""
        return np.asarray(wheel_speed, dtype=float) * self.ratio(gear)

    def motor_speed(self, wheel_speed: ArrayLike, gear: ArrayLike) -> ArrayLike:
        """EM rotor speed ``omega_EM = omega_wh * R(k) * rho_reg``, rad/s."""
        return self.engine_speed(wheel_speed, gear) * self._params.reduction_ratio

    # --- torque relations (Eq. 8, second line, with Eq. 9-10) --------------------

    def motor_torque_at_shaft(self, motor_torque: ArrayLike) -> ArrayLike:
        """EM torque referred to the crankshaft: ``rho_reg * T_EM * eta_reg^alpha``.

        ``alpha = +1`` when motoring (torque flows EM -> shaft, losing the
        reduction-gear loss), ``-1`` when generating (the shaft must supply
        the loss).
        """
        p = self._params
        t = np.asarray(motor_torque, dtype=float)
        eta = np.where(t >= 0.0, p.reduction_efficiency, 1.0 / p.reduction_efficiency)
        return p.reduction_ratio * t * eta

    def wheel_torque(self, engine_torque: ArrayLike, motor_torque: ArrayLike,
                     gear: ArrayLike) -> ArrayLike:
        """Wheel torque produced by the ICE/EM pair in gear ``gear`` (Eq. 8)."""
        p = self._params
        shaft = np.asarray(engine_torque, dtype=float) + self.motor_torque_at_shaft(
            motor_torque)
        eta = np.where(shaft >= 0.0, p.gearbox_efficiency, 1.0 / p.gearbox_efficiency)
        return self.ratio(gear) * shaft * eta

    def required_shaft_torque(self, wheel_torque: ArrayLike,
                              gear: ArrayLike) -> ArrayLike:
        """Invert Eq. 8: combined crankshaft torque needed for a wheel torque.

        Returns ``T_ICE + rho_reg * T_EM * eta_reg^alpha``.  When the wheel
        torque is positive the gearbox loss inflates the requirement; when
        negative (braking power flowing back) the loss shrinks the magnitude
        reaching the shaft.
        """
        p = self._params
        t_wh = np.asarray(wheel_torque, dtype=float)
        ratio = self.ratio(gear)
        return np.where(
            t_wh >= 0.0,
            t_wh / (ratio * p.gearbox_efficiency),
            t_wh * p.gearbox_efficiency / ratio,
        )

    def motor_torque_from_shaft(self, shaft_torque: ArrayLike) -> ArrayLike:
        """Invert :meth:`motor_torque_at_shaft`: EM torque for a shaft contribution."""
        p = self._params
        s = np.asarray(shaft_torque, dtype=float)
        eta = np.where(s >= 0.0, p.reduction_efficiency, 1.0 / p.reduction_efficiency)
        return s / (p.reduction_ratio * eta)

    # --- gear selection helpers ---------------------------------------------------

    def feasible_gears(self, wheel_speed: float, engine_min_speed: float,
                       engine_max_speed: float, motor_max_speed: float,
                       engine_needed: bool = True) -> np.ndarray:
        """0-based indices of gears whose speed mapping respects component limits.

        A gear is feasible when the EM stays below its maximum speed and,
        if ``engine_needed``, the crankshaft speed lands inside the engine's
        admissible band.  At standstill no gear couples the engine, so the
        result is empty when ``engine_needed`` and all gears otherwise.
        """
        eng = self._ratios * wheel_speed
        mot = eng * self._params.reduction_ratio
        ok = mot <= motor_max_speed
        if engine_needed:
            ok &= (eng >= engine_min_speed) & (eng <= engine_max_speed)
        return np.nonzero(ok)[0]
