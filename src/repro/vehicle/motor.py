"""Electric machine model (paper Eq. 3-4).

The machine works in two quadrants: motoring (positive torque, drawing
``P_batt - p_aux`` from the DC bus) and generating (negative torque, pushing
power back into the bus).  Efficiency is a smooth map with a mid-speed,
mid-torque sweet spot, applied multiplicatively when motoring and
divisively when generating exactly as Eq. 3 prescribes:

    motoring:    T * omega = eta * P_electrical
    generating:  P_electrical = eta * T * omega      (P, T*omega both < 0)

All methods broadcast over numpy arrays.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.vehicle.params import MotorParams

ArrayLike = Union[float, np.ndarray]


class Motor:
    """Permanent-magnet machine with a constant-torque/constant-power envelope."""

    def __init__(self, params: MotorParams):
        self._params = params

    @property
    def params(self) -> MotorParams:
        """The motor parameter set this model was built from."""
        return self._params

    # --- operating envelope ---------------------------------------------------

    def max_torque(self, speed: ArrayLike) -> ArrayLike:
        """Motoring torque limit ``T_max(omega)`` in N*m (Eq. 4).

        Constant ``max_torque`` below base speed, then the rated-power
        hyperbola; zero beyond ``max_speed``.
        """
        p = self._params
        speed = np.asarray(speed, dtype=float)
        hyperbola = p.max_power / np.maximum(speed, 1e-9)
        torque = np.where(speed <= p.base_speed, p.max_torque,
                          np.minimum(p.max_torque, hyperbola))
        return np.where((speed >= 0) & (speed <= p.max_speed), torque, 0.0)

    def min_torque(self, speed: ArrayLike) -> ArrayLike:
        """Generating torque limit ``T_min(omega)`` in N*m (Eq. 4, negative).

        Symmetric to the motoring envelope.
        """
        return -self.max_torque(speed)

    def is_feasible(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """True where (T, omega) lies inside the Eq. 4 envelope."""
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        upper = self.max_torque(speed)
        in_speed = (speed >= 0.0) & (speed <= self._params.max_speed)
        return in_speed & (torque <= upper + 1e-9) & (torque >= -upper - 1e-9)

    # --- efficiency and power -------------------------------------------------

    def _efficiency_given_limit(self, torque: ArrayLike, speed: ArrayLike,
                                t_lim: ArrayLike) -> ArrayLike:
        """Efficiency with the local torque limit already computed.

        Split out of :meth:`efficiency` because the fixed-point power
        inversion evaluates the map several times at a constant speed, and
        the torque-limit curve is the expensive part.
        """
        p = self._params
        torque = np.abs(np.asarray(torque, dtype=float))
        torque_frac = np.minimum(torque / t_lim, 1.5)
        ds = np.asarray(speed, dtype=float) / p.max_speed \
            - p.optimal_speed_fraction
        dt = torque_frac - p.optimal_torque_fraction
        eta = p.peak_efficiency * (1.0 - 0.5 * ds ** 2 - 0.45 * dt ** 2)
        return np.minimum(np.maximum(eta, p.efficiency_floor),
                          p.peak_efficiency)

    def efficiency(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """Map efficiency ``eta_EM(T, omega)``, dimensionless, both quadrants.

        The map is symmetric in the sign of torque (typical of PM machines)
        with a sweet spot at ``optimal_speed_fraction * max_speed`` and
        ``optimal_torque_fraction`` of the local torque limit.  At standstill
        or zero torque the efficiency is pinned to the floor; the power model
        never divides by it there.
        """
        t_lim = np.maximum(self.max_torque(speed), 1e-9)
        return self._efficiency_given_limit(torque, speed, t_lim)

    def electrical_power(self, torque: ArrayLike, speed: ArrayLike) -> ArrayLike:
        """DC-bus power drawn by the machine, W (Eq. 3 rearranged).

        Positive when motoring (power flows battery -> wheels), negative when
        generating.  The mechanical power is divided by efficiency when
        motoring and multiplied by it when generating.
        """
        torque = np.asarray(torque, dtype=float)
        speed = np.asarray(speed, dtype=float)
        mech = torque * speed
        eta = np.asarray(self.efficiency(torque, speed))
        return np.where(mech >= 0.0, mech / eta, mech * eta)

    def torque_from_electrical_power(self, power: ArrayLike,
                                     speed: ArrayLike) -> ArrayLike:
        """Invert Eq. 3: shaft torque produced when drawing ``power`` from the bus.

        Because the efficiency map depends on the (unknown) torque, the
        inversion runs a short fixed-point iteration, which converges fast
        since efficiency varies slowly with torque.  At (near-)zero speed the
        machine can transmit no power and the result is zero torque.
        """
        power = np.asarray(power, dtype=float)
        speed = np.asarray(speed, dtype=float)
        safe_speed = np.maximum(speed, 1e-6)
        t_lim = np.maximum(self.max_torque(speed), 1e-9)
        motoring = power >= 0.0
        # Fixed-point iteration from the peak-efficiency guess; efficiency
        # varies slowly with torque, so a few sweeps converge to well below
        # the solver's torque tolerance.
        eta = np.full(np.broadcast(power, speed).shape,
                      self._params.peak_efficiency)
        torque = np.zeros_like(eta)
        for _ in range(5):
            torque = np.where(motoring, power * eta / safe_speed,
                              power / (eta * safe_speed))
            eta = self._efficiency_given_limit(torque, speed, t_lim)
        return np.where(speed > 1e-6, torque, 0.0)
