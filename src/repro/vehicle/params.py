"""Parameter sets for every HEV component.

The paper's Table 1 ("HEV key parameters") is published only as an image, so
the concrete numbers here follow the ADVISOR ``PRIUS_JPN``-class parallel-HEV
defaults that the paper's simulation is based on: a ~1.5 t compact car with a
43 kW spark-ignition engine, a 30 kW permanent-magnet machine, and a 6.5 Ah /
276 V NiMH pack operated in a 40%-80% state-of-charge window (the window the
paper states explicitly in Section 4.3.1).

Every component model in :mod:`repro.vehicle` is constructed from one of the
frozen dataclasses below, and :func:`default_vehicle` assembles the complete
set.  Keeping parameters in plain dataclasses (instead of burying constants in
the models) is what lets the benchmarks sweep them for the ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.units import GASOLINE_ENERGY_DENSITY


@dataclass(frozen=True)
class BodyParams:
    """Parameters of the vehicle body used by the longitudinal dynamics (Eq. 5)."""

    mass: float = 1500.0
    """Curb mass plus payload, kg."""

    drag_coefficient: float = 0.30
    """Aerodynamic drag coefficient ``C_D`` (dimensionless)."""

    frontal_area: float = 2.0
    """Frontal area ``A_F``, m^2."""

    rolling_resistance: float = 0.009
    """Rolling friction coefficient ``C_R`` (dimensionless)."""

    wheel_radius: float = 0.287
    """Dynamic wheel radius ``r_wh``, m."""

    def __post_init__(self) -> None:
        if self.mass <= 0:
            raise ValueError("vehicle mass must be positive")
        if self.wheel_radius <= 0:
            raise ValueError("wheel radius must be positive")
        if not 0 <= self.rolling_resistance < 1:
            raise ValueError("rolling resistance coefficient out of range")
        if self.drag_coefficient < 0 or self.frontal_area <= 0:
            raise ValueError("aerodynamic parameters out of range")


@dataclass(frozen=True)
class EngineParams:
    """Quasi-static spark-ignition engine parameters (Eq. 1-2).

    The torque limit and efficiency map are parametric surfaces rather than
    lookup tables: a concave maximum-torque curve peaking at
    ``peak_torque_speed`` and an efficiency hill centred on
    (``optimal_speed``, ``optimal_torque_fraction * T_max``).  This mirrors
    the shape of the ADVISOR steady-state fuel maps while remaining fully
    self-contained.
    """

    max_power: float = 43_000.0
    """Rated mechanical power, W."""

    max_torque: float = 102.0
    """Peak torque of the wide-open-throttle curve, N*m."""

    min_speed: float = 104.7
    """Minimum (idle) crankshaft speed ``omega_min``, rad/s (~1000 rpm)."""

    max_speed: float = 471.2
    """Maximum crankshaft speed ``omega_max``, rad/s (~4500 rpm)."""

    peak_torque_speed: float = 230.0
    """Speed at which the torque curve peaks, rad/s (~2200 rpm)."""

    peak_efficiency: float = 0.36
    """Best brake thermal efficiency on the map (dimensionless)."""

    optimal_speed: float = 240.0
    """Crankshaft speed of the efficiency sweet spot, rad/s."""

    optimal_torque_fraction: float = 0.75
    """Sweet-spot torque as a fraction of ``T_max(optimal_speed)``."""

    efficiency_floor: float = 0.08
    """Lowest efficiency anywhere on the admissible map (dimensionless)."""

    speed_falloff: float = 0.55
    """Relative efficiency lost at the speed extremes (shape parameter)."""

    torque_falloff: float = 0.80
    """Relative efficiency lost at the torque extremes (shape parameter)."""

    idle_fuel_rate: float = 0.12
    """Fuel burned just to keep the engine spinning unloaded, g/s."""

    fuel_energy_density: float = GASOLINE_ENERGY_DENSITY
    """Lower heating value ``D_f`` of the fuel, J/g."""

    def __post_init__(self) -> None:
        if not 0 < self.min_speed < self.max_speed:
            raise ValueError("engine speed limits out of order")
        if not self.min_speed <= self.peak_torque_speed <= self.max_speed:
            raise ValueError("peak-torque speed outside the operating range")
        if not 0 < self.peak_efficiency < 1:
            raise ValueError("peak efficiency must be in (0, 1)")
        if not 0 < self.efficiency_floor <= self.peak_efficiency:
            raise ValueError("efficiency floor must be in (0, peak]")
        if self.max_power <= 0 or self.max_torque <= 0:
            raise ValueError("engine ratings must be positive")
        if self.idle_fuel_rate < 0:
            raise ValueError("idle fuel rate cannot be negative")


@dataclass(frozen=True)
class MotorParams:
    """Permanent-magnet electric machine parameters (Eq. 3-4).

    Below ``base_speed`` the machine is torque-limited at ``max_torque``;
    above it, power-limited at ``max_power`` (the usual constant-torque /
    constant-power envelope).  The same envelope bounds generating torque.
    """

    max_power: float = 30_000.0
    """Rated electrical-side power, W."""

    max_torque: float = 120.0
    """Peak motoring torque below base speed, N*m."""

    max_speed: float = 1000.0
    """Maximum rotor speed ``omega_max``, rad/s (must exceed the reduction
    ratio times the engine's maximum speed, since the EM is permanently
    geared to the crankshaft)."""

    base_speed: float = 250.0
    """Corner speed of the constant-torque/constant-power envelope, rad/s."""

    peak_efficiency: float = 0.92
    """Best map efficiency (dimensionless), applies in both quadrants."""

    efficiency_floor: float = 0.60
    """Lowest efficiency anywhere on the admissible map (dimensionless)."""

    optimal_speed_fraction: float = 0.40
    """Location of the efficiency sweet spot as a fraction of ``max_speed``."""

    optimal_torque_fraction: float = 0.55
    """Sweet-spot torque as a fraction of the local torque limit."""

    def __post_init__(self) -> None:
        if not 0 < self.base_speed < self.max_speed:
            raise ValueError("motor base speed must lie inside (0, max_speed)")
        if not 0 < self.peak_efficiency < 1:
            raise ValueError("peak efficiency must be in (0, 1)")
        if not 0 < self.efficiency_floor <= self.peak_efficiency:
            raise ValueError("efficiency floor must be in (0, peak]")
        if self.max_power <= 0 or self.max_torque <= 0:
            raise ValueError("motor ratings must be positive")


@dataclass(frozen=True)
class BatteryParams:
    """Rint-model NiMH traction battery parameters.

    The open-circuit voltage is affine in state of charge between
    ``voltage_at_empty`` and ``voltage_at_full`` (a good fit for NiMH inside
    the narrow 40%-80% operating window), and charge/discharge internal
    resistances differ as they do in the ADVISOR ESS data files.
    """

    capacity: float = 6.5 * 3600.0
    """Nominal capacity, Coulombs (6.5 Ah)."""

    voltage_at_empty: float = 249.0
    """Open-circuit voltage at 0% SoC, V."""

    voltage_at_full: float = 294.0
    """Open-circuit voltage at 100% SoC, V."""

    discharge_resistance: float = 0.60
    """Internal resistance while discharging, Ohm (pack level)."""

    charge_resistance: float = 0.72
    """Internal resistance while charging, Ohm (pack level)."""

    max_current: float = 80.0
    """Magnitude bound ``I_max`` on charge/discharge current, A."""

    soc_min: float = 0.40
    """Lower bound of the charge-sustaining SoC window (fraction)."""

    soc_max: float = 0.80
    """Upper bound of the charge-sustaining SoC window (fraction)."""

    coulombic_efficiency: float = 0.98
    """Fraction of charging Coulombs actually stored."""

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("battery capacity must be positive")
        if not 0 <= self.soc_min < self.soc_max <= 1:
            raise ValueError("SoC window must satisfy 0 <= min < max <= 1")
        if self.voltage_at_full <= self.voltage_at_empty:
            raise ValueError("OCV must increase with SoC")
        if self.discharge_resistance <= 0 or self.charge_resistance <= 0:
            raise ValueError("internal resistances must be positive")
        if self.max_current <= 0:
            raise ValueError("current limit must be positive")
        if not 0 < self.coulombic_efficiency <= 1:
            raise ValueError("coulombic efficiency must be in (0, 1]")


@dataclass(frozen=True)
class TransmissionParams:
    """Gearbox and reduction-gear parameters (Eq. 8-10).

    ``gear_ratios`` already include the final-drive ratio, i.e. ``R(k)`` maps
    wheel speed directly to crankshaft speed as in Eq. 8.  ``reduction_ratio``
    is the paper's ``rho_reg`` coupling the EM to the crankshaft.
    """

    gear_ratios: Tuple[float, ...] = (13.45, 7.57, 5.01, 3.77, 3.01)
    """``R(k)`` for k = 1..5, including the final drive (wheel -> engine)."""

    reduction_ratio: float = 1.80
    """EM reduction-gear ratio ``rho_reg`` (engine shaft -> EM shaft)."""

    gearbox_efficiency: float = 0.95
    """Gearbox efficiency ``eta_gb`` per Eq. 8 (dimensionless)."""

    reduction_efficiency: float = 0.97
    """Reduction-gear efficiency ``eta_reg`` per Eq. 8 (dimensionless)."""

    def __post_init__(self) -> None:
        if len(self.gear_ratios) < 2:
            raise ValueError("need at least two gear ratios")
        if any(r <= 0 for r in self.gear_ratios):
            raise ValueError("gear ratios must be positive")
        if list(self.gear_ratios) != sorted(self.gear_ratios, reverse=True):
            raise ValueError("gear ratios must be strictly decreasing")
        if self.reduction_ratio <= 0:
            raise ValueError("reduction ratio must be positive")
        for eta in (self.gearbox_efficiency, self.reduction_efficiency):
            if not 0 < eta <= 1:
                raise ValueError("gear efficiencies must be in (0, 1]")

    @property
    def num_gears(self) -> int:
        """Number of selectable gears."""
        return len(self.gear_ratios)


@dataclass(frozen=True)
class AuxiliaryParams:
    """Auxiliary-system (HVAC + lighting + electronics) parameters.

    The utility function is the quasi-concave shape of Section 2.1.5: maximal
    at ``preferred_power`` (600 W in the paper's experiments) and falling off
    quadratically on both sides.
    """

    preferred_power: float = 600.0
    """Most desirable total auxiliary power draw, W (the paper uses 600 W)."""

    max_power: float = 2000.0
    """Hard cap on auxiliary power draw, W."""

    min_power: float = 100.0
    """Floor demanded by safety-critical loads (lights, ECU), W."""

    utility_width: float = 600.0
    """Power deviation at which utility has dropped by 1.0, W."""

    utility_peak: float = 0.0
    """Utility value at the preferred operating power (dimensionless).

    Zero by default so the utility is a pure deviation penalty and the
    joint reward ``(-mdot_f + w f_aux) dT`` stays negative, matching the
    sign of the paper's Table 2 cumulative rewards.  The offset does not
    affect any control decision (it is constant across actions)."""

    def __post_init__(self) -> None:
        if not 0 <= self.min_power <= self.preferred_power <= self.max_power:
            raise ValueError("auxiliary power levels out of order")
        if self.utility_width <= 0:
            raise ValueError("utility width must be positive")


@dataclass(frozen=True)
class VehicleParams:
    """The complete parameter set of the simulated parallel HEV."""

    body: BodyParams = field(default_factory=BodyParams)
    engine: EngineParams = field(default_factory=EngineParams)
    motor: MotorParams = field(default_factory=MotorParams)
    battery: BatteryParams = field(default_factory=BatteryParams)
    transmission: TransmissionParams = field(default_factory=TransmissionParams)
    auxiliary: AuxiliaryParams = field(default_factory=AuxiliaryParams)


def default_vehicle() -> VehicleParams:
    """Return the default Prius-class parallel HEV parameter set.

    This is the vehicle every test, example, and benchmark uses unless it
    deliberately overrides a component (the ablation benches do).
    """
    return VehicleParams()
