"""Vehicle substrate: quasi-static component models of a parallel HEV.

The subpackage implements every component model the paper's Section 2 relies
on: longitudinal vehicle dynamics, the quasi-static internal-combustion
engine, the electric machine, the Rint battery pack with Coulomb counting,
the multi-speed gearbox plus reduction gear, and the auxiliary-system load
and utility models.
"""

from repro.vehicle.params import (
    AuxiliaryParams,
    BatteryParams,
    BodyParams,
    EngineParams,
    MotorParams,
    TransmissionParams,
    VehicleParams,
    default_vehicle,
)
from repro.vehicle.dynamics import VehicleDynamics, RoadLoad
from repro.vehicle.engine import Engine
from repro.vehicle.motor import Motor
from repro.vehicle.battery import Battery, BatteryState
from repro.vehicle.transmission import Transmission
from repro.vehicle.auxiliary import AuxiliarySystem, AuxiliaryLoad, UtilityFunction

__all__ = [
    "AuxiliaryParams",
    "BatteryParams",
    "BodyParams",
    "EngineParams",
    "MotorParams",
    "TransmissionParams",
    "VehicleParams",
    "default_vehicle",
    "VehicleDynamics",
    "RoadLoad",
    "Engine",
    "Motor",
    "Battery",
    "BatteryState",
    "Transmission",
    "AuxiliarySystem",
    "AuxiliaryLoad",
    "UtilityFunction",
]
