"""Longitudinal vehicle dynamics (paper Eq. 5-7).

Given the driver-imposed speed, acceleration, and road grade, the backward-
looking simulation computes the tractive force at the contact patch, the
wheel torque/speed, and the propulsion power demand ``p_dem``.  All functions
accept scalars or numpy arrays and broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.units import AIR_DENSITY, GRAVITY
from repro.vehicle.params import BodyParams

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class RoadLoad:
    """Breakdown of the tractive-force components at one operating point."""

    inertial: ArrayLike
    """``m * a`` term, N."""

    grade: ArrayLike
    """``F_g = m g sin(theta)`` term, N."""

    rolling: ArrayLike
    """``F_R = m g cos(theta) C_R`` term, N (zero at standstill)."""

    aerodynamic: ArrayLike
    """``F_AD = 0.5 rho C_D A_F v^2`` term, N."""

    @property
    def total(self) -> ArrayLike:
        """Total tractive force ``F_TR``, N (Eq. 5)."""
        return self.inertial + self.grade + self.rolling + self.aerodynamic


class VehicleDynamics:
    """Backward-looking longitudinal dynamics of a rigid four-wheel vehicle."""

    def __init__(self, params: BodyParams):
        self._params = params

    @property
    def params(self) -> BodyParams:
        """The body parameter set this model was built from."""
        return self._params

    def road_load(self, speed: ArrayLike, acceleration: ArrayLike,
                  grade: ArrayLike = 0.0) -> RoadLoad:
        """Compute the tractive-force breakdown of Eq. 5.

        ``speed`` is in m/s, ``acceleration`` in m/s^2, and ``grade`` is the
        road slope angle theta in radians.  Rolling resistance vanishes at
        standstill (no relative motion of the contact patch).
        """
        p = self._params
        speed = np.asarray(speed, dtype=float)
        inertial = p.mass * np.asarray(acceleration, dtype=float)
        grade_force = p.mass * GRAVITY * np.sin(grade)
        moving = speed > 1e-9
        rolling = np.where(
            moving, p.mass * GRAVITY * np.cos(grade) * p.rolling_resistance, 0.0)
        aero = 0.5 * AIR_DENSITY * p.drag_coefficient * p.frontal_area * speed ** 2
        return RoadLoad(inertial=inertial, grade=grade_force,
                        rolling=rolling, aerodynamic=aero)

    def tractive_force(self, speed: ArrayLike, acceleration: ArrayLike,
                       grade: ArrayLike = 0.0) -> ArrayLike:
        """Total tractive force ``F_TR`` in N (Eq. 5)."""
        return self.road_load(speed, acceleration, grade).total

    def wheel_speed(self, speed: ArrayLike) -> ArrayLike:
        """Wheel angular speed ``omega_wh = v / r_wh`` in rad/s (Eq. 6)."""
        return np.asarray(speed, dtype=float) / self._params.wheel_radius

    def wheel_torque(self, speed: ArrayLike, acceleration: ArrayLike,
                     grade: ArrayLike = 0.0) -> ArrayLike:
        """Wheel torque ``T_wh = F_TR * r_wh`` in N*m (Eq. 6)."""
        return self.tractive_force(speed, acceleration, grade) * self._params.wheel_radius

    def power_demand(self, speed: ArrayLike, acceleration: ArrayLike,
                     grade: ArrayLike = 0.0) -> ArrayLike:
        """Propulsion power demand ``p_dem = F_TR * v`` in W (Eq. 7).

        Negative values indicate braking power that regenerative braking may
        recover (up to the EM and battery limits).
        """
        speed = np.asarray(speed, dtype=float)
        return self.tractive_force(speed, acceleration, grade) * speed

    def coastdown_deceleration(self, speed: ArrayLike,
                               grade: ArrayLike = 0.0) -> ArrayLike:
        """Deceleration when coasting with zero tractive force, m/s^2.

        Solves Eq. 5 for ``a`` with ``F_TR = 0``; useful for sanity checks and
        for synthesising physically plausible drive cycles.
        """
        load = self.road_load(speed, 0.0, grade)
        resistive = load.grade + load.rolling + load.aerodynamic
        return -resistive / self._params.mass
