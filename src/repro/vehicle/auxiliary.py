"""Auxiliary systems: loads and the quasi-concave utility function (Sec. 2.1.5).

The auxiliary system (HVAC, lighting, GPS, other electronics) draws power
``p_aux`` from the DC bus.  Its desirability is a uni-modal *utility
function* ``f_aux(p_aux)``: maximal at the preferred draw (600 W in the
paper's experiments) and falling off on both sides, because for an HVAC too
little power means discomfort and too much means over-conditioning.  The
joint controller trades this utility against fuel through the reward
``(-mdot_f + w * f_aux(p_aux)) * dT``.

Besides the composite system the module models individual loads so the
examples can assemble realistic auxiliary profiles (a headlight bank that is
either on or off, an HVAC whose draw scales with thermal demand, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, InfeasibleActionError
from repro.vehicle.params import AuxiliaryParams

ArrayLike = Union[float, np.ndarray]


class UtilityFunction:
    """Quasi-concave utility of auxiliary operating power.

    ``f(p) = peak - ((p - p*) / width)^2`` — a downward parabola centred on
    the preferred power ``p*``.  The shape satisfies every property the paper
    requires: uni-modal, maximal at ``p*``, decreasing on both sides, and
    cheap enough that the reduced-action-space inner optimisation can
    maximise it in closed form.
    """

    def __init__(self, params: AuxiliaryParams):
        self._params = params

    @property
    def params(self) -> AuxiliaryParams:
        """The auxiliary parameter set this utility was built from."""
        return self._params

    def __call__(self, power: ArrayLike) -> ArrayLike:
        """Utility value of operating the auxiliaries at ``power`` watts."""
        p = self._params
        power = np.asarray(power, dtype=float)
        return p.utility_peak - ((power - p.preferred_power) / p.utility_width) ** 2

    def argmax(self, power_cap: float) -> float:
        """Power in [min_power, min(max_power, power_cap)] with maximal utility.

        Because the utility is concave the answer is the preferred power
        clipped into the admissible interval.  Raises if the cap is below the
        safety-critical floor.
        """
        p = self._params
        hi = min(p.max_power, power_cap)
        if hi < p.min_power:
            raise InfeasibleActionError(
                "power cap below the safety-critical auxiliary floor")
        return float(np.clip(p.preferred_power, p.min_power, hi))

    def marginal(self, power: ArrayLike) -> ArrayLike:
        """Derivative df/dp, utility per watt — used by the ECMS baseline."""
        p = self._params
        power = np.asarray(power, dtype=float)
        return -2.0 * (power - p.preferred_power) / p.utility_width ** 2


@dataclass(frozen=True)
class AuxiliaryLoad:
    """One physical auxiliary load contributing to the composite demand."""

    name: str
    """Human-readable label (e.g. ``"headlights"``)."""

    nominal_power: float
    """Draw when fully on, W."""

    sheddable: bool = True
    """Whether the controller may reduce this load below nominal."""

    def __post_init__(self) -> None:
        if self.nominal_power < 0:
            raise ConfigurationError("load power cannot be negative")


def default_loads() -> Sequence[AuxiliaryLoad]:
    """A representative mid-size-car auxiliary load set (sums to ~1.5 kW)."""
    return (
        AuxiliaryLoad("hvac", 900.0, sheddable=True),
        AuxiliaryLoad("headlights", 120.0, sheddable=False),
        AuxiliaryLoad("infotainment", 60.0, sheddable=True),
        AuxiliaryLoad("ecu_and_sensors", 80.0, sheddable=False),
        AuxiliaryLoad("seat_heating", 200.0, sheddable=True),
        AuxiliaryLoad("defroster", 140.0, sheddable=True),
    )


class AuxiliarySystem:
    """Composite auxiliary system: load set, limits, and utility.

    The controller treats ``p_aux`` as one continuous control variable; the
    load set documents where the floor (non-sheddable loads) and ceiling
    (every load at nominal plus headroom) come from, and lets examples build
    scenario-specific systems.
    """

    def __init__(self, params: AuxiliaryParams,
                 loads: Sequence[AuxiliaryLoad] = ()):
        self._params = params
        self._loads = tuple(loads) if loads else tuple(default_loads())
        self._utility = UtilityFunction(params)
        floor = sum(l.nominal_power for l in self._loads if not l.sheddable)
        if floor > params.max_power:
            raise ConfigurationError("non-sheddable loads exceed the auxiliary power cap")

    @property
    def params(self) -> AuxiliaryParams:
        """The auxiliary parameter set."""
        return self._params

    @property
    def loads(self) -> Sequence[AuxiliaryLoad]:
        """The physical loads composing this system."""
        return self._loads

    @property
    def utility(self) -> UtilityFunction:
        """The utility function the controller maximises."""
        return self._utility

    @property
    def min_power(self) -> float:
        """Smallest admissible draw, W: the configured floor or the
        non-sheddable load sum, whichever is larger."""
        non_sheddable = sum(l.nominal_power for l in self._loads if not l.sheddable)
        return max(self._params.min_power, non_sheddable)

    @property
    def max_power(self) -> float:
        """Largest admissible draw, W."""
        return self._params.max_power

    def clamp(self, power: ArrayLike) -> ArrayLike:
        """Clip a requested draw into the admissible [min_power, max_power]."""
        return np.clip(np.asarray(power, dtype=float), self.min_power, self.max_power)

    def power_levels(self, count: int) -> np.ndarray:
        """``count`` evenly spaced admissible power levels (for the full
        action space, which needs a discretised ``P_aux`` set)."""
        if count < 1:
            raise ConfigurationError("need at least one level")
        if count == 1:
            return np.asarray([self._utility.argmax(self.max_power)])
        return np.linspace(self.min_power, self.max_power, count)
