"""Rint-model traction battery with Coulomb counting.

The pack is modelled as an SoC-dependent open-circuit voltage source behind
an internal resistance that differs between charge and discharge (the
standard "Rint" model used by ADVISOR and by the paper's Eq. 3 power terms).
The stored charge ``q`` evolves by Coulomb counting, the same method the
paper says the RL agent must use to observe its charge-level state, because
the terminal voltage sags with current and is not a usable SoC indicator.

Sign convention (matches the paper): current ``i > 0`` discharges the pack,
``i < 0`` charges it.  Terminal power is positive when the pack supplies the
bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import ConfigurationError
from repro.vehicle.params import BatteryParams

ArrayLike = Union[float, np.ndarray]


@dataclass
class BatteryState:
    """Mutable charge state tracked by Coulomb counting."""

    charge: float
    """Charge stored in the pack, Coulombs."""

    def copy(self) -> "BatteryState":
        """Return an independent copy of this state."""
        return BatteryState(charge=self.charge)


class Battery:
    """Rint battery pack model with a charge-sustaining SoC window."""

    def __init__(self, params: BatteryParams):
        self._params = params

    @property
    def params(self) -> BatteryParams:
        """The battery parameter set this model was built from."""
        return self._params

    # --- state helpers ---------------------------------------------------------

    def initial_state(self, soc: float = 0.6) -> BatteryState:
        """Create a battery state at the given state of charge (fraction)."""
        if not 0.0 <= soc <= 1.0:
            raise ConfigurationError("initial SoC must be a fraction in [0, 1]")
        return BatteryState(charge=soc * self._params.capacity)

    def soc(self, state: BatteryState) -> float:
        """State of charge of ``state`` as a fraction of nominal capacity."""
        return state.charge / self._params.capacity

    @property
    def charge_min(self) -> float:
        """Lower bound ``q_min`` of the operating window, Coulombs."""
        return self._params.soc_min * self._params.capacity

    @property
    def charge_max(self) -> float:
        """Upper bound ``q_max`` of the operating window, Coulombs."""
        return self._params.soc_max * self._params.capacity

    # --- electrical model -------------------------------------------------------

    def open_circuit_voltage(self, soc: ArrayLike) -> ArrayLike:
        """Open-circuit voltage at a state of charge (fraction), V."""
        p = self._params
        soc = np.clip(np.asarray(soc, dtype=float), 0.0, 1.0)
        return p.voltage_at_empty + (p.voltage_at_full - p.voltage_at_empty) * soc

    def internal_resistance(self, current: ArrayLike) -> ArrayLike:
        """Internal resistance for the given current direction, Ohm."""
        p = self._params
        current = np.asarray(current, dtype=float)
        return np.where(current >= 0.0, p.discharge_resistance, p.charge_resistance)

    def terminal_power(self, current: ArrayLike, soc: ArrayLike) -> ArrayLike:
        """Power ``P_batt`` delivered to the DC bus at current ``i``, W.

        ``P_batt = V_oc(soc) * i - i^2 * R``.  Positive while discharging;
        during charging (``i < 0``) the value is negative and its magnitude is
        the bus power absorbed *plus* the resistive loss.
        """
        current = np.asarray(current, dtype=float)
        voc = self.open_circuit_voltage(soc)
        r = self.internal_resistance(current)
        return voc * current - r * current ** 2

    def current_for_power(self, power: ArrayLike, soc: ArrayLike) -> ArrayLike:
        """Invert :meth:`terminal_power`: current that delivers bus power ``power``.

        Solves ``V_oc i - R i^2 = P`` for the small root (the physical branch)
        with the appropriate directional resistance.  Discharge powers beyond
        the pack's maximum deliverable power (``V_oc^2 / 4R``) are clamped to
        the maximum-power current.  Returns current in A, sign per the pack
        convention.
        """
        power = np.asarray(power, dtype=float)
        voc = np.asarray(self.open_circuit_voltage(soc), dtype=float)
        p = self._params
        # Discharge branch (P >= 0, R = Rd): i = (Voc - sqrt(Voc^2 - 4 R P)) / 2R
        disc = voc ** 2 - 4.0 * p.discharge_resistance * np.maximum(power, 0.0)
        disc_current = np.where(
            disc >= 0.0,
            (voc - np.sqrt(np.maximum(disc, 0.0))) / (2.0 * p.discharge_resistance),
            voc / (2.0 * p.discharge_resistance),
        )
        # Charge branch (P < 0, R = Rc): same quadratic, discriminant always > 0.
        chg = voc ** 2 - 4.0 * p.charge_resistance * np.minimum(power, 0.0)
        chg_current = (voc - np.sqrt(chg)) / (2.0 * p.charge_resistance)
        return np.where(power >= 0.0, disc_current, chg_current)

    def max_discharge_power(self, soc: ArrayLike) -> ArrayLike:
        """Largest bus power the pack can source at this SoC, W.

        The lesser of the resistive-limit power ``V_oc^2 / 4R`` and the power
        at the current limit ``I_max``.
        """
        voc = np.asarray(self.open_circuit_voltage(soc), dtype=float)
        p = self._params
        resistive = voc ** 2 / (4.0 * p.discharge_resistance)
        at_imax = voc * p.max_current - p.discharge_resistance * p.max_current ** 2
        return np.minimum(resistive, at_imax)

    def max_charge_power(self, soc: ArrayLike) -> ArrayLike:
        """Largest bus power magnitude the pack can sink at this SoC, W (positive)."""
        voc = np.asarray(self.open_circuit_voltage(soc), dtype=float)
        p = self._params
        i = p.max_current
        return voc * i + p.charge_resistance * i ** 2

    # --- Coulomb counting --------------------------------------------------------

    def step(self, state: BatteryState, current: float, dt: float) -> BatteryState:
        """Advance the charge state by ``dt`` seconds at current ``current``.

        Discharging removes ``i * dt`` Coulombs; charging stores
        ``coulombic_efficiency * |i| * dt``.  The charge is clipped to the
        physical [0, capacity] range (the controller is responsible for
        keeping it inside the 40-80% operating window; clipping only guards
        against numerical overshoot).
        """
        if dt <= 0:
            raise ConfigurationError("time step must be positive")
        if current >= 0.0:
            delta = -current * dt
        else:
            delta = -current * dt * self._params.coulombic_efficiency
        charge = min(max(state.charge + delta, 0.0), self._params.capacity)
        return BatteryState(charge=charge)

    def clamp_current(self, current: ArrayLike) -> ArrayLike:
        """Clip a requested current into the pack's [-I_max, I_max] range."""
        p = self._params
        return np.clip(np.asarray(current, dtype=float), -p.max_current, p.max_current)

    def is_current_feasible(self, current: ArrayLike) -> ArrayLike:
        """True where the current magnitude respects the ``I_max`` bound."""
        current = np.asarray(current, dtype=float)
        return np.abs(current) <= self._params.max_current + 1e-9

    def window_violation(self, state: BatteryState) -> float:
        """Distance (Coulombs) outside the charge-sustaining window, 0 if inside."""
        if state.charge < self.charge_min:
            return self.charge_min - state.charge
        if state.charge > self.charge_max:
            return state.charge - self.charge_max
        return 0.0
