"""Time scheduling of faults: activation, severity ramps, clearing.

A :class:`ScheduledFault` turns a static fault model into a time-varying
severity profile; a :class:`FaultSchedule` is an ordered collection of
them, queried by the harness once per simulation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import FaultScenarioError
from repro.faults.models import FaultModel, PlantFault


@dataclass(frozen=True)
class ScheduledFault:
    """A fault model with an activation window and a severity ramp."""

    fault: FaultModel
    """The fault being scheduled."""

    start: float = 0.0
    """Activation time, s from the start of the episode."""

    end: Optional[float] = None
    """Clearing time, s (``None``: the fault persists to the end)."""

    ramp: float = 0.0
    """Seconds over which severity rises linearly from 0 to 1 after
    ``start``; 0 makes the fault strike at full severity instantly."""

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultScenarioError("fault start time cannot be negative")
        if self.ramp < 0:
            raise FaultScenarioError("severity ramp cannot be negative")
        if self.end is not None and self.end <= self.start:
            raise FaultScenarioError(
                f"fault end ({self.end}) must come after start ({self.start})")

    def severity(self, t: float) -> float:
        """Severity in [0, 1] at episode time ``t`` (s)."""
        if t < self.start:
            return 0.0
        if self.end is not None and t >= self.end:
            return 0.0
        if self.ramp <= 0.0:
            return 1.0
        return min(1.0, (t - self.start) / self.ramp)

    def to_dict(self) -> dict:
        """JSON-serialisable form (fault parameters inlined)."""
        doc = self.fault.to_dict()
        doc.update({"start": self.start, "end": self.end, "ramp": self.ramp})
        return doc


class FaultSchedule:
    """An ordered set of scheduled faults queried by episode time."""

    def __init__(self, entries: Sequence[ScheduledFault] = ()):
        for entry in entries:
            if not isinstance(entry, ScheduledFault):
                raise FaultScenarioError(
                    "a FaultSchedule holds ScheduledFault entries; got "
                    f"{type(entry).__name__} (wrap the fault model)")
        self._entries: Tuple[ScheduledFault, ...] = tuple(entries)

    @property
    def entries(self) -> Tuple[ScheduledFault, ...]:
        """The scheduled faults, in application order."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ScheduledFault]:
        return iter(self._entries)

    def severities(self, t: float) -> List[Tuple[FaultModel, float]]:
        """``(fault, severity)`` for every entry at episode time ``t``."""
        return [(e.fault, e.severity(t)) for e in self._entries]

    def plant_signature(self, t: float) -> Tuple[float, ...]:
        """Severities of the plant faults only, in order.

        The harness rebuilds the solver only when this tuple changes, so
        pure signal faults never trigger a (comparatively expensive)
        parameter rebuild.
        """
        return tuple(e.severity(t) for e in self._entries
                     if isinstance(e.fault, PlantFault))

    def active(self, t: float) -> bool:
        """True when any fault has nonzero severity at time ``t``."""
        return any(e.severity(t) > 0.0 for e in self._entries)
