"""Fault injection: degraded-mode simulation for robustness studies.

The subsystem composes three layers, none of which touches the physics
code in :mod:`repro.vehicle` or :mod:`repro.powertrain`:

* **Fault models** (:mod:`repro.faults.models`) — *plant* faults are pure
  functions that degrade a :class:`repro.vehicle.params.VehicleParams`
  (battery fade, motor thermal derating, engine power loss); *signal*
  faults distort what the controller observes (sensor noise/bias/dropout)
  or add an unsheddable auxiliary load spike.
* **Schedules** (:mod:`repro.faults.schedule`) — a
  :class:`FaultSchedule` activates, ramps, and clears faults at
  prescribed times, so a fault can strike mid-cycle.
* **Harness** (:mod:`repro.faults.harness`) — a :class:`FaultHarness`
  binds a schedule to a live :class:`~repro.powertrain.solver.PowertrainSolver`
  and mutates it in place as severities change, so the controller and the
  simulator both experience the degraded vehicle through the interfaces
  they already use.

Scenarios (named fault schedules) round-trip through JSON
(:mod:`repro.faults.scenarios`); a handful of built-ins cover the
standard degradation studies.  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.models import (
    AuxLoadSpike,
    BatteryFade,
    EnginePowerLoss,
    FaultModel,
    MotorDerating,
    PlantFault,
    SensorFault,
    SignalFault,
)
from repro.faults.schedule import FaultSchedule, ScheduledFault
from repro.faults.harness import FaultHarness
from repro.faults.scenarios import (
    Scenario,
    builtin_scenarios,
    get_scenario,
    load_scenario,
    save_scenario,
)

__all__ = [
    "FaultModel",
    "PlantFault",
    "SignalFault",
    "BatteryFade",
    "MotorDerating",
    "EnginePowerLoss",
    "SensorFault",
    "AuxLoadSpike",
    "ScheduledFault",
    "FaultSchedule",
    "FaultHarness",
    "Scenario",
    "builtin_scenarios",
    "get_scenario",
    "load_scenario",
    "save_scenario",
]
