"""Named fault scenarios with a JSON round trip.

A *scenario* is a named, documented :class:`~repro.faults.schedule.FaultSchedule`.
The JSON format is deliberately flat — one object per scheduled fault,
holding the fault's own parameters plus its ``start``/``end``/``ramp``
schedule::

    {
      "name": "limp_home",
      "description": "combined degradation study",
      "faults": [
        {"kind": "battery_fade", "capacity_loss": 0.25,
         "resistance_growth": 0.5, "start": 60.0, "end": null, "ramp": 90.0},
        {"kind": "sensor", "target": "soc", "noise_std": 0.02,
         "dropout": 0.1, "start": 0.0, "end": null, "ramp": 0.0}
      ]
    }

Anything malformed raises :class:`repro.errors.FaultScenarioError` with a
message naming the offending entry.  The built-in scenarios cover the
standard degradation studies and double as format documentation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Union

from repro.errors import ConfigurationError, FaultScenarioError
from repro.faults.models import (
    AuxLoadSpike,
    BatteryFade,
    EnginePowerLoss,
    MotorDerating,
    SensorFault,
)
from repro.faults.schedule import FaultSchedule, ScheduledFault

_MODEL_KINDS = {cls.kind: cls for cls in (
    BatteryFade, MotorDerating, EnginePowerLoss, SensorFault, AuxLoadSpike)}

_SCHEDULE_KEYS = ("start", "end", "ramp")


@dataclass(frozen=True)
class Scenario:
    """A named fault schedule plus its documentation string."""

    name: str
    """Scenario identifier (also the CLI handle)."""

    description: str
    """One-line description of what the scenario models."""

    schedule: FaultSchedule
    """The faults, with their timing."""

    def to_dict(self) -> dict:
        """JSON-serialisable form (inverse of :func:`scenario_from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "faults": [entry.to_dict() for entry in self.schedule],
        }


def _fault_from_dict(doc: dict, index: int) -> ScheduledFault:
    if not isinstance(doc, dict):
        raise FaultScenarioError(
            f"fault #{index} must be an object; got {type(doc).__name__}")
    doc = dict(doc)
    kind = doc.pop("kind", None)
    cls = _MODEL_KINDS.get(kind)
    if cls is None:
        raise FaultScenarioError(
            f"fault #{index} has unknown kind {kind!r}; "
            f"expected one of {sorted(_MODEL_KINDS)}")
    timing = {key: doc.pop(key) for key in _SCHEDULE_KEYS if key in doc}
    try:
        fault = cls(**doc)
    except TypeError as exc:
        raise FaultScenarioError(
            f"fault #{index} ({kind}): bad parameters: {exc}") from exc
    except ConfigurationError as exc:
        raise FaultScenarioError(f"fault #{index} ({kind}): {exc}") from exc
    try:
        return ScheduledFault(fault, **timing)
    except TypeError as exc:
        raise FaultScenarioError(
            f"fault #{index} ({kind}): bad schedule: {exc}") from exc


def scenario_from_dict(doc: dict) -> Scenario:
    """Build a :class:`Scenario` from its dictionary form."""
    if not isinstance(doc, dict):
        raise FaultScenarioError(
            f"a scenario must be a JSON object; got {type(doc).__name__}")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise FaultScenarioError("a scenario needs a non-empty 'name'")
    faults = doc.get("faults")
    if not isinstance(faults, list) or not faults:
        raise FaultScenarioError(
            f"scenario {name!r} needs a non-empty 'faults' list")
    entries = [_fault_from_dict(entry, i) for i, entry in enumerate(faults)]
    return Scenario(name=name, description=str(doc.get("description", "")),
                    schedule=FaultSchedule(entries))


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario from a JSON file.

    Raises :class:`FaultScenarioError` on malformed content; a missing
    file surfaces as :class:`FileNotFoundError`.
    """
    path = Path(path)
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            raise FaultScenarioError(
                f"{path} is not valid JSON: {exc}") from exc
    return scenario_from_dict(doc)


def save_scenario(scenario: Scenario, path: Union[str, Path]) -> None:
    """Write a scenario to a JSON file (the :func:`load_scenario` format)."""
    with open(path, "w") as f:
        json.dump(scenario.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")


def builtin_scenarios() -> Dict[str, Scenario]:
    """The built-in degradation studies, keyed by name.

    Timings assume episodes of a few hundred seconds or longer (every
    standard cycle qualifies); each scenario remains meaningful — just
    milder — on shorter synthetic cycles.
    """
    scenarios = [
        Scenario(
            "battery_fade",
            "aged pack: capacity fade and resistance growth ramping in",
            FaultSchedule([ScheduledFault(
                BatteryFade(capacity_loss=0.25, resistance_growth=0.6),
                start=60.0, ramp=120.0)])),
        Scenario(
            "motor_derate",
            "EM thermal foldback striking mid-drive",
            FaultSchedule([ScheduledFault(
                MotorDerating(power_derate=0.5, torque_derate=0.4),
                start=120.0, ramp=30.0)])),
        Scenario(
            "engine_limp",
            "sudden ICE power loss (limp-home map)",
            FaultSchedule([ScheduledFault(
                EnginePowerLoss(power_loss=0.4), start=90.0)])),
        Scenario(
            "noisy_sensors",
            "noisy, biased speed sensing and a flaky SoC gauge",
            FaultSchedule([
                ScheduledFault(SensorFault(target="soc", noise_std=0.02,
                                           dropout=0.15), start=30.0),
                ScheduledFault(SensorFault(target="speed", noise_std=0.8,
                                           bias=-0.5), start=30.0),
            ])),
        Scenario(
            "aux_spike",
            "intermittent unsheddable auxiliary load (stuck PTC heater)",
            FaultSchedule([
                ScheduledFault(AuxLoadSpike(extra_power=900.0),
                               start=45.0, end=150.0),
                ScheduledFault(AuxLoadSpike(extra_power=900.0),
                               start=240.0, end=330.0),
            ])),
        Scenario(
            "limp_home",
            "combined degradation: aged pack, derated EM, parasitic load, "
            "flaky SoC gauge",
            FaultSchedule([
                ScheduledFault(BatteryFade(capacity_loss=0.2,
                                           resistance_growth=0.4),
                               start=0.0, ramp=60.0),
                ScheduledFault(MotorDerating(power_derate=0.35,
                                             torque_derate=0.3),
                               start=90.0, ramp=30.0),
                ScheduledFault(AuxLoadSpike(extra_power=600.0), start=30.0),
                ScheduledFault(SensorFault(target="soc", noise_std=0.015,
                                           dropout=0.1), start=0.0),
            ])),
    ]
    return {s.name: s for s in scenarios}


def get_scenario(name_or_path: Union[str, Path]) -> Scenario:
    """Resolve a built-in scenario name or a scenario JSON path."""
    builtins = builtin_scenarios()
    key = str(name_or_path)
    if key in builtins:
        return builtins[key]
    if key and Path(key).is_file():
        return load_scenario(key)
    raise FaultScenarioError(
        f"unknown fault scenario {key!r}: not a built-in "
        f"({', '.join(sorted(builtins))}) and no such file")
