"""Binding a fault schedule to a live powertrain solver.

The controller's solver *is* the plant in this codebase: baselines rank
candidate actions through it and the RL agent resolves its action batch
through it, while the simulator Coulomb-counts the executed current on the
same object.  The harness therefore injects plant faults by mutating the
shared solver **in place** (rebuilding its component models from degraded
parameters), so both the controller and the simulator experience the
degraded vehicle through the interfaces they already use — no physics
code changes, no special-cased controllers.

Signal faults never touch the solver; the simulator routes observations
through :meth:`FaultHarness.observe_speed` / :meth:`~FaultHarness.observe_soc`
and adds :meth:`~FaultHarness.extra_aux_power` to the executed bus load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FaultScenarioError
from repro.faults.models import (
    AuxLoadSpike,
    PlantFault,
    SensorFault,
)
from repro.faults.schedule import FaultSchedule
from repro.powertrain.solver import PowertrainSolver
from repro.vehicle.engine import Engine


class FaultHarness:
    """Applies a :class:`FaultSchedule` to a solver as time advances."""

    def __init__(self, solver: PowertrainSolver, schedule: FaultSchedule,
                 seed: int = 0):
        self._solver = solver
        self._schedule = schedule
        self._seed = int(seed)
        self._base_params = solver.params
        # A non-parametric engine substitute (e.g. a tabulated fuel map)
        # cannot be degraded through EngineParams; keep it across rebuilds
        # and refuse schedules that try to fault it.
        self._custom_engine = (solver.engine
                               if not isinstance(solver.engine, Engine)
                               else None)
        if self._custom_engine is not None and any(
                e.fault.kind == "engine_power_loss" for e in schedule):
            raise FaultScenarioError(
                "engine faults require the parametric engine model; this "
                "solver uses a substitute engine "
                f"({type(solver.engine).__name__})")
        self._rng = np.random.default_rng(self._seed)
        self._held: Dict[str, Optional[float]] = {}
        self._signature: Tuple[float, ...] = self._schedule.plant_signature(
            -1.0)
        self._signal_pairs: List[Tuple[SensorFault, float]] = []
        self._extra_aux = 0.0
        self._active = False
        self._activations = 0

    @property
    def solver(self) -> PowertrainSolver:
        """The solver this harness mutates."""
        return self._solver

    @property
    def schedule(self) -> FaultSchedule:
        """The fault schedule being applied."""
        return self._schedule

    @property
    def active(self) -> bool:
        """True while any fault currently has nonzero severity."""
        return self._active

    @property
    def activations(self) -> int:
        """Number of inactive-to-active transitions seen so far."""
        return self._activations

    # ---------------------------------------------------------- lifecycle ---

    def begin_episode(self) -> None:
        """Reset episode-scoped state (RNG, dropout holds, counters).

        Resetting the RNG from the seed makes every episode's fault
        realisation identical — required for the robustness sweeps to be
        reproducible run to run.
        """
        self._rng = np.random.default_rng(self._seed)
        self._held = {}
        self._active = False
        self._activations = 0
        self.advance(0.0)

    def advance(self, t: float) -> None:
        """Bring the plant and signal state up to episode time ``t`` (s)."""
        signature = self._schedule.plant_signature(t)
        if signature != self._signature:
            self._rebuild_plant(t)
            self._signature = signature
        self._signal_pairs = []
        self._extra_aux = 0.0
        for fault, severity in self._schedule.severities(t):
            if severity <= 0.0:
                continue
            if isinstance(fault, SensorFault):
                self._signal_pairs.append((fault, severity))
            elif isinstance(fault, AuxLoadSpike):
                self._extra_aux += fault.extra_load(severity)
        active = self._schedule.active(t)
        if active and not self._active:
            self._activations += 1
        self._active = active

    def restore(self) -> None:
        """Put the solver back to its healthy (base) parameters."""
        self._rebuild(self._base_params)
        self._signature = self._schedule.plant_signature(-1.0)
        self._signal_pairs = []
        self._extra_aux = 0.0
        self._active = False

    # ------------------------------------------------------------ signals ---

    @property
    def signals_active(self) -> bool:
        """True while a sensor fault or load spike is currently in force.

        The simulator uses this to decide whether the controller's resolved
        step can be trusted as the physical truth or must be re-resolved on
        the true plant state.
        """
        return bool(self._signal_pairs) or self._extra_aux > 0.0

    def observe_speed(self, speed: float) -> float:
        """Speed as the controller's sensor reports it, m/s (>= 0)."""
        return max(0.0, self._observe("speed", speed))

    def observe_soc(self, soc: float) -> float:
        """State of charge as the controller's gauge reports it (clipped
        to the physical [0, 1] range)."""
        return float(np.clip(self._observe("soc", soc), 0.0, 1.0))

    def _observe(self, target: str, value: float) -> float:
        observed = float(value)
        for fault, severity in self._signal_pairs:
            if fault.target != target:
                continue
            observed, held = fault.distort(observed, severity, self._rng,
                                           self._held.get(target))
            self._held[target] = held
        return observed

    def extra_aux_power(self) -> float:
        """Current unsheddable parasitic draw, W."""
        return self._extra_aux

    # -------------------------------------------------------------- plant ---

    def _rebuild_plant(self, t: float) -> None:
        params = self._base_params
        for fault, severity in self._schedule.severities(t):
            if isinstance(fault, PlantFault) and severity > 0.0:
                params = fault.apply(params, severity)
        self._rebuild(params)

    def _rebuild(self, params) -> None:
        # Re-running __init__ swaps every component model for one built
        # from the degraded parameters; everyone holding the solver sees
        # the degraded vehicle on their next attribute access.
        PowertrainSolver.__init__(self._solver, params,
                                  engine=self._custom_engine)
