"""Composable fault models.

Plant faults never touch the component physics: each one is a pure
function ``VehicleParams -> VehicleParams`` (via :func:`dataclasses.replace`)
parameterised by a severity in [0, 1], so faults compose by applying them
in sequence and the existing component models simulate the degraded
vehicle unchanged.  Signal faults distort scalar observations on their way
to the controller, or add an unsheddable load the controller never
commanded.

Severity 0 must always be the identity — the schedule relies on that to
clear a fault by ramping its severity back to zero.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.vehicle.params import VehicleParams

SENSOR_TARGETS = ("speed", "soc")
"""Observation channels a :class:`SensorFault` can corrupt."""


def _check_fraction(name: str, value: float, upper: float = 1.0) -> None:
    if not 0.0 <= value <= upper:
        raise ConfigurationError(
            f"{name} must be a fraction in [0, {upper:g}]; got {value!r}")


class FaultModel(abc.ABC):
    """Base class of every injectable fault."""

    kind: str = "fault"
    """Stable identifier used by the scenario JSON format."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description of the fault."""

    def to_dict(self) -> dict:
        """JSON-serialisable parameter dictionary (``kind`` included)."""
        doc = {"kind": self.kind}
        doc.update(dataclasses.asdict(self))
        return doc


class PlantFault(FaultModel):
    """A fault that degrades the physical vehicle parameters."""

    @abc.abstractmethod
    def apply(self, params: VehicleParams, severity: float) -> VehicleParams:
        """Return ``params`` degraded at ``severity`` in [0, 1].

        Must be the identity at severity 0 and must not mutate ``params``.
        """


class SignalFault(FaultModel):
    """A fault on the controller's inputs or the vehicle's loads, leaving
    the plant parameters untouched."""


# ---------------------------------------------------------------- plant ---

@dataclass(frozen=True)
class BatteryFade(PlantFault):
    """Battery ageing: capacity fade plus internal-resistance growth.

    At full severity the usable capacity shrinks by ``capacity_loss``
    (fraction) and both directional resistances grow by
    ``resistance_growth`` (fraction), the standard end-of-life signature
    of a traction pack.
    """

    capacity_loss: float = 0.2
    """Fractional capacity lost at severity 1 (0.2 = the usual 80% EoL)."""

    resistance_growth: float = 0.5
    """Fractional internal-resistance increase at severity 1."""

    kind = "battery_fade"

    def __post_init__(self) -> None:
        _check_fraction("capacity_loss", self.capacity_loss, upper=0.95)
        if self.resistance_growth < 0:
            raise ConfigurationError("resistance growth cannot be negative")

    def describe(self) -> str:
        """One-line summary of the fade magnitudes."""
        return (f"battery fade: -{self.capacity_loss:.0%} capacity, "
                f"+{self.resistance_growth:.0%} resistance")

    def apply(self, params: VehicleParams, severity: float) -> VehicleParams:
        """Degrade capacity and resistances at ``severity``."""
        b = params.battery
        battery = dataclasses.replace(
            b,
            capacity=b.capacity * (1.0 - severity * self.capacity_loss),
            discharge_resistance=b.discharge_resistance
            * (1.0 + severity * self.resistance_growth),
            charge_resistance=b.charge_resistance
            * (1.0 + severity * self.resistance_growth))
        return dataclasses.replace(params, battery=battery)


@dataclass(frozen=True)
class MotorDerating(PlantFault):
    """EM thermal derating: the inverter folds back power and torque.

    Models the over-temperature protection of the electric machine; at
    full severity the available peak power and torque shrink by
    ``power_derate`` / ``torque_derate``.
    """

    power_derate: float = 0.5
    """Fraction of peak EM power removed at severity 1."""

    torque_derate: float = 0.5
    """Fraction of peak EM torque removed at severity 1."""

    kind = "motor_derating"

    def __post_init__(self) -> None:
        _check_fraction("power_derate", self.power_derate, upper=0.95)
        _check_fraction("torque_derate", self.torque_derate, upper=0.95)

    def describe(self) -> str:
        """One-line summary of the foldback magnitudes."""
        return (f"EM thermal derating: -{self.power_derate:.0%} power, "
                f"-{self.torque_derate:.0%} torque")

    def apply(self, params: VehicleParams, severity: float) -> VehicleParams:
        """Fold back EM peak power and torque at ``severity``."""
        m = params.motor
        motor = dataclasses.replace(
            m,
            max_power=m.max_power * (1.0 - severity * self.power_derate),
            max_torque=m.max_torque * (1.0 - severity * self.torque_derate))
        return dataclasses.replace(params, motor=motor)


@dataclass(frozen=True)
class EnginePowerLoss(PlantFault):
    """ICE degradation: loss of wide-open-throttle power and torque
    (clogged intake, misfiring cylinder, limp-home ECU map)."""

    power_loss: float = 0.3
    """Fraction of peak engine power removed at severity 1."""

    kind = "engine_power_loss"

    def __post_init__(self) -> None:
        _check_fraction("power_loss", self.power_loss, upper=0.95)

    def describe(self) -> str:
        """One-line summary of the power-loss magnitude."""
        return f"ICE power loss: -{self.power_loss:.0%} peak power/torque"

    def apply(self, params: VehicleParams, severity: float) -> VehicleParams:
        """Scale the WOT power and torque down at ``severity``."""
        e = params.engine
        scale = 1.0 - severity * self.power_loss
        engine = dataclasses.replace(e, max_power=e.max_power * scale,
                                     max_torque=e.max_torque * scale)
        return dataclasses.replace(params, engine=engine)


# --------------------------------------------------------------- signal ---

@dataclass(frozen=True)
class SensorFault(SignalFault):
    """Corruption of one observation channel: additive Gaussian noise, a
    constant bias, and/or sample-and-hold dropouts.

    All three effects scale with the schedule's severity; a dropout holds
    the last successfully observed value (the behaviour of a stale CAN
    frame), so the controller acts on outdated state.
    """

    target: str = "soc"
    """Observation channel: one of :data:`SENSOR_TARGETS`."""

    noise_std: float = 0.0
    """Gaussian noise standard deviation at severity 1 (channel units:
    m/s for speed, SoC fraction for soc)."""

    bias: float = 0.0
    """Constant offset at severity 1 (channel units)."""

    dropout: float = 0.0
    """Per-step probability of a dropped sample at severity 1."""

    kind = "sensor"

    def __post_init__(self) -> None:
        if self.target not in SENSOR_TARGETS:
            raise ConfigurationError(
                f"unknown sensor target {self.target!r}; "
                f"expected one of {SENSOR_TARGETS}")
        if self.noise_std < 0:
            raise ConfigurationError("noise std cannot be negative")
        _check_fraction("dropout", self.dropout)

    def describe(self) -> str:
        """One-line summary of the active corruption effects."""
        parts = []
        if self.noise_std:
            parts.append(f"noise std {self.noise_std:g}")
        if self.bias:
            parts.append(f"bias {self.bias:+g}")
        if self.dropout:
            parts.append(f"dropout {self.dropout:.0%}")
        detail = ", ".join(parts) if parts else "transparent"
        return f"{self.target} sensor fault: {detail}"

    def distort(self, value: float, severity: float,
                rng: np.random.Generator,
                held: Optional[float]) -> Tuple[float, Optional[float]]:
        """Corrupt one observation; returns ``(observed, new_held_value)``.

        ``held`` is the last successfully sampled value (or None on the
        first step); it is returned verbatim during a dropout.
        """
        if severity <= 0.0:
            return float(value), float(value)
        if (self.dropout > 0.0 and held is not None
                and rng.random() < self.dropout * severity):
            return float(held), float(held)
        observed = float(value) + severity * self.bias
        if self.noise_std > 0.0:
            observed += severity * self.noise_std * rng.standard_normal()
        return observed, float(value)


@dataclass(frozen=True)
class AuxLoadSpike(SignalFault):
    """An unsheddable parasitic auxiliary load (stuck PTC heater, shorted
    harness) added on top of whatever the controller commands.

    The extra draw bypasses the auxiliary utility optimisation entirely —
    the controller cannot shed it and earns no utility for it.
    """

    extra_power: float = 800.0
    """Parasitic draw at severity 1, W."""

    kind = "aux_spike"

    def __post_init__(self) -> None:
        if self.extra_power < 0:
            raise ConfigurationError("parasitic draw cannot be negative")

    def describe(self) -> str:
        """One-line summary of the parasitic draw."""
        return f"auxiliary load spike: +{self.extra_power:.0f} W unsheddable"

    def extra_load(self, severity: float) -> float:
        """Parasitic draw at the given severity, W."""
        return self.extra_power * max(0.0, min(1.0, severity))
