"""Terminal plotting: sparklines and line charts without matplotlib.

The library is deliberately dependency-light; these helpers render SoC
trajectories, learning curves, and speed traces as Unicode block-character
plots for the CLI and the examples.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line block-character rendering of a series.

    The series is resampled to ``width`` columns and mapped onto eight
    vertical levels; a constant series renders at the middle level.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return ""
    if width < 1:
        raise ValueError("width must be positive")
    if arr.size > width:
        # Block-mean resampling keeps spikes visible better than striding.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([arr[a:b].mean() if b > a else arr[min(a, arr.size - 1)]
                          for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-12:
        return _SPARK_LEVELS[3] * len(arr)
    idx = ((arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)).round()
    return "".join(_SPARK_LEVELS[int(i)] for i in idx)


def line_chart(values: Sequence[float], width: int = 64, height: int = 10,
               title: str = "", y_format: str = "{:8.2f}") -> str:
    """Multi-line chart with a y-axis, rendered with asterisks.

    Good enough to see a learning curve's shape in a CI log.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two points to chart")
    if width < 8 or height < 3:
        raise ValueError("chart too small")
    if arr.size > width:
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.asarray([arr[a:b].mean() for a, b in
                          zip(edges[:-1], edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    rows = []
    grid = np.full((height, len(arr)), " ", dtype="<U1")
    levels = ((arr - lo) / span * (height - 1)).round().astype(int)
    for col, level in enumerate(levels):
        grid[height - 1 - level, col] = "*"
    for r in range(height):
        value = hi - (r / (height - 1)) * span
        label = y_format.format(value)
        rows.append(f"{label} |" + "".join(grid[r]))
    rows.append(" " * len(label) + " +" + "-" * len(arr))
    header = [title] if title else []
    return "\n".join(header + rows)


def soc_strip(soc_values: Sequence[float], soc_min: float = 0.40,
              soc_max: float = 0.80, width: int = 60) -> str:
    """Sparkline of an SoC trace annotated with the window bounds."""
    spark = sparkline(soc_values, width)
    arr = np.asarray(list(soc_values), dtype=float)
    return (f"SoC [{soc_min:.0%}..{soc_max:.0%}] "
            f"start={arr[0]:.2f} end={arr[-1]:.2f}  {spark}")
