"""Comparison metrics used by the experiment benches.

Everything the paper's evaluation reports is a ratio between two
controllers on the same cycle: normalised fuel (Fig. 2), cumulative reward
(Table 2), and MPG improvement (Fig. 3).  These helpers centralise the
arithmetic and its edge cases.
"""

from __future__ import annotations


def normalized_fuel(fuel: float, reference_fuel: float) -> float:
    """Fuel consumption normalised to a reference controller's (Fig. 2).

    Values below 1.0 mean less fuel than the reference.
    """
    if reference_fuel <= 0:
        raise ValueError("reference fuel must be positive")
    return fuel / reference_fuel

def improvement_percent(value: float, baseline: float) -> float:
    """Percent improvement of ``value`` over ``baseline`` for
    higher-is-better quantities (MPG): 100 * (value - baseline) / baseline."""
    if baseline == 0:
        raise ValueError("baseline must be nonzero")
    return 100.0 * (value - baseline) / abs(baseline)


def reward_gap_percent(proposed: float, baseline: float) -> float:
    """Percent reward gap for the (negative) cumulative rewards of Table 2.

    Both totals are negative; the gap is how much smaller in magnitude the
    proposed controller's cost is: 100 * (|baseline| - |proposed|) /
    |baseline|.
    """
    if baseline == 0:
        raise ValueError("baseline reward must be nonzero")
    return 100.0 * (abs(baseline) - abs(proposed)) / abs(baseline)
