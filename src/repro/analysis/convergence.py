"""Learning-curve analytics.

The paper argues about *convergence rate* (it is the reason for the
reduced action space and for TD(lambda)); these helpers quantify it from a
training run's reward-per-episode curve: smoothing, episodes-to-threshold,
and a robust converged-level estimate — the quantities the ablation
benches compare across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


def moving_average(values: Sequence[float], window: int = 5) -> np.ndarray:
    """Trailing moving average (shorter prefix windows at the start)."""
    if window < 1:
        raise ValueError("window must be >= 1")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    out = np.empty_like(arr)
    cumsum = np.cumsum(arr)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        total = cumsum[i] - (cumsum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out


def converged_level(values: Sequence[float], tail_fraction: float = 0.25
                    ) -> float:
    """Median of the last ``tail_fraction`` of the curve (robust plateau)."""
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail fraction must be in (0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("empty curve")
    tail = arr[int(np.floor(len(arr) * (1.0 - tail_fraction))):]
    return float(np.median(tail))


def episodes_to_threshold(values: Sequence[float], threshold: float,
                          window: int = 5) -> Optional[int]:
    """First episode whose smoothed reward reaches ``threshold`` (None if
    never) — the convergence-speed measure of the ablation benches."""
    smooth = moving_average(values, window)
    hits = np.nonzero(smooth >= threshold)[0]
    return int(hits[0]) if len(hits) else None


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one learning curve."""

    first: float
    """Reward of the first episode."""

    final_level: float
    """Robust plateau level (median of the tail)."""

    improvement: float
    """``final_level - first`` (positive when learning helped)."""

    episodes_to_90pct: Optional[int]
    """Episodes until the smoothed curve covers 90% of the improvement;
    None when the curve never gets there (or never improves)."""


def analyze(values: Sequence[float], window: int = 5) -> ConvergenceReport:
    """Build the :class:`ConvergenceReport` of a reward curve."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two episodes to analyse")
    first = float(arr[0])
    level = converged_level(arr)
    improvement = level - first
    target = first + 0.9 * improvement
    episodes = (episodes_to_threshold(arr, target, window)
                if improvement > 0 else None)
    return ConvergenceReport(first=first, final_level=level,
                             improvement=improvement,
                             episodes_to_90pct=episodes)
