"""Plain-text rendering of the reproduced tables and figures.

The benchmark harness prints the same rows/series the paper reports; these
helpers format them consistently (monospace tables a terminal and a CI log
render identically).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def render_table(title: str, columns: Sequence[str],
                 rows: Mapping[str, Sequence[float]],
                 precision: int = 2) -> str:
    """Render a labelled-rows table.

    ``rows`` maps the row label (e.g. cycle name) to one value per column.
    """
    label_width = max([len(title)] + [len(k) for k in rows]) + 2
    col_width = max([len(c) for c in columns] + [10]) + 2
    lines = [title]
    header = " " * label_width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows.items():
        if len(values) != len(columns):
            raise ValueError(f"row {label!r} has {len(values)} values for "
                             f"{len(columns)} columns")
        cells = "".join(f"{v:.{precision}f}".rjust(col_width) for v in values)
        lines.append(label.ljust(label_width) + cells)
    return "\n".join(lines)


def render_figure_series(title: str, series: Mapping[str, Mapping[str, float]],
                         precision: int = 3) -> str:
    """Render a grouped-bar figure as text: one line per (group, series).

    ``series`` maps series name -> {group label -> value}, mirroring how the
    paper's bar charts group cycles on the x-axis.
    """
    lines = [title]
    groups = sorted({g for values in series.values() for g in values})
    name_width = max(len(n) for n in series) + 2
    for group in groups:
        parts = []
        for name, values in series.items():
            if group in values:
                parts.append(f"{name}={values[group]:.{precision}f}")
        lines.append(f"  {group:12s} " + "  ".join(parts))
    return "\n".join(lines)
