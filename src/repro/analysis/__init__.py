"""Analysis: fuel-economy metrics and table/figure text rendering."""

from repro.analysis.metrics import (
    improvement_percent,
    normalized_fuel,
    reward_gap_percent,
)
from repro.analysis.reporting import render_figure_series, render_table
from repro.analysis.ascii_plot import line_chart, soc_strip, sparkline
from repro.analysis.convergence import analyze as analyze_convergence
from repro.analysis.export import load_result_dict, result_to_dict, save_result

__all__ = [
    "result_to_dict",
    "save_result",
    "load_result_dict",
    "sparkline",
    "line_chart",
    "soc_strip",
    "analyze_convergence",
    "improvement_percent",
    "normalized_fuel",
    "reward_gap_percent",
    "render_table",
    "render_figure_series",
]
