"""Trace analytics: energy accounting and operating-point statistics.

Turns the per-step traces of an :class:`repro.sim.results.EpisodeResult`
into the engineering quantities an HEV calibration engineer looks at:
where the propulsion energy came from, how much braking energy the
regenerative path recovered versus dissipated in friction, how the engine's
visited operating points distribute over its efficiency map, and how the
controller's mode usage splits over the drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.powertrain.modes import OperatingMode
from repro.sim.results import EpisodeResult


@dataclass(frozen=True)
class EnergyAccount:
    """Where the trip's energy came from and went, in Joules."""

    positive_wheel_work: float
    """Propulsion work demanded at the wheels (positive phases)."""

    braking_energy: float
    """Kinetic/potential energy surrendered during braking phases
    (positive number)."""

    fuel_energy: float
    """Chemical energy of the fuel burned."""

    battery_discharge_energy: float
    """Electrical energy drawn from the pack (terminal, positive phases)."""

    battery_charge_energy: float
    """Electrical energy pushed into the pack (terminal, positive number)."""

    auxiliary_energy: float
    """Energy consumed by the auxiliary systems."""

    @property
    def regen_fraction(self) -> float:
        """Share of braking energy recovered into the pack.

        Uses charge energy as the recovered proxy; bounded to [0, 1]
        because some charging comes from the engine (mode iv), making this
        an upper estimate on engine-charging-free drives.
        """
        if self.braking_energy <= 0.0:
            return 0.0
        return float(min(self.battery_charge_energy / self.braking_energy,
                         1.0))

    @property
    def tank_to_wheel_efficiency(self) -> float:
        """Propulsion work divided by fuel energy (plus net battery draw)."""
        net_battery = max(
            self.battery_discharge_energy - self.battery_charge_energy, 0.0)
        denom = self.fuel_energy + net_battery
        if denom <= 0.0:
            return 0.0
        return float(self.positive_wheel_work / denom)


def energy_account(result: EpisodeResult) -> EnergyAccount:
    """Compute the :class:`EnergyAccount` of one episode."""
    dt = result.dt
    p_dem = np.asarray(result.power_demand, dtype=float)
    batt = _battery_power(result)
    return EnergyAccount(
        positive_wheel_work=float(np.sum(np.maximum(p_dem, 0.0)) * dt),
        braking_energy=float(-np.sum(np.minimum(p_dem, 0.0)) * dt),
        fuel_energy=float(result.total_fuel * result.fuel_energy_density),
        battery_discharge_energy=float(
            np.sum(np.maximum(batt, 0.0)) * dt),
        battery_charge_energy=float(-np.sum(np.minimum(batt, 0.0)) * dt),
        auxiliary_energy=float(np.sum(result.aux_power) * dt),
    )


def _battery_power(result: EpisodeResult) -> np.ndarray:
    """Approximate per-step battery terminal power from current and SoC, W."""
    # Terminal power ~ V_nom * i; the resistive correction is second-order
    # for the pack currents a compact HEV sees, and the nominal voltage is
    # recorded on the result.
    return np.asarray(result.current, dtype=float) * result.nominal_voltage


def mode_share(result: EpisodeResult) -> Dict[str, float]:
    """Operating-mode share by name (fractions summing to 1)."""
    return {OperatingMode(mode).name: fraction
            for mode, fraction in result.mode_fractions().items()}


@dataclass(frozen=True)
class Histogram:
    """A labelled 1-D histogram."""

    edges: np.ndarray
    """Bin edges (length = counts + 1)."""

    counts: np.ndarray
    """Occupancy per bin."""

    @property
    def fractions(self) -> np.ndarray:
        """Counts normalised to fractions (zeros if empty)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / total


def gear_histogram(result: EpisodeResult, num_gears: int) -> Histogram:
    """Occupancy of each gear over the moving part of the drive."""
    moving = np.asarray(result.speeds) > 0.1
    counts, edges = np.histogram(np.asarray(result.gear)[moving],
                                 bins=np.arange(num_gears + 1) - 0.5)
    return Histogram(edges=edges, counts=counts)


def current_histogram(result: EpisodeResult, bins: int = 12,
                      max_current: float = 80.0) -> Histogram:
    """Occupancy of battery-current bins over the drive."""
    counts, edges = np.histogram(
        np.asarray(result.current),
        bins=np.linspace(-max_current, max_current, bins + 1))
    return Histogram(edges=edges, counts=counts)


def soc_statistics(result: EpisodeResult) -> Dict[str, float]:
    """SoC trajectory statistics: extremes, swing, charge throughput.

    ``throughput_fraction`` is the total |charge moved| over the trip in
    units of pack capacity — the quantity battery-aging models integrate.
    """
    soc = np.asarray(result.soc, dtype=float)
    current = np.asarray(result.current, dtype=float)
    throughput = float(np.sum(np.abs(current)) * result.dt
                       / result.battery_capacity)
    return {
        "min": float(np.min(soc)),
        "max": float(np.max(soc)),
        "mean": float(np.mean(soc)),
        "swing": float(np.max(soc) - np.min(soc)),
        "final": float(soc[-1]),
        "throughput_fraction": throughput,
    }


def driveability(result: EpisodeResult) -> Dict[str, float]:
    """Driveability statistics: how busy the supervisory control is.

    Production calibrations penalise frequent gear shifts, engine restarts,
    and mode chatter; these counts (per kilometre) let users compare
    controllers on comfort, not just economy.
    """
    km = max(result.distance / 1000.0, 1e-9)
    gear = np.asarray(result.gear)
    mode = np.asarray(result.mode)
    fuel = np.asarray(result.fuel_rate)
    moving = np.asarray(result.speeds) > 0.1
    shifts = int(np.sum((np.diff(gear) != 0) & moving[1:]))
    mode_switches = int(np.sum(np.diff(mode) != 0))
    on = fuel > 1e-9
    starts = int(np.sum((~on[:-1]) & on[1:]))
    return {
        "gear_shifts_per_km": shifts / km,
        "mode_switches_per_km": mode_switches / km,
        "engine_starts_per_km": starts / km,
    }


def engine_duty(result: EpisodeResult) -> Dict[str, float]:
    """Engine usage statistics: on-fraction and mean fuel rate while on."""
    fuel = np.asarray(result.fuel_rate, dtype=float)
    on = fuel > 1e-9
    return {
        "on_fraction": float(np.mean(on)),
        "mean_fuel_rate_on": float(np.mean(fuel[on])) if np.any(on) else 0.0,
        "starts": int(np.sum((~on[:-1]) & on[1:])),
    }
