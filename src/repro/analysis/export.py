"""Exporting episode results to JSON.

The library is terminal-first, but downstream analysis (notebooks, plotting
services, regression dashboards) wants structured data.  These helpers
serialise an :class:`EpisodeResult` — aggregates always, per-step traces
optionally — to a JSON-compatible dict and to disk, and load the dict form
back for comparison tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.analysis.traces import (
    driveability,
    energy_account,
    engine_duty,
    mode_share,
    soc_statistics,
)
from repro.sim.results import EpisodeResult

FORMAT_VERSION = 1
"""Schema version of the exported document."""


def result_to_dict(result: EpisodeResult,
                   include_traces: bool = False) -> Dict:
    """Serialise an episode result to a JSON-compatible dict.

    Aggregates, energy accounting, and driveability are always included;
    ``include_traces`` adds the full per-step arrays (large).
    """
    account = energy_account(result)
    doc = {
        "format_version": FORMAT_VERSION,
        "cycle": result.cycle_name,
        "dt_s": result.dt,
        "distance_m": result.distance,
        "steps": int(len(result.fuel_rate)),
        "initial_soc": result.initial_soc,
        "final_soc": result.final_soc,
        "fuel_g": result.total_fuel,
        "corrected_fuel_g": result.corrected_fuel(),
        "mpg": result.mpg,
        "corrected_mpg": result.corrected_mpg(),
        "paper_reward": result.total_paper_reward,
        "corrected_paper_reward": result.corrected_paper_reward(),
        "learning_reward": result.total_reward,
        "mean_aux_power_w": result.mean_aux_power,
        "fallback_steps": result.fallback_steps,
        "energy": {
            "positive_wheel_work_j": account.positive_wheel_work,
            "braking_energy_j": account.braking_energy,
            "fuel_energy_j": account.fuel_energy,
            "battery_discharge_j": account.battery_discharge_energy,
            "battery_charge_j": account.battery_charge_energy,
            "auxiliary_j": account.auxiliary_energy,
            "regen_fraction": account.regen_fraction,
            "tank_to_wheel_efficiency": account.tank_to_wheel_efficiency,
        },
        "mode_share": mode_share(result),
        "soc": soc_statistics(result),
        "engine": engine_duty(result),
        "driveability": driveability(result),
    }
    if include_traces:
        doc["traces"] = {
            "speed_ms": [float(x) for x in result.speeds],
            "power_demand_w": [float(x) for x in result.power_demand],
            "fuel_rate_gps": [float(x) for x in result.fuel_rate],
            "soc": [float(x) for x in result.soc],
            "current_a": [float(x) for x in result.current],
            "gear": [int(x) for x in result.gear],
            "aux_power_w": [float(x) for x in result.aux_power],
            "mode": [int(x) for x in result.mode],
        }
    return doc


def save_result(result: EpisodeResult, path: Union[str, Path],
                include_traces: bool = False) -> None:
    """Write :func:`result_to_dict` output as pretty-printed JSON."""
    with open(Path(path), "w") as f:
        json.dump(result_to_dict(result, include_traces), f, indent=2,
                  sort_keys=True)


def load_result_dict(path: Union[str, Path]) -> Dict:
    """Load a document written by :func:`save_result`, checking the schema."""
    with open(Path(path)) as f:
        doc = json.load(f)
    if doc.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format {doc.get('format_version')!r}")
    return doc
