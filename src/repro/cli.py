"""Command-line interface.

Eleven subcommands cover the everyday workflows:

* ``cycles``   — list the built-in drive cycles with their statistics, or
  export one to CSV.
* ``train``    — train the joint RL controller on a cycle and optionally
  save the learned policy.
* ``evaluate`` — drive a cycle under a chosen controller (optionally a
  saved policy, optionally with an injected fault scenario, optionally
  behind the runtime safety supervisor via ``--guard``) and print the
  result summary plus energy accounting.
* ``compare``  — train the RL controller and print the proposed-vs-baseline
  table for one cycle.
* ``faults``   — list the built-in fault scenarios for degraded-mode runs.
* ``sweep``    — run the controllers × fault-scenarios robustness grid
  through the supervised executor: ``--jobs`` isolated workers,
  per-task ``--timeout``, bounded ``--retries``, journaling to an
  append-only ``--manifest``, ``--resume`` to skip finished work
  after a kill, and ``--guard`` to drive every run behind the safety
  supervisor (adds intervention/mode columns).
* ``guard-report`` — drive one guarded episode and print the supervisor's
  full journal: guard events, mode transitions, and time in each mode.
* ``telemetry`` — ``telemetry report PATH`` summarises a telemetry event
  file (or a sweep manifest's task latency) written by a previous run.
* ``chaos``    — run a deterministic infrastructure-fault campaign
  against the repo's own executor/manifest/persistence/telemetry layers
  and report detection and recovery rates (see ``docs/ROBUSTNESS.md``).
  Exits 1 if any documented recovery invariant broke.
* ``serve``    — publish a policy to a versioned registry (training a
  quick one if the registry is empty) and drive a heterogeneous vehicle
  fleet against the policy server: optional ``--swap`` hot-swap,
  ``--canary`` rollout with automatic rollback, and ``--shards``
  fork-isolated scale-out (see ``docs/SERVING.md``).
* ``learn``    — run the resilient online-learning loop: the fleet
  streams experience into crash-safe journals, the central learner
  ingests them with exact-resume cursors (``--resume`` after a kill is
  bit-identical), and every ``--promote-every`` rounds the updated
  policy goes through the guarded canary/watchdog promotion path with
  measured regression recovery (see ``docs/ONLINE_LEARNING.md``).

Invoke as ``python -m repro <subcommand> ...``.  Structured library errors
(:class:`repro.errors.ReproError`) — including executor and manifest
misconfiguration — are reported as a one-line message on stderr with exit
code 2 instead of a traceback.

Result tables go to **stdout**; progress/diagnostic chatter goes through
stdlib :mod:`logging` on **stderr**, controlled by the global
``--log-level`` / ``-v`` flags (default INFO) — so piping a command into
a file captures clean results.  ``train``/``evaluate``/``guard-report``/
``sweep`` accept ``--telemetry PATH`` to stream structured events,
spans, and metrics into a JSONL file (see ``docs/OBSERVABILITY.md``);
WARNING+ log records are bridged into the same file.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro.analysis.ascii_plot import soc_strip, sparkline
from repro.analysis.traces import energy_account, mode_share
from repro.control import (
    ConventionalController,
    ECMSController,
    RuleBasedController,
    ThermostatController,
)
from repro.control.rl_controller import build_rl_controller
from repro.cycles import STANDARD_SPECS, compute_stats, save_csv, standard_cycle
from repro.errors import ConfigurationError, ReproError, SafetyHaltError
from repro.exec import Supervisor, SweepManifest
from repro.faults import FaultHarness, builtin_scenarios, get_scenario
from repro.powertrain import PowertrainSolver
from repro.rl.persistence import load_policy, save_policy
from repro.sim import Simulator, evaluate, evaluate_stationary, run_robustness, train
from repro.sim.callbacks import ProgressPrinter, train_with_callbacks
from repro.vehicle import default_vehicle

_BASELINES = {
    "rule-based": RuleBasedController,
    "ecms": ECMSController,
    "thermostat": ThermostatController,
    "conventional": ConventionalController,
}

_LOG = logging.getLogger(__name__)


def _configure_logging(args) -> None:
    """Point the ``repro`` package logger at stderr at the chosen level.

    Idempotent across repeated :func:`main` calls in one process (the
    test suite drives the CLI in-process): the handler is installed once
    and only the level is updated.  The logger does not propagate, so an
    application embedding the library keeps full control of the root.
    """
    level_name = "debug" if args.verbose else args.log_level
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name.upper()))
    logger.propagate = False
    if not any(getattr(h, "_repro_cli", False) for h in logger.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        handler._repro_cli = True
        logger.addHandler(handler)


@contextmanager
def _telemetry_session(path):
    """One command's telemetry sink (yields None when ``path`` is None).

    While open, WARNING+ records of the ``repro`` logger are bridged into
    the event file; the bridge is detached before the sink closes, so a
    late log record can never hit a closed file.
    """
    if path is None:
        yield None
        return
    from repro.telemetry import (Telemetry, attach_logging_bridge,
                                 detach_logging_bridge)
    telemetry = Telemetry(path)
    logger = logging.getLogger("repro")
    handler = attach_logging_bridge(telemetry, logger)
    try:
        yield telemetry
    finally:
        detach_logging_bridge(handler, logger)
        telemetry.close()
        _LOG.info("telemetry written to %s (run %s)", telemetry.path,
                  telemetry.run_id)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HEV joint RL control (DAC'15 reproduction)")
    parser.add_argument("--log-level", default="info",
                        choices=["debug", "info", "warning", "error"],
                        help="diagnostic verbosity on stderr "
                             "(default: info; result tables always print "
                             "on stdout)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="shorthand for --log-level debug")
    sub = parser.add_subparsers(dest="command", required=True)

    p_cycles = sub.add_parser("cycles", help="list or export drive cycles")
    p_cycles.add_argument("--export", metavar="NAME",
                          help="cycle to export as CSV")
    p_cycles.add_argument("--output", default=None,
                          help="CSV path (default <name>.csv)")

    p_train = sub.add_parser("train", help="train the RL controller")
    p_train.add_argument("--cycle", default="UDDS")
    p_train.add_argument("--episodes", type=int, default=50)
    p_train.add_argument("--repeats", type=int, default=2,
                         help="cycle repetitions per episode")
    p_train.add_argument("--variant", default="proposed",
                         choices=["proposed", "no_prediction", "baseline13"])
    p_train.add_argument("--seed", type=int, default=42)
    p_train.add_argument("--save", metavar="STEM",
                         help="save the trained policy to STEM.{npz,json}")
    p_train.add_argument("--telemetry", metavar="PATH",
                         help="stream structured events/spans/metrics to "
                              "this JSONL file (must not already exist)")

    p_eval = sub.add_parser("evaluate", help="evaluate a controller")
    p_eval.add_argument("--cycle", default="UDDS")
    p_eval.add_argument("--repeats", type=int, default=2)
    p_eval.add_argument("--controller", default="rule-based",
                        choices=sorted(_BASELINES) + ["rl"])
    p_eval.add_argument("--policy", metavar="STEM",
                        help="saved policy stem (for --controller rl)")
    p_eval.add_argument("--seed", type=int, default=42)
    p_eval.add_argument("--faults", metavar="SCENARIO",
                        help="drive in degraded mode: a built-in fault "
                             "scenario name (see 'repro faults list') or a "
                             "scenario JSON path")
    p_eval.add_argument("--guard", action="store_true",
                        help="wrap the controller in the runtime safety "
                             "supervisor (envelope guarding + graceful "
                             "degradation to the rule-based fallback)")
    p_eval.add_argument("--telemetry", metavar="PATH",
                        help="stream structured events/spans/metrics to "
                             "this JSONL file (must not already exist)")

    p_guard = sub.add_parser(
        "guard-report",
        help="drive one guarded episode and print the safety journal")
    p_guard.add_argument("--cycle", default="UDDS")
    p_guard.add_argument("--repeats", type=int, default=1)
    p_guard.add_argument("--controller", default="rl",
                         choices=sorted(_BASELINES) + ["rl"])
    p_guard.add_argument("--policy", metavar="STEM",
                         help="saved policy stem (for --controller rl)")
    p_guard.add_argument("--seed", type=int, default=42)
    p_guard.add_argument("--faults", metavar="SCENARIO",
                         help="inject a fault scenario (name or JSON path)")
    p_guard.add_argument("--telemetry", metavar="PATH",
                         help="stream structured events/spans/metrics to "
                              "this JSONL file (must not already exist)")

    p_faults = sub.add_parser("faults", help="fault-injection scenarios")
    p_faults.add_argument("action", choices=["list"],
                          help="'list' prints the built-in scenarios")

    p_cmp = sub.add_parser("compare",
                           help="train RL and compare against baselines")
    p_cmp.add_argument("--cycle", default="SC03")
    p_cmp.add_argument("--episodes", type=int, default=50)
    p_cmp.add_argument("--repeats", type=int, default=2)
    p_cmp.add_argument("--seed", type=int, default=42)

    p_sweep = sub.add_parser(
        "sweep", help="supervised controllers x scenarios robustness sweep")
    p_sweep.add_argument("--cycle", default="NYCC")
    p_sweep.add_argument("--repeats", type=int, default=1)
    p_sweep.add_argument("--controllers", default="rule-based,ecms",
                         help="comma-separated baseline names "
                              f"({', '.join(sorted(_BASELINES))})")
    p_sweep.add_argument("--scenarios", default="all",
                         help="'all' or comma-separated scenario names / "
                              "scenario JSON paths")
    p_sweep.add_argument("--seed", type=int, default=42)
    p_sweep.add_argument("--jobs", type=int, default=1,
                         help="isolated worker processes (1 = serial "
                              "in-process)")
    p_sweep.add_argument("--timeout", type=float, default=None,
                         help="per-run wall-clock limit in seconds "
                              "(hung runs are killed and quarantined)")
    p_sweep.add_argument("--retries", type=int, default=0,
                         help="retry budget per run (exponential backoff)")
    p_sweep.add_argument("--manifest", metavar="PATH",
                         help="journal completed runs to this JSONL sweep "
                              "manifest (must not already exist)")
    p_sweep.add_argument("--resume", metavar="PATH",
                         help="resume from an existing sweep manifest: "
                              "finished runs are skipped and new "
                              "completions are appended to the same file")
    p_sweep.add_argument("--guard", action="store_true",
                         help="drive every run behind the runtime safety "
                              "supervisor; rows gain intervention and "
                              "health-mode columns")
    p_sweep.add_argument("--telemetry", metavar="PATH",
                         help="stream structured events/spans/metrics to "
                              "this JSONL file (must not already exist)")

    p_tel = sub.add_parser(
        "telemetry", help="summarise telemetry event files and manifests")
    p_tel.add_argument("action", choices=["report"],
                       help="'report' aggregates one file into a summary")
    p_tel.add_argument("path",
                       help="a telemetry event file written with "
                            "--telemetry, or a sweep manifest")

    p_chaos = sub.add_parser(
        "chaos", help="deterministic infrastructure-fault campaign")
    p_chaos.add_argument("--seeds", type=int, default=20,
                         help="campaign seeds to run (fault parameters "
                              "and order vary per seed; default 20)")
    p_chaos.add_argument("--kinds", default=None,
                         help="comma-separated fault kinds (default: all; "
                              "see repro.chaos.FAULT_KINDS)")
    p_chaos.add_argument("--report", metavar="PATH",
                         help="also write the full campaign report as "
                              "JSON to this path")
    p_chaos.add_argument("--workdir", metavar="DIR",
                         help="run experiments under this directory and "
                              "keep the artifacts (default: a temporary "
                              "directory, removed afterwards)")

    p_serve = sub.add_parser(
        "serve", help="drive a vehicle fleet against the policy server")
    p_serve.add_argument("--registry", required=True, metavar="DIR",
                         help="policy-registry directory (created, and "
                              "seeded with a quickly trained policy, when "
                              "empty)")
    p_serve.add_argument("--cycle", default="NYCC",
                         help="training cycle when seeding an empty "
                              "registry (default NYCC)")
    p_serve.add_argument("--train-episodes", type=int, default=5,
                         help="training budget when seeding an empty "
                              "registry (default 5)")
    p_serve.add_argument("--vehicles", type=int, default=2048,
                         help="fleet population size (default 2048)")
    p_serve.add_argument("--steps", type=int, default=60,
                         help="simulated seconds per vehicle (default 60)")
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument("--swap", type=int, metavar="VERSION",
                         help="hot-swap to this registry version before "
                              "the fleet run (refused cleanly on any "
                              "defect; the incumbent keeps serving)")
    p_serve.add_argument("--canary", type=int, metavar="VERSION",
                         help="run this version as a canary rollout; a "
                              "regressed candidate is rolled back "
                              "automatically during the fleet run")
    p_serve.add_argument("--canary-fraction", type=float, default=0.1,
                         help="fleet fraction routed to the canary "
                              "(default 0.1)")
    p_serve.add_argument("--shards", type=int, default=1,
                         help="split the fleet across this many "
                              "fork-isolated workers (each with its own "
                              "server over the shared registry)")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="worker processes for --shards (default: "
                              "one per shard, capped by the executor)")
    p_serve.add_argument("--telemetry", metavar="PATH",
                         help="stream structured events/spans/metrics to "
                              "this JSONL file (must not already exist)")

    p_learn = sub.add_parser(
        "learn", help="run the resilient online-learning loop: fleet -> "
                      "experience journals -> learner -> guarded promotion")
    p_learn.add_argument("--registry", required=True, metavar="DIR",
                         help="policy-registry directory (created, and "
                              "seeded with a quickly trained policy, when "
                              "empty)")
    p_learn.add_argument("--workdir", required=True, metavar="DIR",
                         help="loop working directory holding the "
                              "experience journals and the learner's "
                              "crash-safe checkpoint")
    p_learn.add_argument("--rounds", type=int, default=6,
                         help="fleet/ingest/promote rounds to run "
                              "(default 6)")
    p_learn.add_argument("--steps", type=int, default=30,
                         help="simulated seconds per vehicle per round "
                              "(default 30)")
    p_learn.add_argument("--vehicles", type=int, default=512,
                         help="fleet population size (default 512)")
    p_learn.add_argument("--promote-every", type=int, default=2,
                         help="attempt a guarded promotion every this "
                              "many rounds (default 2)")
    p_learn.add_argument("--resume", action="store_true",
                         help="resume the learner from its checkpoint in "
                              "--workdir (bit-identical to never having "
                              "been killed)")
    p_learn.add_argument("--seed", type=int, default=42)
    p_learn.add_argument("--cycle", default="NYCC",
                         help="training cycle when seeding an empty "
                              "registry (default NYCC)")
    p_learn.add_argument("--train-episodes", type=int, default=5,
                         help="training budget when seeding an empty "
                              "registry (default 5)")
    p_learn.add_argument("--telemetry", metavar="PATH",
                         help="stream structured events/spans/metrics to "
                              "this JSONL file (must not already exist)")
    return parser


def _cmd_cycles(args) -> int:
    if args.export:
        cycle = standard_cycle(args.export)
        path = args.output or f"{cycle.name.lower()}.csv"
        save_csv(cycle, path)
        print(f"wrote {cycle} to {path}")
        return 0
    print(f"{'name':8s} {'dur s':>7s} {'km':>7s} {'mean km/h':>10s} "
          f"{'max km/h':>9s} {'stops':>6s}")
    for name in sorted(STANDARD_SPECS):
        stats = compute_stats(standard_cycle(name))
        print(f"{name:8s} {stats.duration:7.0f} "
              f"{stats.distance / 1000:7.2f} {stats.mean_speed_kmh:10.1f} "
              f"{stats.max_speed_kmh:9.1f} {stats.stop_count:6d}")
    return 0


def _cmd_train(args) -> int:
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(solver, variant=args.variant,
                                     seed=args.seed)
    cycle = standard_cycle(args.cycle).repeat(args.repeats)
    with _telemetry_session(args.telemetry) as telemetry:
        simulator = Simulator(solver, telemetry=telemetry)
        _LOG.info("training %s on %s for %d episodes", args.variant, cycle,
                  args.episodes)
        run = train_with_callbacks(simulator, controller, cycle,
                                   episodes=args.episodes,
                                   callbacks=[ProgressPrinter(every=10)])
    if len(run.episodes) >= 2:
        print("learning curve (reward/episode): "
              + sparkline(run.learning_curve))
    print("greedy evaluation:", run.evaluation.summary())
    if args.save:
        save_policy(controller.agent, args.save)
        _LOG.info("policy saved to %s.npz / %s.json", args.save, args.save)
    return 0


def _build_eval_controller(solver, args):
    """The ``evaluate``/``guard-report`` controller from shared flags."""
    if args.controller == "rl":
        controller = build_rl_controller(solver, seed=args.seed)
        if args.policy:
            load_policy(controller.agent, args.policy)
        return controller
    return _BASELINES[args.controller](solver)


def _print_guard_summary(report) -> None:
    """Condensed supervisor summary after a guarded evaluation."""
    in_mode = ", ".join(f"{name}={steps}"
                        for name, steps in report.time_in_mode().items()
                        if steps)
    print(f"  guard: {report.interventions} intervention(s) "
          f"({report.intervention_rate:.1%}), "
          f"{len(report.transitions)} transition(s), "
          f"final mode {report.final_mode} [{in_mode}]")


def _cmd_evaluate(args) -> int:
    solver = PowertrainSolver(default_vehicle())
    cycle = standard_cycle(args.cycle).repeat(args.repeats)
    with _telemetry_session(args.telemetry) as telemetry:
        simulator = Simulator(solver, telemetry=telemetry)
        controller = _build_eval_controller(solver, args)
        if args.guard:
            from repro.safety import SafetySupervisor
            controller = SafetySupervisor(controller, solver,
                                          telemetry=telemetry)
        harness = None
        if args.faults is not None:
            scenario = get_scenario(args.faults)
            harness = FaultHarness(solver, scenario.schedule, seed=args.seed)
            _LOG.info("injecting fault scenario '%s': %s", scenario.name,
                      scenario.description)
        result = evaluate(simulator, controller, cycle, faults=harness)
    print(result.summary())
    if result.safety is not None:
        _print_guard_summary(result.safety)
    if harness is not None:
        battery = solver.params.battery
        print(f"  degraded mode: {result.faulted_steps} faulted steps, "
              f"{harness.activations} activation(s), "
              f"{result.window_violation_steps(battery.soc_min, battery.soc_max)}"
              " SoC-window violations")
    battery = solver.params.battery
    print("  " + soc_strip(result.soc, battery.soc_min, battery.soc_max))
    account = energy_account(result)
    print(f"  wheel work    {account.positive_wheel_work / 1e6:7.2f} MJ")
    print(f"  fuel energy   {account.fuel_energy / 1e6:7.2f} MJ")
    print(f"  regen share   {account.regen_fraction:7.1%}")
    print("  mode share    " + ", ".join(
        f"{name}={frac:.0%}" for name, frac in sorted(
            mode_share(result).items())))
    return 0


def _cmd_guard_report(args) -> int:
    solver = PowertrainSolver(default_vehicle())
    cycle = standard_cycle(args.cycle).repeat(args.repeats)
    with _telemetry_session(args.telemetry) as telemetry:
        simulator = Simulator(solver, telemetry=telemetry)
        controller = _build_eval_controller(solver, args)
        from repro.safety import SafetySupervisor
        supervisor = SafetySupervisor(controller, solver,
                                      telemetry=telemetry)
        harness = None
        if args.faults is not None:
            scenario = get_scenario(args.faults)
            harness = FaultHarness(solver, scenario.schedule, seed=args.seed)
            _LOG.info("injecting fault scenario '%s': %s", scenario.name,
                      scenario.description)
        try:
            result = evaluate(simulator, controller=supervisor, cycle=cycle,
                              faults=harness)
        except SafetyHaltError as exc:
            # A halt is a legitimate guarded outcome: print the journal up
            # to the halt, then report the structured error.
            if exc.report is not None:
                print(exc.report.render())
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(result.summary())
    print(result.safety.render())
    return 0


def _cmd_compare(args) -> int:
    solver = PowertrainSolver(default_vehicle())
    simulator = Simulator(solver)
    cycle = standard_cycle(args.cycle).repeat(args.repeats)
    controller = build_rl_controller(solver, seed=args.seed)
    _LOG.info("training on %s (%d episodes)...", cycle, args.episodes)
    train(simulator, controller, cycle, episodes=args.episodes,
          evaluate_after=False)
    rows = {"rl (proposed)": evaluate_stationary(simulator, controller,
                                                 cycle)}
    for name, factory in sorted(_BASELINES.items()):
        rows[name] = evaluate_stationary(simulator, factory(solver), cycle)
    print(f"\n{'controller':14s} {'mpg':>7s} {'reward':>10s} {'final SoC':>10s}")
    for name, res in rows.items():
        print(f"{name:14s} {res.corrected_mpg():7.1f} "
              f"{res.total_paper_reward:10.2f} {res.final_soc:10.2f}")
    return 0


def _cmd_sweep(args) -> int:
    if args.manifest and args.resume:
        raise ConfigurationError(
            "--manifest and --resume are mutually exclusive; --resume "
            "appends to the manifest it resumes from")
    manifest = None
    if args.resume:
        manifest = SweepManifest(args.resume, resume=True)
    elif args.manifest:
        manifest = SweepManifest(args.manifest)

    names = [n.strip() for n in args.controllers.split(",") if n.strip()]
    if not names:
        raise ConfigurationError("need at least one controller")
    unknown = sorted(set(names) - set(_BASELINES))
    if unknown:
        raise ConfigurationError(
            f"unknown controller(s) {unknown}; "
            f"available: {sorted(_BASELINES)}")
    solver = PowertrainSolver(default_vehicle())
    controllers = {name: _BASELINES[name](solver) for name in names}

    if args.scenarios.strip() == "all":
        scenarios = builtin_scenarios()
    else:
        scenarios = {}
        for token in (t.strip() for t in args.scenarios.split(",")):
            if not token:
                continue
            scenario = get_scenario(token)
            scenarios[scenario.name] = scenario
    if not scenarios:
        raise ConfigurationError("need at least one fault scenario")

    cycle = standard_cycle(args.cycle).repeat(args.repeats)
    with _telemetry_session(args.telemetry) as telemetry:
        executor = Supervisor(jobs=args.jobs, timeout=args.timeout,
                              retries=args.retries, manifest=manifest,
                              failure_mode="quarantine",
                              telemetry=telemetry)
        simulator = Simulator(solver, telemetry=telemetry)
        mode = (f"{args.jobs} isolated worker(s)" if executor.isolated
                else "serial in-process")
        _LOG.info("sweeping %d controller(s) x %d scenario(s) on %s [%s]",
                  len(controllers), len(scenarios), cycle, mode)
        report = run_robustness(simulator, controllers, scenarios, cycle,
                                seed=args.seed, executor=executor,
                                guard=args.guard)
    print(report.render())
    if args.guard:
        try:
            print(f"\nlimp-home MPG retention (worst): "
                  f"{report.limp_home_retention():.2f}")
        except ConfigurationError:
            print("\nno run entered LIMP_HOME")
    if not report.failures:
        print(f"\ncoverage: {len(report.rows)}/{report.planned} runs, "
              "nothing quarantined")
    if not report.rows:
        raise ConfigurationError(
            "sweep produced no surviving runs "
            f"({len(report.failures)} quarantined)")
    return 0


def _cmd_telemetry(args) -> int:
    from repro.telemetry import summarize
    print(summarize(args.path))
    return 0


def _cmd_chaos(args) -> int:
    import json as json_module

    from repro.chaos import run_campaign
    kinds = None
    if args.kinds is not None:
        kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    report = run_campaign(seeds=args.seeds, kinds=kinds,
                          workdir=args.workdir, progress=_LOG.info)
    print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json_module.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        _LOG.info("campaign report written to %s", args.report)
    # A broken invariant is a finding, not a crash: full report above,
    # non-zero exit so CI and scripts notice.
    return 0 if report.clean else 1


def _cmd_serve(args) -> int:
    from repro.serve import (
        CanaryConfig,
        FleetConfig,
        FleetSimulator,
        PolicyRegistry,
        PolicyServer,
        run_fleet_sharded,
    )

    registry = PolicyRegistry(args.registry)
    if not registry.versions():
        if args.train_episodes < 1:
            raise ConfigurationError(
                f"registry {args.registry} is empty and --train-episodes "
                "is 0; publish a policy first or allow seeding")
        solver = PowertrainSolver(default_vehicle())
        controller = build_rl_controller(solver, seed=args.seed)
        cycle = standard_cycle(args.cycle)
        _LOG.info("registry %s is empty; training %d episode(s) on %s",
                  args.registry, args.train_episodes, cycle)
        train(Simulator(solver), controller, cycle,
              episodes=args.train_episodes, evaluate_after=False)
        version = registry.publish(controller.agent)
        _LOG.info("published trained policy as v%d", version)

    config = FleetConfig(vehicles=args.vehicles, steps=args.steps,
                         seed=args.seed)
    if args.shards > 1:
        aggregate = run_fleet_sharded(registry.root, config,
                                      shards=args.shards, jobs=args.jobs)
        print(f"fleet: {aggregate['vehicles']} vehicles across "
              f"{aggregate['shards']} shard(s), "
              f"{aggregate['failures']} failure(s)")
        print(f"  decisions      {aggregate['decisions']:12d} "
              f"({aggregate['decisions_per_sec']:,.0f}/s)")
        print(f"  vehicles/min   {aggregate['vehicles_per_min']:12,.0f}")
        print(f"  shed requests  {aggregate['shed_requests']:12d}")
        print(f"  limp decisions {aggregate['limp_decisions']:12d}")
        print(f"  interventions  {aggregate['interventions']:12d}")
        print(f"  mean reward    {aggregate['mean_reward']:12.4f}")
        return 0

    with _telemetry_session(args.telemetry) as telemetry:
        server = PolicyServer(registry, telemetry=telemetry)
        active = server.activate_latest()
        if server.degraded:
            print("no loadable policy in the registry; serving the "
                  "rule-based fallback action "
                  f"({server.degraded_loads} corrupt version(s) skipped)")
        else:
            skipped = (f" ({server.degraded_loads} corrupt version(s) "
                       "skipped)" if server.degraded_loads else "")
            print(f"serving v{active}{skipped}")
        if args.swap is not None:
            rep = server.swap(version=args.swap)
            status = ("activated" if rep.activated
                      else f"refused: {rep.reason}")
            print(f"hot-swap v{rep.from_version} -> v{rep.to_version}: "
                  f"{status} [{rep.elapsed_s * 1e3:.1f} ms, probe "
                  f"disagreement {rep.probe_disagreement:.1%}]")
        if args.canary is not None:
            server.begin_canary(version=args.canary,
                                canary_config=CanaryConfig(
                                    fraction=args.canary_fraction))
            print(f"canary: v{args.canary} on "
                  f"{args.canary_fraction:.0%} of the fleet")
        result = FleetSimulator(server, config).run()
        print(f"fleet: {result.vehicles} vehicles x {result.steps} steps "
              f"in {result.elapsed_s:.2f}s")
        print(f"  decisions      {result.decisions:12d} "
              f"({result.decisions_per_sec:,.0f}/s)")
        print(f"  vehicles/min   {result.vehicles_per_min:12,.0f}")
        print(f"  shed requests  {result.shed_requests:12d}")
        print(f"  limp decisions {result.limp_decisions:12d}")
        print(f"  interventions  {result.interventions:12d}")
        print(f"  mean reward    {result.mean_reward:12.4f}")
        if result.canary_verdict is not None:
            print(f"  canary verdict: {result.canary_verdict}")
            if result.rollback is not None:
                print(f"    rolled back v{result.rollback['version']} "
                      f"after {result.rollback['decisions']} decision(s) "
                      f"({result.rollback['latency_s'] * 1e3:.1f} ms): "
                      f"{result.rollback['reason']}")
        elif args.canary is not None:
            rollout = server.canary
            print(f"  canary undecided after "
                  f"{rollout.canary_decisions} canary decision(s)")
    return 0


def _cmd_learn(args) -> int:
    from repro.learn import OnlineLearningLoop
    from repro.serve import FleetConfig, PolicyRegistry

    registry = PolicyRegistry(args.registry)
    if not registry.versions():
        if args.train_episodes < 1:
            raise ConfigurationError(
                f"registry {args.registry} is empty and --train-episodes "
                "is 0; publish a policy first or allow seeding")
        solver = PowertrainSolver(default_vehicle())
        controller = build_rl_controller(solver, seed=args.seed)
        cycle = standard_cycle(args.cycle)
        _LOG.info("registry %s is empty; training %d episode(s) on %s",
                  args.registry, args.train_episodes, cycle)
        train(Simulator(solver), controller, cycle,
              episodes=args.train_episodes, evaluate_after=False)
        version = registry.publish(controller.agent)
        _LOG.info("published trained policy as v%d", version)

    config = FleetConfig(vehicles=args.vehicles, steps=args.steps,
                         seed=args.seed)
    with _telemetry_session(args.telemetry) as telemetry:
        with OnlineLearningLoop(registry, args.workdir,
                                fleet_config=config,
                                promote_every=args.promote_every,
                                resume=args.resume,
                                telemetry=telemetry) as loop:
            print(f"online loop: v{loop.server.active_version} incumbent, "
                  f"{args.vehicles} vehicles x {args.steps} steps/round"
                  + (", resumed from checkpoint" if args.resume
                     and loop.learner.ingests else ""))
            report = loop.run(args.rounds)
            for rnd in report.rounds:
                line = (f"  round {rnd.round:2d}: {rnd.decisions} "
                        f"decisions, reward {rnd.mean_reward:8.4f}, "
                        f"{rnd.records_streamed} streamed / "
                        f"{rnd.records_ingested} ingested")
                if rnd.records_shed:
                    line += f", {rnd.records_shed} shed"
                if rnd.quarantined:
                    line += f", {rnd.quarantined} quarantined"
                if rnd.watchdog_alert:
                    line += f" [watchdog: {rnd.watchdog_alert}]"
                if rnd.promotion is not None:
                    line += (f" [v{rnd.promotion.candidate_version} "
                             f"{rnd.promotion.outcome}]")
                print(line)
            print(f"  promotions {report.promotions}, rollbacks "
                  f"{report.rollbacks}, serving v{report.final_version}")
            for latency in report.recovery_latencies_s:
                print(f"  regression recovered in {latency * 1e3:.1f} ms")
    return 0


def _cmd_faults(args) -> int:
    scenarios = builtin_scenarios()
    print(f"{'name':15s} {'faults':>6s}  description")
    for name in sorted(scenarios):
        scenario = scenarios[name]
        print(f"{name:15s} {len(scenario.schedule):6d}  "
              f"{scenario.description}")
        for entry in scenario.schedule:
            window = (f"t={entry.start:g}s"
                      + (f"-{entry.end:g}s" if entry.end is not None else "+")
                      + (f", ramp {entry.ramp:g}s" if entry.ramp else ""))
            print(f"{'':23s}- {entry.fault.describe()} ({window})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Structured library errors are reported as a single clean line on
    stderr (exit code 2); genuine bugs still traceback.
    """
    args = _build_parser().parse_args(argv)
    _configure_logging(args)
    handlers = {
        "cycles": _cmd_cycles,
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "compare": _cmd_compare,
        "faults": _cmd_faults,
        "sweep": _cmd_sweep,
        "guard-report": _cmd_guard_report,
        "telemetry": _cmd_telemetry,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "learn": _cmd_learn,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. ``python -m repro cycles | head``);
        # detach stdout so the interpreter's shutdown flush cannot re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
