"""Structured exception hierarchy for the public API surface.

Every error the library raises at an API boundary derives from
:class:`ReproError`, so callers (the CLI, the robustness harness, batch
sweeps) can catch one base class and report a clean message instead of a
traceback.  Classes that replace historical ad-hoc ``ValueError`` raises
also inherit :class:`ValueError`, so ``except ValueError`` call sites keep
working through the migration.

The ``scripts/check_no_bare_raise.py`` lint pins the migration: modules
declared as API boundaries there may only raise classes from this module.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every structured error raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An argument, parameter set, or configuration is invalid.

    Raised at construction/call time, before any simulation work happens
    (mis-shaped action batches, non-positive time steps, out-of-range
    fractions, empty batches, ...).
    """


class InfeasibleActionError(ReproError, ValueError):
    """A commanded action cannot be executed even by the fallback machinery.

    The solver normally *reports* infeasibility instead of raising; this
    error marks the rare configurations with no executable action at all
    (e.g. an auxiliary power cap below the safety-critical floor).
    """


class CycleError(ReproError, ValueError):
    """A drive cycle is malformed (bad trace shape, negative speeds,
    non-positive sample period, unreadable cycle file)."""


class CycleLookupError(CycleError, KeyError):
    """A cycle name does not match any built-in cycle.

    Also a :class:`KeyError` for callers that treat the built-in registry
    as a mapping, while the CLI catches it as a :class:`ReproError` and
    reports one clean line instead of a traceback.
    """

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; report it verbatim.
        return str(self.args[0]) if self.args else ""


class CheckpointError(ReproError, ValueError):
    """A policy or training checkpoint cannot be saved, loaded, or resumed
    (missing files, fingerprint mismatch, incompatible table shapes)."""


class NumericalError(ReproError, ArithmeticError):
    """The numerical watchdog tripped: a simulated quantity went
    non-finite (NaN/Inf), which would silently poison every downstream
    trace and Q-value if allowed to propagate."""


class FaultScenarioError(ReproError, ValueError):
    """A fault scenario is malformed (unknown fault kind, bad schedule
    bounds, unparseable scenario JSON)."""


class ExecutionError(ReproError, RuntimeError):
    """The supervised executor cannot run at all (worker isolation
    unavailable on this platform, duplicate task keys, a sweep whose
    every task was quarantined).

    Per-task failures never raise this — they are captured as
    :class:`repro.exec.TaskFailure` records instead."""


class ManifestError(ReproError, ValueError):
    """A sweep manifest cannot be read or reused (missing file, corrupt
    non-final record, unknown payload type, incompatible version)."""


class PersistenceError(CheckpointError):
    """A persisted policy or checkpoint file failed its integrity check
    (SHA-256 digest mismatch, truncated archive, unreadable sidecar).

    Subclasses :class:`CheckpointError`, so existing ``except
    CheckpointError`` call sites keep working; the narrower class marks
    on-disk corruption as opposed to configuration mismatches."""


class ServeError(ReproError, ValueError):
    """The policy service is misconfigured or asked for something it does
    not have (unknown registry version, a canary fraction outside (0, 1],
    serving before any policy was activated).

    Artifact *corruption* never raises this — a corrupt or truncated
    policy artifact surfaces as :class:`PersistenceError`, exactly like
    the training-side persistence layer, and the server degrades instead
    of crashing (see ``docs/SERVING.md``)."""


class ExperienceError(ReproError, ValueError):
    """An experience record or journal violates the online-learning
    contract (malformed or non-finite record fields, an unwritable
    journal shard, a cursor whose content hash no longer matches the
    journal it was taken from).

    Record-level *corruption inside a journal* never aborts ingestion —
    the learner quarantines the bad line, counts it honestly, and keeps
    consuming (see ``docs/ONLINE_LEARNING.md``); this error marks the
    codec/API boundary where a single record or cursor is rejected."""


class TelemetryError(ReproError, ValueError):
    """The telemetry layer cannot record or read observability data (an
    event violating the declared schema, a corrupt event file, a metric
    re-registered under a different type, an unbalanced span stack).

    Telemetry failures never abort the instrumented workload silently —
    they are structured errors at the observability API boundary."""


class ChaosError(ReproError, ValueError):
    """The chaos harness is misconfigured or cannot run (unknown fault
    kind, empty campaign, overlapping filesystem-shim installation).

    Fault *injections themselves* never raise this — the injected
    failures surface through the layer under attack as the structured
    error that layer documents (:class:`ManifestError`,
    :class:`PersistenceError`, :class:`TelemetryError`, ...)."""


class InvariantViolation(ChaosError):
    """A chaos experiment caught the stack breaking a documented recovery
    guarantee: a fault went undetected, a resume was not bit-identical,
    or coverage accounting lied.

    This is the chaos harness's *finding*, not its failure — the
    campaign records it and keeps going so one broken invariant cannot
    hide another."""


class SafetyHaltError(ReproError, RuntimeError):
    """The runtime safety supervisor reached HALT and stopped the episode.

    Raised by :class:`repro.safety.SafetySupervisor` when a fatal health
    alarm fires (e.g. a non-finite Q-table) or the escalation chain is
    exhausted.  Carries the step index, the triggering reason, and the
    safety report accumulated up to the halt."""

    def __init__(self, message: str, step: int = -1, reason: str = "",
                 report=None):
        super().__init__(message)
        self.step = int(step)
        """Episode step at which the supervisor halted (-1 if unknown)."""
        self.reason = reason
        """The alarm or condition that forced the halt."""
        self.report = report
        """The :class:`repro.safety.SafetyReport` up to the halt (or None)."""
