"""Task descriptions and failure records for the supervised executor.

A :class:`Task` bundles a zero-argument callable with a *spec*: a small
JSON-serialisable mapping that identifies the work (cycle name, seed,
scenario, ...).  The spec — never the callable — is what the sweep
manifest keys on, so a re-launched sweep recognises finished work even
though the callables are rebuilt from scratch.

A :class:`TaskFailure` is the structured record the supervisor produces
instead of letting a worker exception (or hang, or hard crash) destroy
the sweep: exception class, message, traceback, failure kind, and how
many attempts were spent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError


def spec_hash(spec: Mapping[str, Any]) -> str:
    """Stable content hash of a task spec (16 hex chars).

    The spec is serialised as canonical JSON (sorted keys, no
    whitespace), so hashing is independent of dict insertion order and of
    the process that produced it.
    """
    try:
        canonical = json.dumps(dict(spec), sort_keys=True,
                               separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"task spec is not JSON-serialisable: {exc}") from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Task:
    """One unit of supervised work."""

    key: str
    """Human-readable identifier, unique within a sweep."""

    fn: Callable[[], Any]
    """Zero-argument callable performing the work and returning the
    result payload.  Closures are fine: parallel workers are forked, so
    the callable never needs to be pickled — only its *return value*
    does."""

    spec: Mapping[str, Any] = field(default_factory=dict)
    """JSON-serialisable description of the work, used for manifest
    keying (see :func:`spec_hash`)."""

    @property
    def hash(self) -> str:
        """Content hash of :attr:`spec`."""
        return spec_hash(self.spec)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task that did not produce a result."""

    key: str
    """Key of the failed task."""

    kind: str
    """Failure taxonomy: ``"error"`` (worker raised), ``"crash"`` (worker
    died without reporting — segfault, ``os._exit``, OOM kill),
    ``"timeout"`` (wall-clock limit hit, worker killed), or ``"skipped"``
    (a prerequisite task was quarantined, so this one never ran)."""

    exception_type: str
    """Exception class name (``""`` for crash/timeout/skipped)."""

    message: str
    """Exception message or a one-line description of the crash."""

    traceback: str
    """Formatted worker traceback (``""`` when none was captured)."""

    attempts: int
    """Attempts spent before quarantining (1 = no retry succeeded
    because none was configured)."""

    elapsed: float
    """Wall-clock seconds spent on the final attempt."""

    def describe(self) -> str:
        """One-line human-readable summary."""
        cause = self.exception_type or self.kind
        return (f"{self.key}: {self.kind} after {self.attempts} attempt(s) "
                f"({cause}: {self.message})")

    def to_json(self) -> dict:
        """JSON-serialisable form (manifest journaling)."""
        return {"key": self.key, "kind": self.kind,
                "exception_type": self.exception_type,
                "message": self.message, "traceback": self.traceback,
                "attempts": self.attempts, "elapsed": self.elapsed}

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TaskFailure":
        """Inverse of :meth:`to_json`."""
        return cls(key=str(data["key"]), kind=str(data["kind"]),
                   exception_type=str(data.get("exception_type", "")),
                   message=str(data.get("message", "")),
                   traceback=str(data.get("traceback", "")),
                   attempts=int(data.get("attempts", 1)),
                   elapsed=float(data.get("elapsed", 0.0)))
