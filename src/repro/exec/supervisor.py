"""Supervised task execution: worker isolation, timeouts, retry, quarantine.

The :class:`Supervisor` runs a list of :class:`~repro.exec.task.Task`
objects and *always* returns a :class:`SweepResult` — one hung solver or
one raised ``NumericalError`` no longer destroys hours of completed
work.  Failures become structured
:class:`~repro.exec.task.TaskFailure` records; tasks that exhaust their
retries land on the quarantine list; the sweep completes and reports
coverage honestly.

Execution modes
---------------

* **Serial in-process** (``jobs=1``, ``timeout=None`` — the default):
  tasks run in submission order in the calling process, bit-identical to
  a plain for-loop.  This is the mode the batch and robustness runners
  use unless told otherwise.
* **Isolated workers** (``jobs > 1`` or any ``timeout``): each attempt
  runs in its own forked worker process, so a crash (segfault, OOM kill)
  or a hang cannot take the sweep down — a hung worker is killed when
  its wall-clock ``timeout`` expires.  Killing escalates: SIGTERM first,
  then — after ``kill_grace`` seconds without exit — SIGKILL, so even a
  worker that installs a SIGTERM handler and refuses to die cannot stall
  the sweep (escalations tick the ``exec.sigkills`` counter).  Fork
  semantics mean task closures never need pickling; only *results*
  cross the process boundary.

Retries use exponential backoff with deterministic jitter
(:class:`BackoffPolicy`): the delay for ``(task key, attempt)`` is a pure
function, so a re-run schedules identically.

With a :class:`~repro.exec.manifest.SweepManifest` attached, every
completion is journaled; a manifest opened with ``resume=True`` replays
finished tasks instead of re-running them.

With a :class:`~repro.telemetry.Telemetry` attached (opt-in, default
off), every sweep opens an ``exec.sweep`` span and every task an
``exec.task`` span — stacked in serial mode, detached in isolated mode
where task lifetimes overlap, with the span context handed across the
fork boundary so worker-side tracers continue the same trace.  Task
completions become ``task`` events, and retries/timeouts/quarantines
tick ``exec.*`` counters plus an ``exec.task_seconds`` latency
histogram.
"""

from __future__ import annotations

import hashlib
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence

import multiprocessing

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.manifest import SweepManifest
from repro.exec.task import Task, TaskFailure

_POLL_CAP = 0.5
"""Upper bound on one scheduler wait, s (keeps deadline checks timely)."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff with deterministic jitter.

    The delay before retry ``attempt`` (1-based count of failed
    attempts) is ``base * factor**(attempt-1)``, inflated by up to
    ``jitter`` fraction using a uniform draw derived from
    ``sha256(key:attempt)`` — deterministic per (task, attempt), but
    decorrelated across tasks so a retried fleet does not stampede.
    """

    base: float = 0.05
    """First-retry delay, s."""

    factor: float = 2.0
    """Multiplier applied per additional failed attempt."""

    jitter: float = 0.25
    """Maximum fractional inflation of the delay."""

    max_delay: float = 5.0
    """Ceiling on any single delay, s."""

    def __post_init__(self):
        if self.base < 0 or self.factor < 1.0 or not (0 <= self.jitter <= 1) \
                or self.max_delay < 0:
            raise ConfigurationError(
                "backoff needs base >= 0, factor >= 1, jitter in [0, 1], "
                "max_delay >= 0")

    def delay(self, key: str, attempt: int) -> float:
        """Deterministic delay before retrying ``key`` after ``attempt``
        failed attempts."""
        if attempt < 1:
            raise ConfigurationError("attempt counts are 1-based")
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()
        unit = int(digest[:8], 16) / float(0xFFFFFFFF)
        raw = self.base * self.factor ** (attempt - 1)
        return min(raw * (1.0 + self.jitter * unit), self.max_delay)


@dataclass
class SweepResult:
    """Everything one supervised sweep produced, including what it lost."""

    planned: List[str] = field(default_factory=list)
    """Keys of every task submitted, in submission order."""

    results: Dict[str, Any] = field(default_factory=dict)
    """Payloads of completed tasks (resumed ones included), by key."""

    failures: List[TaskFailure] = field(default_factory=list)
    """Quarantine list: one record per task that exhausted its retries."""

    resumed: List[str] = field(default_factory=list)
    """Keys replayed from the manifest instead of executed."""

    attempts: Dict[str, int] = field(default_factory=dict)
    """Attempts spent per executed task (0 for resumed tasks)."""

    @property
    def quarantined(self) -> List[str]:
        """Keys of the quarantined tasks."""
        return [f.key for f in self.failures]

    @property
    def coverage(self) -> float:
        """Completed fraction of the planned sweep (1.0 when empty)."""
        if not self.planned:
            return 1.0
        return len(self.results) / len(self.planned)

    def describe_coverage(self) -> str:
        """One-line honest coverage statement."""
        done = len(self.results)
        text = f"{done}/{len(self.planned)} tasks completed"
        if self.resumed:
            text += f" ({len(self.resumed)} resumed from manifest)"
        if self.failures:
            text += f", {len(self.failures)} quarantined"
        return text


class Supervisor:
    """Fault-tolerant executor for independent tasks (see module doc)."""

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, backoff: Optional[BackoffPolicy] = None,
                 manifest: Optional[SweepManifest] = None,
                 failure_mode: str = "quarantine",
                 telemetry=None, kill_grace: float = 1.0):
        if not isinstance(jobs, int) or jobs < 1:
            raise ConfigurationError(f"jobs must be a positive int, "
                                     f"got {jobs!r}")
        if timeout is not None and not timeout > 0:
            raise ConfigurationError(f"timeout must be positive, "
                                     f"got {timeout!r}")
        if not isinstance(retries, int) or retries < 0:
            raise ConfigurationError(f"retries must be a non-negative int, "
                                     f"got {retries!r}")
        if failure_mode not in ("quarantine", "raise"):
            raise ConfigurationError(
                f"failure_mode must be 'quarantine' or 'raise', "
                f"got {failure_mode!r}")
        if not kill_grace > 0:
            raise ConfigurationError(
                f"kill_grace must be positive seconds, got {kill_grace!r}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff or BackoffPolicy()
        self.manifest = manifest
        self.failure_mode = failure_mode
        self.telemetry = telemetry
        self.kill_grace = float(kill_grace)

    @property
    def isolated(self) -> bool:
        """True when attempts run in forked worker processes."""
        return self.jobs > 1 or self.timeout is not None

    # -- public API --------------------------------------------------------

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        """Execute ``tasks``, surviving per-task failures.

        Returns a :class:`SweepResult`; raises only on misconfiguration
        (duplicate keys, isolation unavailable) or, in
        ``failure_mode="raise"``, on the first quarantined task.
        """
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ExecutionError(f"duplicate task keys: {dupes}")
        sweep = SweepResult(planned=keys)
        sweep_span = None
        if self.telemetry is not None:
            sweep_span = self.telemetry.tracer.start(
                "exec.sweep", planned=len(keys), jobs=self.jobs,
                isolated=self.isolated)
        try:
            todo: List[Task] = []
            for task in tasks:
                if self.manifest is not None:
                    found, payload = self.manifest.payload_for(task)
                    if found:
                        sweep.results[task.key] = payload
                        sweep.resumed.append(task.key)
                        sweep.attempts[task.key] = 0
                        if self.telemetry is not None:
                            self._journal(task.key, "resumed", 0, 0.0)
                        continue
                todo.append(task)
            if todo:
                if self.isolated:
                    self._check_isolation_available()
                    self._run_isolated(todo, sweep)
                else:
                    self._run_serial(todo, sweep)
        finally:
            if sweep_span is not None:
                self.telemetry.tracer.end(
                    sweep_span, completed=len(sweep.results),
                    quarantined=len(sweep.failures),
                    resumed=len(sweep.resumed))
        return sweep

    # -- telemetry plumbing ------------------------------------------------

    _OUTCOME_COUNTERS = {"ok": "exec.tasks_completed",
                         "quarantined": "exec.tasks_quarantined",
                         "resumed": "exec.tasks_resumed"}

    def _journal(self, key: str, outcome: str, attempts: int,
                 elapsed: float) -> None:
        """Emit one ``task`` event and tick the exec metrics.

        Callers guard on ``self.telemetry is not None``.
        """
        telemetry = self.telemetry
        telemetry.event("task", key=key, outcome=outcome,
                        attempts=int(attempts), elapsed=float(elapsed))
        telemetry.metrics.counter(self._OUTCOME_COUNTERS[outcome]).inc()
        if outcome != "resumed":
            from repro.telemetry.metrics import LATENCY_BUCKETS_S
            telemetry.metrics.histogram(
                "exec.task_seconds",
                buckets=LATENCY_BUCKETS_S).observe(elapsed)

    # -- shared bookkeeping ------------------------------------------------

    def _record_success(self, sweep: SweepResult, task: Task, value: Any,
                        attempts: int, elapsed: float) -> None:
        sweep.results[task.key] = value
        sweep.attempts[task.key] = attempts
        if self.manifest is not None:
            self.manifest.record_success(task, value, attempts, elapsed)
        if self.telemetry is not None:
            self._journal(task.key, "ok", attempts, elapsed)

    def _record_failure(self, sweep: SweepResult, task: Task,
                        failure: TaskFailure,
                        cause: Optional[BaseException] = None) -> None:
        sweep.failures.append(failure)
        sweep.attempts[task.key] = failure.attempts
        if self.manifest is not None:
            self.manifest.record_failure(task, failure)
        if self.telemetry is not None:
            self._journal(task.key, "quarantined", failure.attempts,
                          failure.elapsed)
        if self.failure_mode == "raise":
            if cause is not None:
                raise cause
            raise ExecutionError(failure.describe())

    # -- serial in-process mode --------------------------------------------

    def _run_serial(self, todo: Sequence[Task], sweep: SweepResult) -> None:
        telemetry = self.telemetry
        for task in todo:
            span = None
            if telemetry is not None:
                span = telemetry.tracer.start("exec.task", key=task.key)
            attempt = 0
            outcome = "error"
            try:
                while True:
                    attempt += 1
                    start = time.monotonic()
                    try:
                        value = task.fn()
                    except Exception as exc:
                        elapsed = time.monotonic() - start
                        if attempt <= self.retries:
                            if telemetry is not None:
                                telemetry.metrics.counter(
                                    "exec.retries").inc()
                            time.sleep(self.backoff.delay(task.key, attempt))
                            continue
                        failure = TaskFailure(
                            key=task.key, kind="error",
                            exception_type=type(exc).__name__,
                            message=str(exc),
                            traceback=traceback_module.format_exc(),
                            attempts=attempt, elapsed=elapsed)
                        outcome = "quarantined"
                        # In raise mode the *original* exception propagates,
                        # preserving the pre-supervisor serial-loop contract.
                        self._record_failure(sweep, task, failure, cause=exc)
                        break
                    outcome = "ok"
                    self._record_success(sweep, task, value, attempt,
                                         time.monotonic() - start)
                    break
            finally:
                if span is not None:
                    telemetry.tracer.end(span, outcome=outcome,
                                         attempts=attempt)

    # -- isolated worker mode ----------------------------------------------

    @staticmethod
    def _check_isolation_available() -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "worker isolation needs the 'fork' start method, which "
                "this platform lacks; use jobs=1 with no timeout")

    def _run_isolated(self, todo: Sequence[Task],
                      sweep: SweepResult) -> None:
        ctx = multiprocessing.get_context("fork")
        pending = deque((task, 1, 0.0) for task in todo)
        running: List[_WorkerSlot] = []
        spans: Dict[str, Any] = {}  # live detached task spans, by key
        try:
            while pending or running:
                now = time.monotonic()
                self._launch_ready(ctx, pending, running, spans, now)
                self._wait(pending, running, now)
                now = time.monotonic()
                self._reap(pending, running, sweep, spans, now)
        finally:
            for slot in running:
                self._kill_slot(slot)
            if self.telemetry is not None:
                # Tasks still in flight when the sweep aborts (raise mode)
                # get their spans closed so the trace stays complete.
                for span in spans.values():
                    self.telemetry.tracer.end(span, outcome="aborted")
                spans.clear()

    def _launch_ready(self, ctx, pending, running: List["_WorkerSlot"],
                      spans: Dict[str, Any], now: float) -> None:
        while len(running) < self.jobs:
            index = next((i for i, (_, _, ready) in enumerate(pending)
                          if ready <= now), None)
            if index is None:
                break
            task, attempt, _ = pending[index]
            del pending[index]
            span_context = None
            if self.telemetry is not None:
                # One detached span covers every attempt of the task; its
                # context crosses the fork so the worker continues the
                # trace (see repro.telemetry.tracing).
                span = spans.get(task.key)
                if span is None:
                    span = self.telemetry.tracer.start(
                        "exec.task", detached=True, key=task.key)
                    spans[task.key] = span
                span_context = span.context.to_json()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_entry,
                               args=(task.fn, child_conn, span_context),
                               daemon=True)
            proc.start()
            child_conn.close()
            deadline = now + self.timeout if self.timeout else None
            running.append(_WorkerSlot(task=task, attempt=attempt,
                                       proc=proc, conn=parent_conn,
                                       started=now, deadline=deadline,
                                       grace=self.kill_grace))

    def _wait(self, pending, running: List["_WorkerSlot"],
              now: float) -> None:
        waits = [_POLL_CAP]
        waits += [slot.deadline - now for slot in running
                  if slot.deadline is not None]
        if len(running) < self.jobs:
            waits += [ready - now for (_, _, ready) in pending]
        wait = max(min(waits), 0.0)
        if running:
            mp_connection.wait([slot.conn for slot in running],
                               timeout=wait)
        elif wait > 0:
            time.sleep(wait)

    def _reap(self, pending, running: List["_WorkerSlot"],
              sweep: SweepResult, spans: Dict[str, Any],
              now: float) -> None:
        ready = mp_connection.wait([slot.conn for slot in running],
                                   timeout=0) if running else []
        for slot in list(running):
            if slot.conn in ready:
                outcome = slot.collect()
            elif slot.deadline is not None and now >= slot.deadline:
                escalated = self._kill_slot(slot)
                how = ("SIGKILLed after ignoring SIGTERM for "
                       f"{slot.grace:g}s" if escalated else "killed")
                outcome = ("timeout", "", f"no result within "
                           f"{self.timeout:g}s wall-clock; worker {how}",
                           "")
            else:
                continue
            running.remove(slot)
            elapsed = time.monotonic() - slot.started
            if outcome[0] == "ok":
                self._end_task_span(spans, slot, "ok")
                self._record_success(sweep, slot.task, outcome[1],
                                     slot.attempt, elapsed)
                continue
            kind, exception_type, message, tb = outcome
            if self.telemetry is not None and kind == "timeout":
                self.telemetry.metrics.counter("exec.timeouts").inc()
            if slot.attempt <= self.retries:
                if self.telemetry is not None:
                    self.telemetry.metrics.counter("exec.retries").inc()
                delay = self.backoff.delay(slot.task.key, slot.attempt)
                pending.append((slot.task, slot.attempt + 1, now + delay))
                continue
            self._end_task_span(spans, slot, "quarantined")
            self._record_failure(sweep, slot.task, TaskFailure(
                key=slot.task.key, kind=kind,
                exception_type=exception_type, message=message,
                traceback=tb, attempts=slot.attempt, elapsed=elapsed))

    def _kill_slot(self, slot: "_WorkerSlot") -> bool:
        """Kill one worker, escalating if needed; ticks ``exec.sigkills``
        when SIGTERM was not enough.  Returns True on escalation."""
        escalated = slot.kill()
        if escalated and self.telemetry is not None:
            self.telemetry.metrics.counter("exec.sigkills").inc()
        return escalated

    def _end_task_span(self, spans: Dict[str, Any], slot: "_WorkerSlot",
                       outcome: str) -> None:
        if self.telemetry is None:
            return
        span = spans.pop(slot.task.key, None)
        if span is not None:
            self.telemetry.tracer.end(span, outcome=outcome,
                                      attempts=slot.attempt)


@dataclass
class _WorkerSlot:
    """One live worker process and its bookkeeping."""

    task: Task
    attempt: int
    proc: multiprocessing.Process
    conn: mp_connection.Connection
    started: float
    deadline: Optional[float]
    grace: float = 1.0
    """Seconds a SIGTERMed worker gets to exit before SIGKILL."""

    def collect(self):
        """Drain the worker's report; classify a silent death as a crash."""
        try:
            message = self.conn.recv()
        except (EOFError, OSError):
            self.proc.join(timeout=5.0)
            code = self.proc.exitcode
            message = ("crash", "",
                       f"worker died without reporting (exit code {code})",
                       "")
        else:
            self.proc.join(timeout=5.0)
        self.conn.close()
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        return message

    def kill(self) -> bool:
        """Stop the worker (timeout or sweep teardown), escalating.

        SIGTERM first — a cooperative worker gets ``grace`` seconds to
        clean up and exit — then SIGKILL, which no handler can ignore.
        Returns True when escalation was needed (the worker blocked or
        ignored SIGTERM); the caller surfaces that in the failure record
        and metrics, because a SIGTERM-proof task is worth knowing about.
        """
        escalated = False
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=self.grace)
        if self.proc.is_alive():
            escalated = True
            self.proc.kill()
            self.proc.join(timeout=5.0)
        self.conn.close()
        return escalated


def _worker_entry(fn, conn, span_context=None) -> None:
    """Forked worker body: run the task, report exactly one message.

    ``span_context`` (the supervisor task span's ``to_json()`` form, when
    telemetry is on) is installed as the worker's ambient trace parent,
    so any tracer the task builds continues the supervisor's trace.
    """
    if span_context is not None:
        from repro.telemetry.tracing import SpanContext, set_ambient_context
        set_ambient_context(SpanContext.from_json(span_context))
    try:
        value = fn()
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback_module.format_exc()))
        except Exception:  # containment: pipe gone; parent reports a crash
            pass
        return
    try:
        conn.send(("ok", value, "", ""))
    except Exception as exc:
        try:
            conn.send(("error", type(exc).__name__,
                       f"task result could not cross the process "
                       f"boundary: {exc}", traceback_module.format_exc()))
        except Exception:  # containment: pipe gone; parent reports a crash
            pass
