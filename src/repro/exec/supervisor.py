"""Supervised task execution: worker isolation, timeouts, retry, quarantine.

The :class:`Supervisor` runs a list of :class:`~repro.exec.task.Task`
objects and *always* returns a :class:`SweepResult` — one hung solver or
one raised ``NumericalError`` no longer destroys hours of completed
work.  Failures become structured
:class:`~repro.exec.task.TaskFailure` records; tasks that exhaust their
retries land on the quarantine list; the sweep completes and reports
coverage honestly.

Execution modes
---------------

* **Serial in-process** (``jobs=1``, ``timeout=None`` — the default):
  tasks run in submission order in the calling process, bit-identical to
  a plain for-loop.  This is the mode the batch and robustness runners
  use unless told otherwise.
* **Isolated workers** (``jobs > 1`` or any ``timeout``): each attempt
  runs in its own forked worker process, so a crash (segfault, OOM kill)
  or a hang cannot take the sweep down — a hung worker is killed when
  its wall-clock ``timeout`` expires.  Fork semantics mean task closures
  never need pickling; only *results* cross the process boundary.

Retries use exponential backoff with deterministic jitter
(:class:`BackoffPolicy`): the delay for ``(task key, attempt)`` is a pure
function, so a re-run schedules identically.

With a :class:`~repro.exec.manifest.SweepManifest` attached, every
completion is journaled; a manifest opened with ``resume=True`` replays
finished tasks instead of re-running them.
"""

from __future__ import annotations

import hashlib
import time
import traceback as traceback_module
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence

import multiprocessing

from repro.errors import ConfigurationError, ExecutionError
from repro.exec.manifest import SweepManifest
from repro.exec.task import Task, TaskFailure

_POLL_CAP = 0.5
"""Upper bound on one scheduler wait, s (keeps deadline checks timely)."""


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff with deterministic jitter.

    The delay before retry ``attempt`` (1-based count of failed
    attempts) is ``base * factor**(attempt-1)``, inflated by up to
    ``jitter`` fraction using a uniform draw derived from
    ``sha256(key:attempt)`` — deterministic per (task, attempt), but
    decorrelated across tasks so a retried fleet does not stampede.
    """

    base: float = 0.05
    """First-retry delay, s."""

    factor: float = 2.0
    """Multiplier applied per additional failed attempt."""

    jitter: float = 0.25
    """Maximum fractional inflation of the delay."""

    max_delay: float = 5.0
    """Ceiling on any single delay, s."""

    def __post_init__(self):
        if self.base < 0 or self.factor < 1.0 or not (0 <= self.jitter <= 1) \
                or self.max_delay < 0:
            raise ConfigurationError(
                "backoff needs base >= 0, factor >= 1, jitter in [0, 1], "
                "max_delay >= 0")

    def delay(self, key: str, attempt: int) -> float:
        """Deterministic delay before retrying ``key`` after ``attempt``
        failed attempts."""
        if attempt < 1:
            raise ConfigurationError("attempt counts are 1-based")
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).hexdigest()
        unit = int(digest[:8], 16) / float(0xFFFFFFFF)
        raw = self.base * self.factor ** (attempt - 1)
        return min(raw * (1.0 + self.jitter * unit), self.max_delay)


@dataclass
class SweepResult:
    """Everything one supervised sweep produced, including what it lost."""

    planned: List[str] = field(default_factory=list)
    """Keys of every task submitted, in submission order."""

    results: Dict[str, Any] = field(default_factory=dict)
    """Payloads of completed tasks (resumed ones included), by key."""

    failures: List[TaskFailure] = field(default_factory=list)
    """Quarantine list: one record per task that exhausted its retries."""

    resumed: List[str] = field(default_factory=list)
    """Keys replayed from the manifest instead of executed."""

    attempts: Dict[str, int] = field(default_factory=dict)
    """Attempts spent per executed task (0 for resumed tasks)."""

    @property
    def quarantined(self) -> List[str]:
        """Keys of the quarantined tasks."""
        return [f.key for f in self.failures]

    @property
    def coverage(self) -> float:
        """Completed fraction of the planned sweep (1.0 when empty)."""
        if not self.planned:
            return 1.0
        return len(self.results) / len(self.planned)

    def describe_coverage(self) -> str:
        """One-line honest coverage statement."""
        done = len(self.results)
        text = f"{done}/{len(self.planned)} tasks completed"
        if self.resumed:
            text += f" ({len(self.resumed)} resumed from manifest)"
        if self.failures:
            text += f", {len(self.failures)} quarantined"
        return text


class Supervisor:
    """Fault-tolerant executor for independent tasks (see module doc)."""

    def __init__(self, jobs: int = 1, timeout: Optional[float] = None,
                 retries: int = 0, backoff: Optional[BackoffPolicy] = None,
                 manifest: Optional[SweepManifest] = None,
                 failure_mode: str = "quarantine"):
        if not isinstance(jobs, int) or jobs < 1:
            raise ConfigurationError(f"jobs must be a positive int, "
                                     f"got {jobs!r}")
        if timeout is not None and not timeout > 0:
            raise ConfigurationError(f"timeout must be positive, "
                                     f"got {timeout!r}")
        if not isinstance(retries, int) or retries < 0:
            raise ConfigurationError(f"retries must be a non-negative int, "
                                     f"got {retries!r}")
        if failure_mode not in ("quarantine", "raise"):
            raise ConfigurationError(
                f"failure_mode must be 'quarantine' or 'raise', "
                f"got {failure_mode!r}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff or BackoffPolicy()
        self.manifest = manifest
        self.failure_mode = failure_mode

    @property
    def isolated(self) -> bool:
        """True when attempts run in forked worker processes."""
        return self.jobs > 1 or self.timeout is not None

    # -- public API --------------------------------------------------------

    def run(self, tasks: Sequence[Task]) -> SweepResult:
        """Execute ``tasks``, surviving per-task failures.

        Returns a :class:`SweepResult`; raises only on misconfiguration
        (duplicate keys, isolation unavailable) or, in
        ``failure_mode="raise"``, on the first quarantined task.
        """
        keys = [t.key for t in tasks]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ExecutionError(f"duplicate task keys: {dupes}")
        sweep = SweepResult(planned=keys)
        todo: List[Task] = []
        for task in tasks:
            if self.manifest is not None:
                found, payload = self.manifest.payload_for(task)
                if found:
                    sweep.results[task.key] = payload
                    sweep.resumed.append(task.key)
                    sweep.attempts[task.key] = 0
                    continue
            todo.append(task)
        if not todo:
            return sweep
        if self.isolated:
            self._check_isolation_available()
            self._run_isolated(todo, sweep)
        else:
            self._run_serial(todo, sweep)
        return sweep

    # -- shared bookkeeping ------------------------------------------------

    def _record_success(self, sweep: SweepResult, task: Task, value: Any,
                        attempts: int, elapsed: float) -> None:
        sweep.results[task.key] = value
        sweep.attempts[task.key] = attempts
        if self.manifest is not None:
            self.manifest.record_success(task, value, attempts, elapsed)

    def _record_failure(self, sweep: SweepResult, task: Task,
                        failure: TaskFailure,
                        cause: Optional[BaseException] = None) -> None:
        sweep.failures.append(failure)
        sweep.attempts[task.key] = failure.attempts
        if self.manifest is not None:
            self.manifest.record_failure(task, failure)
        if self.failure_mode == "raise":
            if cause is not None:
                raise cause
            raise ExecutionError(failure.describe())

    # -- serial in-process mode --------------------------------------------

    def _run_serial(self, todo: Sequence[Task], sweep: SweepResult) -> None:
        for task in todo:
            attempt = 0
            while True:
                attempt += 1
                start = time.monotonic()
                try:
                    value = task.fn()
                except Exception as exc:
                    elapsed = time.monotonic() - start
                    if attempt <= self.retries:
                        time.sleep(self.backoff.delay(task.key, attempt))
                        continue
                    failure = TaskFailure(
                        key=task.key, kind="error",
                        exception_type=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback_module.format_exc(),
                        attempts=attempt, elapsed=elapsed)
                    # In raise mode the *original* exception propagates,
                    # preserving the pre-supervisor serial-loop contract.
                    self._record_failure(sweep, task, failure, cause=exc)
                    break
                self._record_success(sweep, task, value, attempt,
                                     time.monotonic() - start)
                break

    # -- isolated worker mode ----------------------------------------------

    @staticmethod
    def _check_isolation_available() -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "worker isolation needs the 'fork' start method, which "
                "this platform lacks; use jobs=1 with no timeout")

    def _run_isolated(self, todo: Sequence[Task],
                      sweep: SweepResult) -> None:
        ctx = multiprocessing.get_context("fork")
        pending = deque((task, 1, 0.0) for task in todo)
        running: List[_WorkerSlot] = []
        try:
            while pending or running:
                now = time.monotonic()
                self._launch_ready(ctx, pending, running, now)
                self._wait(pending, running, now)
                now = time.monotonic()
                self._reap(pending, running, sweep, now)
        finally:
            for slot in running:
                slot.kill()

    def _launch_ready(self, ctx, pending, running: List["_WorkerSlot"],
                      now: float) -> None:
        while len(running) < self.jobs:
            index = next((i for i, (_, _, ready) in enumerate(pending)
                          if ready <= now), None)
            if index is None:
                break
            task, attempt, _ = pending[index]
            del pending[index]
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_worker_entry,
                               args=(task.fn, child_conn), daemon=True)
            proc.start()
            child_conn.close()
            deadline = now + self.timeout if self.timeout else None
            running.append(_WorkerSlot(task=task, attempt=attempt,
                                       proc=proc, conn=parent_conn,
                                       started=now, deadline=deadline))

    def _wait(self, pending, running: List["_WorkerSlot"],
              now: float) -> None:
        waits = [_POLL_CAP]
        waits += [slot.deadline - now for slot in running
                  if slot.deadline is not None]
        if len(running) < self.jobs:
            waits += [ready - now for (_, _, ready) in pending]
        wait = max(min(waits), 0.0)
        if running:
            mp_connection.wait([slot.conn for slot in running],
                               timeout=wait)
        elif wait > 0:
            time.sleep(wait)

    def _reap(self, pending, running: List["_WorkerSlot"],
              sweep: SweepResult, now: float) -> None:
        ready = mp_connection.wait([slot.conn for slot in running],
                                   timeout=0) if running else []
        for slot in list(running):
            if slot.conn in ready:
                outcome = slot.collect()
            elif slot.deadline is not None and now >= slot.deadline:
                slot.kill()
                outcome = ("timeout", "", f"no result within "
                           f"{self.timeout:g}s wall-clock; worker killed",
                           "")
            else:
                continue
            running.remove(slot)
            elapsed = time.monotonic() - slot.started
            if outcome[0] == "ok":
                self._record_success(sweep, slot.task, outcome[1],
                                     slot.attempt, elapsed)
                continue
            kind, exception_type, message, tb = outcome
            if slot.attempt <= self.retries:
                delay = self.backoff.delay(slot.task.key, slot.attempt)
                pending.append((slot.task, slot.attempt + 1, now + delay))
                continue
            self._record_failure(sweep, slot.task, TaskFailure(
                key=slot.task.key, kind=kind,
                exception_type=exception_type, message=message,
                traceback=tb, attempts=slot.attempt, elapsed=elapsed))


@dataclass
class _WorkerSlot:
    """One live worker process and its bookkeeping."""

    task: Task
    attempt: int
    proc: multiprocessing.Process
    conn: mp_connection.Connection
    started: float
    deadline: Optional[float]

    def collect(self):
        """Drain the worker's report; classify a silent death as a crash."""
        try:
            message = self.conn.recv()
        except (EOFError, OSError):
            self.proc.join(timeout=5.0)
            code = self.proc.exitcode
            message = ("crash", "",
                       f"worker died without reporting (exit code {code})",
                       "")
        else:
            self.proc.join(timeout=5.0)
        self.conn.close()
        if self.proc.is_alive():
            self.proc.kill()
        return message

    def kill(self) -> None:
        """Forcibly stop the worker (timeout or sweep teardown)."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=1.0)
        self.conn.close()


def _worker_entry(fn, conn) -> None:
    """Forked worker body: run the task, report exactly one message."""
    try:
        value = fn()
    except BaseException as exc:
        try:
            conn.send(("error", type(exc).__name__, str(exc),
                       traceback_module.format_exc()))
        except Exception:  # containment: pipe gone; parent reports a crash
            pass
        return
    try:
        conn.send(("ok", value, "", ""))
    except Exception as exc:
        try:
            conn.send(("error", type(exc).__name__,
                       f"task result could not cross the process "
                       f"boundary: {exc}", traceback_module.format_exc()))
        except Exception:  # containment: pipe gone; parent reports a crash
            pass
