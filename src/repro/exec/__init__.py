"""Supervised parallel execution: isolated workers, retries, resumable sweeps.

The subsystem that makes every sweep in the repository survivable,
parallel, and resumable:

* :mod:`repro.exec.task` — :class:`Task` (work + JSON-able spec for
  content hashing) and :class:`TaskFailure` (structured failure record:
  exception class, traceback, attempt count, failure kind).
* :mod:`repro.exec.supervisor` — the :class:`Supervisor`: fans tasks out
  to forked worker processes with per-task wall-clock timeouts, bounded
  retry with exponential backoff + deterministic jitter
  (:class:`BackoffPolicy`), a quarantine list for tasks that exhaust
  their retries, and graceful degradation — the sweep completes and the
  :class:`SweepResult` reports coverage honestly.  Serial in-process
  mode (the default) is bit-identical to a plain for-loop.
* :mod:`repro.exec.manifest` — :class:`SweepManifest`, the append-only
  JSONL journal keyed by task-spec content hash; a killed sweep
  re-launched against its manifest skips finished work and reproduces
  the uninterrupted aggregates exactly.

The batch runner (:func:`repro.sim.run_batch`), the robustness grid
(:func:`repro.sim.run_robustness`), and the CLI ``sweep`` subcommand all
execute through this layer.  See ``docs/ROBUSTNESS.md``.
"""

from repro.exec.task import Task, TaskFailure, spec_hash
from repro.exec.manifest import (
    SweepManifest,
    decode_payload,
    encode_payload,
    register_payload_type,
)
from repro.exec.supervisor import BackoffPolicy, Supervisor, SweepResult

__all__ = [
    "Task",
    "TaskFailure",
    "spec_hash",
    "SweepManifest",
    "encode_payload",
    "decode_payload",
    "register_payload_type",
    "BackoffPolicy",
    "Supervisor",
    "SweepResult",
]
