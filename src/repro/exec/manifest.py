"""Append-only JSONL sweep manifests: journal, resume, payload codec.

A manifest makes a sweep *resumable*: every completed task is appended as
one JSON line keyed by the content hash of its task spec, payload
included.  Re-launching the sweep with the same manifest skips finished
tasks and replays their recorded payloads, so the aggregates of an
interrupted-and-resumed sweep are identical to an uninterrupted run.

File format (one JSON object per line):

* header — ``{"type": "manifest", "version": 1, "created_unix": ...}``
* success — ``{"type": "result", "status": "ok", "key": ..., "hash": ...,
  "spec": {...}, "attempts": n, "elapsed": s, "completed_unix": ...,
  "payload": <encoded>}``
* quarantine — ``{"type": "result", "status": "quarantined", "key": ...,
  "hash": ..., "spec": {...}, "attempts": n, "elapsed": s,
  "completed_unix": ..., "failure": {...}}``

Every result line journals its wall-clock cost at the top level
(``attempts``, ``elapsed``, ``completed_unix``), so ``repro telemetry
report <manifest>`` can summarise supervisor latency from manifests
alone — no payload decoding, no event file.  (Older files lacked the
top-level copies on quarantined lines; readers fall back to the same
fields inside ``failure``.)

Quarantined records are journaled for the post-mortem but are **not**
skipped on resume — a failed task is not finished work, so the re-launch
tries it again.  A torn final line (the process was killed mid-write) is
tolerated: it is discarded with a loud ``RuntimeWarning`` *and truncated
out of the file*, so the resumed run's first append cannot concatenate
onto the fragment.  Corruption anywhere else — unparseable JSON mid-file
or a parseable record missing its hash/payload/failure fields — raises
:class:`repro.errors.ManifestError` rather than ever resuming silently
wrong.  Appends go through :mod:`repro.fsio` (write + per-record fsync),
so the chaos harness can inject ENOSPC/slow-write faults, and an append
failure surfaces as a ``ManifestError`` naming the journal.

Payload encoding is JSON with tagged extensions — numpy arrays and a
small allow-list of repro dataclasses round-trip exactly (floats via
``repr``, so resumed aggregates are bit-identical):

* ``{"__ndarray__": {"dtype": ..., "shape": ..., "data": ...}}``
* ``{"__tuple__": [...]}``
* ``{"__dataclass__": "module:Class", "fields": {...}}``

Decoding instantiates only classes on the allow-list
(:data:`PAYLOAD_TYPES`, extensible via :func:`register_payload_type`) —
a manifest is data, not code.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro import fsio
from repro.errors import ManifestError
from repro.exec.task import Task, TaskFailure

MANIFEST_VERSION = 1
"""Current manifest format version (checked on resume)."""

PAYLOAD_TYPES = {
    "repro.sim.results:EpisodeResult",
    "repro.sim.robustness:RobustnessRow",
    "repro.exec.task:TaskFailure",
    "repro.safety.events:GuardEvent",
    "repro.safety.events:ModeTransition",
    "repro.safety.events:SafetyReport",
}
"""``module:Class`` names the payload decoder may instantiate."""


def register_payload_type(cls: type) -> type:
    """Allow ``cls`` (a dataclass) in manifest payloads; returns ``cls``
    so it can be used as a decorator."""
    if not dataclasses.is_dataclass(cls):
        raise ManifestError(
            f"payload types must be dataclasses; got {cls!r}")
    PAYLOAD_TYPES.add(f"{cls.__module__}:{cls.__qualname__}")
    return cls


def encode_payload(value: Any) -> Any:
    """Encode a task result into JSON-serialisable form (see module doc)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not np.isfinite(value):
            # JSON has no Infinity/NaN; tag them so decode is exact.
            return {"__float__": repr(value)}
        return value
    if isinstance(value, np.generic):
        return encode_payload(value.item())
    if isinstance(value, np.ndarray):
        return {"__ndarray__": {"dtype": str(value.dtype),
                                "shape": list(value.shape),
                                "data": value.tolist()}}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_payload(v) for v in value]}
    if isinstance(value, list):
        return [encode_payload(v) for v in value]
    if isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise ManifestError("payload dicts must have string keys")
        return {k: encode_payload(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = f"{type(value).__module__}:{type(value).__qualname__}"
        if name not in PAYLOAD_TYPES:
            raise ManifestError(
                f"payload type {name} is not registered "
                "(register_payload_type)")
        fields = {f.name: encode_payload(getattr(value, f.name))
                  for f in dataclasses.fields(value)}
        return {"__dataclass__": name, "fields": fields}
    raise ManifestError(
        f"cannot encode payload of type {type(value).__name__}")


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    if isinstance(value, dict):
        if "__float__" in value:
            return float(value["__float__"])
        if "__ndarray__" in value:
            spec = value["__ndarray__"]
            arr = np.asarray(spec["data"],
                             dtype=np.dtype(spec["dtype"]))
            return arr.reshape([int(s) for s in spec["shape"]])
        if "__tuple__" in value:
            return tuple(decode_payload(v) for v in value["__tuple__"])
        if "__dataclass__" in value:
            name = value["__dataclass__"]
            if name not in PAYLOAD_TYPES:
                raise ManifestError(
                    f"manifest payload type {name} is not allowed")
            module_name, _, qualname = name.partition(":")
            cls = importlib.import_module(module_name)
            for part in qualname.split("."):
                cls = getattr(cls, part)
            fields = {k: decode_payload(v)
                      for k, v in value["fields"].items()}
            return cls(**fields)
        return {k: decode_payload(v) for k, v in value.items()}
    raise ManifestError(
        f"cannot decode payload fragment of type {type(value).__name__}")


class SweepManifest:
    """Append-only journal of one sweep, optionally pre-loaded for resume.

    ``resume=True`` loads every ``status == "ok"`` record so the
    supervisor can skip finished tasks; new completions are appended to
    the same file either way.  Opening an *existing* manifest without
    ``resume=True`` raises — an append-only journal is never silently
    overwritten or double-written.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False):
        self.path = Path(path)
        self._completed: Dict[str, Any] = {}
        self._failed: Dict[str, TaskFailure] = {}
        if self.path.exists():
            if not resume:
                raise ManifestError(
                    f"manifest {self.path} already exists; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a fresh path")
            self._load()
        else:
            if resume:
                raise ManifestError(
                    f"cannot resume: manifest {self.path} does not exist")
            self._append({"type": "manifest", "version": MANIFEST_VERSION,
                          "created_unix": time.time()})

    # -- resume state ------------------------------------------------------

    @property
    def completed(self) -> Mapping[str, Any]:
        """Decoded payloads of finished tasks, keyed by spec hash."""
        return self._completed

    @property
    def quarantined(self) -> Mapping[str, TaskFailure]:
        """Journaled failures keyed by spec hash (informational only —
        resume re-runs these)."""
        return self._failed

    def payload_for(self, task: Task):
        """``(True, payload)`` when ``task`` is already finished in this
        manifest, else ``(False, None)``."""
        h = task.hash
        if h in self._completed:
            return True, self._completed[h]
        return False, None

    # -- journaling --------------------------------------------------------

    def record_success(self, task: Task, payload: Any, attempts: int,
                       elapsed: float) -> None:
        """Append one finished task, payload included."""
        self._append({"type": "result", "status": "ok", "key": task.key,
                      "hash": task.hash, "spec": dict(task.spec),
                      "attempts": attempts, "elapsed": elapsed,
                      "completed_unix": time.time(),
                      "payload": encode_payload(payload)})
        self._completed[task.hash] = payload

    def record_failure(self, task: Task, failure: TaskFailure) -> None:
        """Append one quarantined task (not skipped on resume).

        ``attempts``/``elapsed`` are journaled at the top level (as on
        success lines) so latency reports need not open the failure
        record.
        """
        self._append({"type": "result", "status": "quarantined",
                      "key": task.key, "hash": task.hash,
                      "spec": dict(task.spec),
                      "attempts": failure.attempts,
                      "elapsed": failure.elapsed,
                      "completed_unix": time.time(),
                      "failure": failure.to_json()})
        self._failed[task.hash] = failure

    # -- internals ---------------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True)
        try:
            with self.path.open("a", encoding="utf-8") as fh:
                fsio.file_write(fh, line + "\n", path=self.path)
                fh.flush()
                # fsync per record: a journal line the supervisor acted on
                # (skipping the task on resume) must survive a power cut,
                # not just a process kill.
                fsio.fsync(fh.fileno(), path=self.path)
        except OSError as exc:
            raise ManifestError(
                f"cannot append to manifest {self.path} ({exc}); the "
                "journal holds every record up to this one — resume from "
                "it once the underlying problem is fixed") from exc

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    # Torn final line: the previous run was killed
                    # mid-append.  Everything before it is intact; the
                    # partial record is discarded (its task simply re-runs)
                    # — but loudly, so an operator can tell a clean resume
                    # from a crash-recovery one.
                    warnings.warn(
                        f"{self.path}:{index + 1}: discarding torn final "
                        f"manifest record (crash mid-append?); the "
                        f"affected task will re-run", RuntimeWarning,
                        stacklevel=2)
                    self._amputate_torn_tail()
                    break
                raise ManifestError(
                    f"{self.path}:{index + 1}: corrupt manifest record "
                    f"({exc})") from exc
            self._ingest(record, index + 1)

    def _amputate_torn_tail(self) -> None:
        """Truncate the discarded torn final record out of the journal.

        Tolerating a torn final line on *read* is not enough: this
        manifest is about to be appended to, and a new record written
        after a newline-less fragment would concatenate onto it —
        turning a recoverable torn *final* line into an unrecoverable
        corrupt *mid-file* line for the next resume.  The fragment was
        already judged dead (its task re-runs), so cutting it off is
        safe and makes recovery idempotent.
        """
        raw = self.path.read_bytes()
        end = len(raw) - 1 if raw.endswith(b"\n") else len(raw)
        cut = raw.rfind(b"\n", 0, end) + 1
        with self.path.open("r+b") as fh:
            fh.truncate(cut)

    def _ingest(self, record: Mapping[str, Any], lineno: int) -> None:
        kind = record.get("type")
        if kind == "manifest":
            version = record.get("version")
            if version != MANIFEST_VERSION:
                raise ManifestError(
                    f"{self.path}: manifest version {version!r} is not "
                    f"supported (expected {MANIFEST_VERSION})")
            return
        if kind != "result":
            raise ManifestError(
                f"{self.path}:{lineno}: unknown record type {kind!r}")
        h = record.get("hash")
        if not isinstance(h, str) or not h:
            raise ManifestError(
                f"{self.path}:{lineno}: result record carries no spec "
                "hash — the line is torn or was edited; refusing to "
                "resume from a journal that cannot identify its tasks")
        if record.get("status") == "ok":
            if "payload" not in record:
                # A parseable-but-incomplete line (torn at a field
                # boundary, or hand-stripped) must never resume as a
                # silently None payload.
                raise ManifestError(
                    f"{self.path}:{lineno}: ok record for "
                    f"{record.get('key', '?')!r} has no payload — the "
                    "line is torn or incomplete")
            self._completed[h] = decode_payload(record["payload"])
        elif record.get("status") == "quarantined":
            failure = record.get("failure")
            if not isinstance(failure, Mapping):
                raise ManifestError(
                    f"{self.path}:{lineno}: quarantined record for "
                    f"{record.get('key', '?')!r} has no failure record — "
                    "the line is torn or incomplete")
            self._failed[h] = TaskFailure.from_json(failure)
        else:
            raise ManifestError(
                f"{self.path}:{lineno}: unknown result status "
                f"{record.get('status')!r}")
