"""Preallocated struct-of-arrays storage for episode traces.

The simulator's step loop writes one slot per step into a fixed set of
per-quantity arrays (speeds, power demand, fuel, rewards, SoC, current,
gear, auxiliary draw, mode, feasibility, shortfall, fault flags).  A
:class:`EpisodeBuffers` owns those arrays and is reused across episodes:
training loops drive hundreds of episodes over the same cycle, and
reusing one allocation instead of eleven fresh ``np.zeros`` per episode
keeps the hot loop free of allocator traffic.

Ownership contract: the live arrays belong to the buffer and are
overwritten by the next episode.  Anything that must outlive the episode
(i.e. everything stored in :class:`repro.sim.results.EpisodeResult`) is
taken out through :meth:`EpisodeBuffers.take`, which returns an
independent copy of the written prefix.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

FLOAT_FIELDS = ("speeds", "power_demand", "fuel_rate", "reward",
                "paper_reward", "soc", "current", "aux_power", "shortfall")
"""Float64 per-step trace arrays the simulator fills."""

INT_FIELDS = ("gear", "mode")
"""Integer per-step trace arrays."""

BOOL_FIELDS = ("feasible", "fault_active")
"""Boolean per-step trace arrays."""


class EpisodeBuffers:
    """Reusable struct-of-arrays episode storage.

    Attributes named by :data:`FLOAT_FIELDS` / :data:`INT_FIELDS` /
    :data:`BOOL_FIELDS` are the live numpy arrays; index them with the
    step counter.  Call :meth:`reserve` once per episode before writing
    and :meth:`take` to copy a trace out at episode end.
    """

    def __init__(self, capacity: int = 0):
        self.capacity = 0
        self._allocate(int(capacity))

    def _allocate(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(
                "episode buffer capacity cannot be negative")
        for name in FLOAT_FIELDS:
            setattr(self, name, np.zeros(capacity))
        for name in INT_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=int))
        for name in BOOL_FIELDS:
            setattr(self, name, np.zeros(capacity, dtype=bool))
        self.capacity = capacity

    def reserve(self, steps: int) -> None:
        """Make every trace array at least ``steps`` long and zero the
        written region.

        Growth is geometric so a training loop that alternates between
        cycle lengths settles on one allocation; shrinking never happens.
        Zeroing keeps the per-episode state identical to the historical
        fresh-``np.zeros`` arrays.
        """
        if steps < 0:
            raise ConfigurationError("episode length cannot be negative")
        if steps > self.capacity:
            self._allocate(max(steps, 2 * self.capacity))
        else:
            for name in FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS:
                getattr(self, name)[:steps] = 0

    def take(self, name: str, steps: int) -> np.ndarray:
        """Independent copy of the first ``steps`` entries of one trace.

        This is the only supported way to keep a trace beyond the current
        episode; the live array is overwritten by the next ``reserve``.
        """
        if name not in FLOAT_FIELDS + INT_FIELDS + BOOL_FIELDS:
            raise ConfigurationError(f"unknown episode trace {name!r}")
        if steps > self.capacity:
            raise ConfigurationError(
                f"cannot take {steps} steps of {name!r}; only "
                f"{self.capacity} are allocated")
        return getattr(self, name)[:steps].copy()
