"""Batch experiments: multi-seed, multi-cycle sweeps with summary statistics.

A single RL training run carries seed noise; the batch runner repeats an
experiment across seeds (and optionally cycles), aggregates the figures of
merit (mean, standard deviation, extremes), and reports them in one
structure.  The ablation benches and the examples use it to state results
with honest error bars instead of single draws.

Execution goes through the supervised executor (:mod:`repro.exec`): by
default every repetition runs serially in-process, bit-identical to a
plain loop, and any exception propagates as before.  Pass an explicit
:class:`~repro.exec.Supervisor` to fan repetitions out to isolated
worker processes with timeouts, retries, and quarantine — the batch then
completes on whatever survived and reports its coverage honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.errors import ConfigurationError
from repro.exec import Supervisor, Task, TaskFailure
from repro.powertrain.solver import PowertrainSolver
from repro.sim.results import EpisodeResult
from repro.sim.simulator import Simulator
from repro.sim.training import train


@dataclass(frozen=True)
class Summary:
    """Mean / spread of one scalar metric across repetitions."""

    mean: float
    """Sample mean."""

    std: float
    """Sample standard deviation (0 for a single repetition)."""

    minimum: float
    """Smallest observation."""

    maximum: float
    """Largest observation."""

    count: int
    """Number of repetitions."""

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Summarise a non-empty sequence of observations."""
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ConfigurationError("cannot summarise zero observations")
        return cls(mean=float(arr.mean()),
                   std=float(arr.std(ddof=0)),
                   minimum=float(arr.min()),
                   maximum=float(arr.max()),
                   count=int(arr.size))

    def __str__(self) -> str:
        return f"{self.mean:.2f} +- {self.std:.2f} (n={self.count})"


@dataclass
class BatchResult:
    """All evaluations of one batch experiment plus metric summaries."""

    evaluations: List[EpisodeResult] = field(default_factory=list)
    """Greedy evaluation of each surviving repetition, in seed order."""

    failures: List[TaskFailure] = field(default_factory=list)
    """Quarantined repetitions (empty for an all-successful batch)."""

    planned: int = 0
    """Repetitions the batch set out to run (0 for hand-built results)."""

    @property
    def coverage(self) -> float:
        """Surviving fraction of the planned repetitions (1.0 when the
        batch was built by hand rather than by :func:`run_batch`)."""
        if self.planned <= 0:
            return 1.0
        return len(self.evaluations) / self.planned

    def summarize(self) -> Dict[str, Summary]:
        """Summaries of the standard figures of merit (survivors only)."""
        if not self.evaluations:
            detail = ""
            if self.failures:
                detail = (f" — all {len(self.failures)} repetition(s) "
                          "were quarantined")
            raise ConfigurationError("empty batch" + detail)
        return {
            "total_fuel_g": Summary.of(
                [e.total_fuel for e in self.evaluations]),
            "corrected_fuel_g": Summary.of(
                [e.corrected_fuel() for e in self.evaluations]),
            "corrected_mpg": Summary.of(
                [e.corrected_mpg() for e in self.evaluations]),
            "paper_reward": Summary.of(
                [e.total_paper_reward for e in self.evaluations]),
            "final_soc": Summary.of(
                [e.final_soc for e in self.evaluations]),
        }


def _run_repetition(controller_factory, solver_factory, cycle, seed,
                    episodes, initial_soc, faults) -> EpisodeResult:
    """One batch repetition: fresh solver, fresh controller, train, eval.

    Module-level so the supervised executor can run it in a forked worker;
    the factories themselves may be closures (fork needs no pickling).
    """
    solver = solver_factory()
    simulator = Simulator(solver)
    controller = controller_factory(solver, int(seed))
    run = train(simulator, controller, cycle, episodes=episodes,
                initial_soc=initial_soc, seed=int(seed),
                evaluate_after=faults is None)
    if faults is not None:
        run.evaluation = simulator.run_episode(
            controller, cycle, initial_soc=initial_soc, learn=False,
            greedy=True, faults=faults)
    return run.evaluation


def run_batch(controller_factory: Callable[[PowertrainSolver, int],
                                           Controller],
              solver_factory: Callable[[], PowertrainSolver],
              cycle: DriveCycle, seeds: Sequence[int],
              episodes: int = 30, initial_soc: float = 0.60,
              faults=None,
              executor: Optional[Supervisor] = None) -> BatchResult:
    """Train/evaluate one controller configuration across ``seeds``.

    ``controller_factory(solver, seed)`` builds a fresh controller per
    repetition; non-learning controllers simply ignore the seed and
    ``episodes`` is irrelevant for them (pass 1 to skip useless drives —
    the evaluation drive is always performed).  The repetition seed is
    also forwarded to :func:`repro.sim.train`, so each repetition draws
    its own exploring-start sequence.

    ``faults`` (a :class:`~repro.faults.schedule.FaultSchedule`) makes the
    *evaluation* drive run in degraded mode while training stays on the
    healthy vehicle — the standard robustness protocol: the policy never
    saw the fault coming.

    ``executor`` selects the execution strategy.  ``None`` (the default)
    runs serially in-process and re-raises any repetition failure, exactly
    like the historical loop.  A :class:`~repro.exec.Supervisor` in
    quarantine mode makes the batch fault-tolerant: failed repetitions
    land in :attr:`BatchResult.failures` and the summaries cover the
    survivors.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if episodes < 1:
        raise ConfigurationError("need at least one episode")
    if executor is None:
        executor = Supervisor(failure_mode="raise")
    tasks = []
    for seed in seeds:
        spec = {"kind": "batch", "cycle": cycle.name, "seed": int(seed),
                "episodes": int(episodes), "initial_soc": float(initial_soc),
                "faulted": faults is not None}
        tasks.append(Task(
            key=f"seed={int(seed)}", spec=spec,
            fn=lambda seed=seed: _run_repetition(
                controller_factory, solver_factory, cycle, seed,
                episodes, initial_soc, faults)))
    sweep = executor.run(tasks)
    batch = BatchResult(planned=len(tasks), failures=list(sweep.failures))
    for task in tasks:
        if task.key in sweep.results:
            batch.evaluations.append(sweep.results[task.key])
    return batch


def compare_batches(a: BatchResult, b: BatchResult,
                    metric: str = "corrected_mpg") -> float:
    """Mean difference ``a - b`` of one summarised metric."""
    sa = a.summarize()
    sb = b.summarize()
    if metric not in sa:
        raise ConfigurationError(f"unknown metric {metric!r}; "
                                 f"available: {sorted(sa)}")
    return sa[metric].mean - sb[metric].mean
