"""Step-by-step episode simulation.

The simulator owns the physical truth: it replays the drive cycle, hands
the controller only what is observable, applies the executed action to the
battery by Coulomb counting, and collects the traces into an
:class:`EpisodeResult`.
"""

from __future__ import annotations

import numpy as np

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.powertrain.solver import PowertrainSolver
from repro.sim.results import EpisodeResult


class Simulator:
    """Replays drive cycles against a controller."""

    def __init__(self, solver: PowertrainSolver):
        self._solver = solver

    @property
    def solver(self) -> PowertrainSolver:
        """The shared powertrain solver."""
        return self._solver

    def run_episode(self, controller: Controller, cycle: DriveCycle,
                    initial_soc: float = 0.60, learn: bool = True,
                    greedy: bool = False) -> EpisodeResult:
        """Drive ``cycle`` once under ``controller``.

        ``learn`` lets learning controllers update their policy during the
        drive; ``greedy`` forces pure exploitation (evaluation runs use
        ``learn=False, greedy=True``).
        """
        battery = self._solver.battery
        params = battery.params
        state = battery.initial_state(initial_soc)

        steps = len(cycle) - 1
        fuel = np.zeros(steps)
        reward = np.zeros(steps)
        paper_reward = np.zeros(steps)
        soc_trace = np.zeros(steps)
        current = np.zeros(steps)
        gear = np.zeros(steps, dtype=int)
        aux = np.zeros(steps)
        mode = np.zeros(steps, dtype=int)
        feasible = np.zeros(steps, dtype=bool)
        p_dem = np.zeros(steps)
        speeds = np.zeros(steps)

        controller.begin_episode()
        for t, (speed, accel, grade) in enumerate(cycle.steps()):
            soc = battery.soc(state)
            step = controller.act(speed, accel, soc, cycle.dt, grade,
                                  learn=learn, greedy=greedy)
            state = battery.step(state, step.current, cycle.dt)

            speeds[t] = speed
            p_dem[t] = step.power_demand
            fuel[t] = step.fuel_rate
            reward[t] = step.reward
            paper_reward[t] = step.paper_reward
            soc_trace[t] = battery.soc(state)
            current[t] = step.current
            gear[t] = step.gear
            aux[t] = step.aux_power
            mode[t] = step.mode
            feasible[t] = step.feasible
        controller.finish_episode(learn=learn)

        nominal_voltage = float(battery.open_circuit_voltage(
            0.5 * (params.soc_min + params.soc_max)))
        return EpisodeResult(
            cycle_name=cycle.name, dt=cycle.dt, distance=cycle.distance,
            speeds=speeds, power_demand=p_dem, fuel_rate=fuel, reward=reward,
            paper_reward=paper_reward, soc=soc_trace, current=current,
            gear=gear, aux_power=aux, mode=mode, feasible=feasible,
            initial_soc=initial_soc, battery_capacity=params.capacity,
            nominal_voltage=nominal_voltage,
            fuel_energy_density=self._solver.engine.fuel_energy_density)
