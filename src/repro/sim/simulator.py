"""Step-by-step episode simulation.

The simulator owns the physical truth: it replays the drive cycle, hands
the controller only what is observable, applies the executed action to the
battery by Coulomb counting, and collects the traces into an
:class:`EpisodeResult`.

Traces are written into preallocated struct-of-arrays episode buffers
(:class:`repro.sim.buffers.EpisodeBuffers`) that the simulator reuses
across episodes; the returned :class:`EpisodeResult` owns independent
copies, so results remain valid across training loops (see
``docs/PERFORMANCE.md``).

Two robustness layers run inside the step loop:

* **Fault injection** — ``run_episode(..., faults=...)`` drives a
  :class:`repro.faults.harness.FaultHarness` in lockstep with the cycle:
  plant faults degrade the shared solver in place, sensor faults distort
  the observations handed to the controller, and load spikes add an
  unsheddable draw.  When the controller acted on distorted observations
  (or an extra load is present), its resolved step is re-resolved on the
  *true* plant state, so the recorded traces are what physically happened
  rather than what the controller believed.
* **Numerical watchdog** — every executed step is checked for NaN/Inf
  before it is allowed to advance the battery state; a non-finite value
  raises :class:`repro.errors.NumericalError` immediately instead of
  silently poisoning the downstream traces and Q-values.

A third, optional layer is **telemetry**
(:class:`repro.telemetry.Telemetry`): when attached, each drive emits an
``sim.episode`` span, sampled per-step events, an episode summary event,
and step-latency/reward/SoC/shortfall metrics.  Disabled (the default),
the step loop runs the seed code path bit-identically.
"""

from __future__ import annotations

import math
import time

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.errors import ConfigurationError, NumericalError
from repro.powertrain.solver import PowertrainSolver
from repro.sim.buffers import EpisodeBuffers
from repro.sim.results import EpisodeResult
from repro.vehicle.battery import BatteryState


class Simulator:
    """Replays drive cycles against a controller.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`, opt-in) streams
    an ``sim.episode`` span, sampled ``step`` events, and an ``episode``
    summary event per drive, plus step-latency/reward/SoC/shortfall
    metrics.  ``None`` (the default) is a no-op fast path: the step loop
    pays one predictable branch and the traces stay bit-identical to an
    uninstrumented run.
    """

    def __init__(self, solver: PowertrainSolver, telemetry=None):
        self._solver = solver
        self.telemetry = telemetry
        # Struct-of-arrays episode storage, reused across episodes (the
        # step loop writes slots; EpisodeResult gets copies at the end).
        self._buffers = EpisodeBuffers()
        # Harnesses built from bare FaultSchedules, keyed by schedule
        # identity: repeated degraded episodes over the same schedule then
        # reuse one harness instead of re-instantiating it per episode
        # (begin_episode re-seeds the fault RNG, so reuse is reproducible).
        # The stored schedule reference keeps the id stable.
        self._harness_cache = {}

    @property
    def solver(self) -> PowertrainSolver:
        """The shared powertrain solver."""
        return self._solver

    def _fault_harness(self, faults):
        """Normalise the ``faults`` argument to a bound harness (or None)."""
        if faults is None:
            return None
        from repro.faults.harness import FaultHarness
        from repro.faults.schedule import FaultSchedule
        if isinstance(faults, FaultSchedule):
            cached = self._harness_cache.get(id(faults))
            if cached is not None and cached[0] is faults:
                return cached[1]
            harness = FaultHarness(self._solver, faults)
            self._harness_cache[id(faults)] = (faults, harness)
            return harness
        if isinstance(faults, FaultHarness):
            if faults.solver is not self._solver:
                raise ConfigurationError(
                    "the fault harness is bound to a different solver than "
                    "this simulator")
            return faults
        raise ConfigurationError(
            "faults must be a FaultSchedule or a FaultHarness; got "
            f"{type(faults).__name__}")

    @staticmethod
    def _watchdog(t: int, **values: float) -> None:
        """Raise :class:`NumericalError` if any step quantity is non-finite."""
        for name, value in values.items():
            if not math.isfinite(value):
                raise NumericalError(
                    f"numerical watchdog: {name} became non-finite "
                    f"({value!r}) at step {t}")

    def run_episode(self, controller: Controller, cycle: DriveCycle,
                    initial_soc: float = 0.60, learn: bool = True,
                    greedy: bool = False,
                    faults=None) -> EpisodeResult:
        """Drive ``cycle`` once under ``controller``.

        ``learn`` lets learning controllers update their policy during the
        drive; ``greedy`` forces pure exploitation (evaluation runs use
        ``learn=False, greedy=True``).  ``faults`` injects a
        :class:`~repro.faults.schedule.FaultSchedule` or a pre-built
        :class:`~repro.faults.harness.FaultHarness`; the solver is restored
        to its healthy parameters when the episode ends, even on error.
        """
        harness = self._fault_harness(faults)
        battery = self._solver.battery
        state = battery.initial_state(initial_soc)

        steps = len(cycle) - 1
        buffers = self._buffers
        buffers.reserve(steps)

        telemetry = self.telemetry
        span = None
        step_hist = None
        sample_every = 0
        if telemetry is not None:
            from repro.telemetry.metrics import LATENCY_BUCKETS_S
            span = telemetry.tracer.start(
                "sim.episode", cycle=cycle.name, steps=steps,
                initial_soc=float(initial_soc), learn=bool(learn),
                greedy=bool(greedy), faulted=harness is not None)
            step_hist = telemetry.metrics.histogram(
                "sim.step_seconds", buckets=LATENCY_BUCKETS_S)
            sample_every = telemetry.step_sample_every

        controller.begin_episode()
        if harness is not None:
            harness.begin_episode()
        completed = False
        try:
            for t, (speed, accel, grade) in enumerate(cycle.steps()):
                step_start = (time.perf_counter() if step_hist is not None
                              else 0.0)
                if harness is not None:
                    capacity_before = self._solver.battery.params.capacity
                    harness.advance(t * cycle.dt)
                    battery = self._solver.battery
                    capacity = battery.params.capacity
                    if capacity != capacity_before:
                        # Capacity fade rescales the charge so the SoC
                        # *fraction* is continuous: the gauge (and the
                        # operating window, defined in fractions) shrink
                        # with the pack.
                        state = BatteryState(
                            charge=state.charge * capacity / capacity_before)
                    buffers.fault_active[t] = harness.active
                soc = battery.soc(state)

                obs_speed, obs_soc = speed, soc
                if harness is not None and harness.signals_active:
                    obs_speed = harness.observe_speed(speed)
                    obs_soc = harness.observe_soc(soc)

                step = controller.act(obs_speed, accel, obs_soc, cycle.dt,
                                      grade, learn=learn, greedy=greedy)

                exec_current = step.current
                exec_fuel = step.fuel_rate
                exec_aux = step.aux_power
                exec_mode = step.mode
                exec_feasible = step.feasible
                exec_shortfall = step.shortfall
                if harness is not None and harness.signals_active:
                    # The controller resolved its action against distorted
                    # observations (and without the parasitic load); what
                    # physically executes is its commanded action resolved
                    # on the true state with the true bus load.
                    point = self._solver.evaluate(
                        speed, accel, soc, step.current, step.gear,
                        step.aux_power + harness.extra_aux_power(),
                        cycle.dt, grade)
                    exec_current = point.battery_current
                    exec_fuel = point.fuel_rate
                    exec_aux = point.aux_power
                    exec_mode = int(point.mode)
                    exec_feasible = bool(point.feasible)
                    exec_shortfall = float(point.shortfall)

                self._watchdog(t, current=exec_current, fuel_rate=exec_fuel,
                               reward=step.reward, soc=soc)
                state = battery.step(state, exec_current, cycle.dt)
                self._watchdog(t, charge=state.charge)

                buffers.speeds[t] = speed
                buffers.power_demand[t] = step.power_demand
                buffers.fuel_rate[t] = exec_fuel
                buffers.reward[t] = step.reward
                buffers.paper_reward[t] = step.paper_reward
                buffers.soc[t] = battery.soc(state)
                buffers.current[t] = exec_current
                buffers.gear[t] = step.gear
                buffers.aux_power[t] = exec_aux
                buffers.mode[t] = exec_mode
                buffers.feasible[t] = exec_feasible
                buffers.shortfall[t] = exec_shortfall
                if telemetry is not None:
                    step_hist.observe(time.perf_counter() - step_start)
                    if t % sample_every == 0:
                        telemetry.event(
                            "step", t=t, speed=float(speed),
                            soc=float(buffers.soc[t]),
                            reward=float(step.reward),
                            current=float(exec_current))
            controller.finish_episode(learn=learn)
            completed = True
        finally:
            if harness is not None:
                harness.restore()
            if span is not None:
                telemetry.tracer.end(
                    span, outcome="ok" if completed else "error")

        # A safety-supervised controller exposes the episode's guard/mode
        # journal after finish_episode; attach it so the CLI, robustness
        # harness, and analysis layers see it (duck-typed so the simulator
        # stays import-independent of repro.safety).
        safety_report = None
        report_hook = getattr(controller, "episode_safety_report", None)
        if callable(report_hook):
            safety_report = report_hook()

        battery = self._solver.battery
        params = battery.params
        nominal_voltage = float(battery.open_circuit_voltage(
            0.5 * (params.soc_min + params.soc_max)))
        # The buffers are reused by the next episode; the result owns copies.
        result = EpisodeResult(
            cycle_name=cycle.name, dt=cycle.dt, distance=cycle.distance,
            speeds=buffers.take("speeds", steps),
            power_demand=buffers.take("power_demand", steps),
            fuel_rate=buffers.take("fuel_rate", steps),
            reward=buffers.take("reward", steps),
            paper_reward=buffers.take("paper_reward", steps),
            soc=buffers.take("soc", steps),
            current=buffers.take("current", steps),
            gear=buffers.take("gear", steps),
            aux_power=buffers.take("aux_power", steps),
            mode=buffers.take("mode", steps),
            feasible=buffers.take("feasible", steps),
            initial_soc=initial_soc, battery_capacity=params.capacity,
            nominal_voltage=nominal_voltage,
            fuel_energy_density=self._solver.engine.fuel_energy_density,
            fault_active=(buffers.take("fault_active", steps)
                          if harness is not None else None),
            shortfall=buffers.take("shortfall", steps),
            safety=safety_report)
        if telemetry is not None:
            self._record_episode(telemetry, result)
        return result

    @staticmethod
    def _record_episode(telemetry, result: EpisodeResult) -> None:
        """Emit the episode summary event and update the run metrics."""
        steps = len(result.soc)
        telemetry.event(
            "episode", cycle=result.cycle_name, steps=int(steps),
            initial_soc=float(result.initial_soc),
            total_reward=float(result.total_reward),
            total_fuel_g=float(result.total_fuel),
            final_soc=float(result.final_soc),
            total_shortfall=float(result.total_shortfall))
        metrics = telemetry.metrics
        metrics.counter("sim.episodes").inc()
        metrics.counter("sim.steps").inc(steps)
        metrics.counter("sim.fallback_steps").inc(result.fallback_steps)
        metrics.counter("sim.total_shortfall").inc(result.total_shortfall)
        if result.fault_active is not None:
            metrics.counter("sim.faulted_steps").inc(result.faulted_steps)
        metrics.gauge("sim.last_episode_reward").set(result.total_reward)
        metrics.gauge("sim.final_soc").set(result.final_soc)
