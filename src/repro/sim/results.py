"""Per-episode simulation results.

Everything the analysis layer and the benchmarks need: per-step traces for
plotting and invariant checks, plus trip-level aggregates (fuel, MPG,
cumulative rewards, SoC accounting) with the standard charge-sustaining
fuel correction for fair comparisons between controllers that end an
episode at different states of charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.units import mpg as mpg_of


@dataclass
class EpisodeResult:
    """Traces and aggregates of one simulated drive."""

    cycle_name: str
    """Name of the driven cycle."""

    dt: float
    """Simulation step, s."""

    distance: float
    """Trip distance, m."""

    speeds: np.ndarray
    """Per-step vehicle speed, m/s."""

    power_demand: np.ndarray
    """Per-step propulsion power demand, W."""

    fuel_rate: np.ndarray
    """Per-step fuel mass-flow, g/s."""

    reward: np.ndarray
    """Per-step learning reward (penalties included)."""

    paper_reward: np.ndarray
    """Per-step unpenalised reward (the paper's Table 2 quantity)."""

    soc: np.ndarray
    """Per-step post-step state of charge (fraction)."""

    current: np.ndarray
    """Per-step battery current, A."""

    gear: np.ndarray
    """Per-step executed gear index."""

    aux_power: np.ndarray
    """Per-step auxiliary draw, W."""

    mode: np.ndarray
    """Per-step operating-mode id."""

    feasible: np.ndarray
    """Per-step flag; False marks fallback steps."""

    initial_soc: float
    """State of charge at departure (fraction)."""

    battery_capacity: float
    """Pack capacity, Coulombs (for SoC-correction accounting)."""

    nominal_voltage: float
    """Pack nominal voltage, V (for SoC-correction accounting)."""

    fuel_energy_density: float
    """Fuel lower heating value, J/g."""

    fault_active: Optional[np.ndarray] = None
    """Per-step flag marking steps driven with at least one fault at
    nonzero severity; ``None`` for runs without fault injection."""

    shortfall: Optional[np.ndarray] = None
    """Per-step undelivered shaft torque, N·m (zero where the demand was
    met; ``None`` for results predating the shortfall trace)."""

    safety: Optional["SafetyReport"] = None  # noqa: F821 — see below
    """The :class:`repro.safety.SafetyReport` of the episode when the
    controller was wrapped in a safety supervisor; ``None`` otherwise.
    (Forward-referenced to keep :mod:`repro.sim` import-independent of
    :mod:`repro.safety`.)"""

    # --- aggregates -------------------------------------------------------------

    @property
    def total_fuel(self) -> float:
        """Fuel burned over the trip, g."""
        return float(np.sum(self.fuel_rate) * self.dt)

    @property
    def total_reward(self) -> float:
        """Cumulative learning reward."""
        return float(np.sum(self.reward))

    @property
    def total_paper_reward(self) -> float:
        """Cumulative unpenalised reward — the quantity in the paper's Table 2."""
        return float(np.sum(self.paper_reward))

    @property
    def final_soc(self) -> float:
        """State of charge at the end of the trip (fraction)."""
        return float(self.soc[-1]) if len(self.soc) else self.initial_soc

    @property
    def soc_deficit_energy(self) -> float:
        """Electrical energy the trip drew from (positive) or banked into
        (negative) the pack, J, relative to the initial charge."""
        delta_charge = (self.initial_soc - self.final_soc) * self.battery_capacity
        return delta_charge * self.nominal_voltage

    def corrected_fuel(self, conversion_efficiency: float = 0.30) -> float:
        """Charge-sustaining corrected fuel mass, g.

        Adds (or credits) the fuel the engine would need to restore the
        battery to its initial charge, assuming it converts fuel energy to
        stored electricity at ``conversion_efficiency`` — the standard SAE
        J1711-style correction that makes fuel figures comparable between
        controllers with different final SoC.
        """
        if not 0.0 < conversion_efficiency <= 1.0:
            raise ConfigurationError("conversion efficiency must be in (0, 1]")
        extra = self.soc_deficit_energy / (conversion_efficiency
                                           * self.fuel_energy_density)
        return max(self.total_fuel + extra, 0.0)

    def corrected_paper_reward(self,
                               conversion_efficiency: float = 0.30) -> float:
        """Charge-corrected cumulative reward.

        The paper's cumulative reward ``sum((-mdot_f + w f_aux) dT)`` with
        the fuel term replaced by the charge-sustaining corrected fuel —
        i.e. the reward is additionally charged (or credited) for the
        battery energy the trip consumed (banked) relative to its initial
        charge.  Comparisons between controllers whose final SoC differs
        are only meaningful on this corrected quantity.
        """
        return self.total_paper_reward - (
            self.corrected_fuel(conversion_efficiency) - self.total_fuel)

    @property
    def mpg(self) -> float:
        """Raw miles-per-gallon of the trip (no SoC correction)."""
        return mpg_of(self.distance, self.total_fuel)

    def corrected_mpg(self, conversion_efficiency: float = 0.30) -> float:
        """Charge-sustaining corrected miles-per-gallon."""
        return mpg_of(self.distance, self.corrected_fuel(conversion_efficiency))

    @property
    def fallback_steps(self) -> int:
        """Number of steps executed through the fallback path."""
        return int(np.sum(~self.feasible))

    @property
    def faulted_steps(self) -> int:
        """Number of steps driven with an active fault (0 when the run had
        no fault injection)."""
        if self.fault_active is None:
            return 0
        return int(np.sum(self.fault_active))

    def window_violation_steps(self, soc_min: float, soc_max: float,
                               tolerance: float = 1e-9) -> int:
        """Steps whose post-step SoC sits outside ``[soc_min, soc_max]``.

        The window is passed in (rather than stored) because degraded-mode
        runs are judged against the *healthy* vehicle's charge-sustaining
        window.
        """
        return int(np.sum((self.soc < soc_min - tolerance)
                          | (self.soc > soc_max + tolerance)))

    @property
    def total_shortfall(self) -> float:
        """Cumulative undelivered shaft torque over the trip, N·m·steps
        (0.0 when the result carries no shortfall trace)."""
        if self.shortfall is None:
            return 0.0
        return float(np.sum(self.shortfall))

    @property
    def mean_aux_power(self) -> float:
        """Average auxiliary draw over the trip, W."""
        return float(np.mean(self.aux_power)) if len(self.aux_power) else 0.0

    def mode_fractions(self) -> Dict[int, float]:
        """Share of steps spent in each operating mode."""
        total = len(self.mode)
        if total == 0:
            return {}
        ids, counts = np.unique(self.mode, return_counts=True)
        return {int(i): float(c) / total for i, c in zip(ids, counts)}

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.cycle_name}: fuel={self.total_fuel:.1f}g "
                f"mpg={self.corrected_mpg():.1f} "
                f"reward={self.total_paper_reward:.2f} "
                f"SoC {self.initial_soc:.2f}->{self.final_soc:.2f} "
                f"fallbacks={self.fallback_steps}")
