"""Robustness sweeps: controllers × fault scenarios, with graceful-
degradation metrics.

The protocol is the standard one for degraded-mode studies: every
controller is prepared (trained, tuned) on the *healthy* vehicle, then
evaluated greedily under each fault scenario it never saw coming.  Each
run is scored against the same controller's healthy drive:

* **MPG retention** — charge-corrected MPG under fault divided by the
  healthy figure (1.0 = no degradation; the headline metric),
* **SoC-window violations** — steps spent outside the healthy vehicle's
  charge-sustaining window,
* **fallback steps** — steps executed through the solver's graceful
  fallback because no commanded action was feasible,
* **fault activations** — how many times the schedule flipped from
  healthy to faulted during the drive.

Every run must complete with finite traces — the simulator's numerical
watchdog guarantees an exception, not a silent NaN, otherwise.

The grid executes through the supervised executor (:mod:`repro.exec`).
The default is the historical serial in-process loop; pass a
:class:`~repro.exec.Supervisor` to parallelise across isolated workers
and to survive individual run failures — quarantined runs are reported
in :attr:`RobustnessReport.failures` and the table covers the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.errors import ConfigurationError
from repro.exec import Supervisor, Task, TaskFailure
from repro.faults.harness import FaultHarness
from repro.faults.scenarios import Scenario
from repro.sim.results import EpisodeResult
from repro.sim.simulator import Simulator

_HEALTHY = "(healthy)"


@dataclass(frozen=True)
class RobustnessRow:
    """Degradation metrics of one (controller, scenario) run."""

    controller: str
    """Controller name."""

    scenario: str
    """Scenario name (``"(healthy)"`` for the fault-free reference)."""

    corrected_mpg: float
    """Charge-corrected MPG of the run."""

    mpg_retention: float
    """``corrected_mpg`` relative to the same controller's healthy run."""

    window_violations: int
    """Steps outside the healthy charge-sustaining SoC window."""

    fallback_steps: int
    """Steps executed through the solver's fallback path."""

    fault_activations: int
    """Healthy-to-faulted transitions of the schedule during the drive."""

    faulted_steps: int
    """Steps driven with an active fault."""

    final_soc: float
    """State of charge at the end of the drive."""

    finite: bool
    """True when every recorded trace is finite (watchdog held)."""

    interventions: int = 0
    """Guard interventions of the run (0 for unguarded runs).  The guard
    fields default so rows persisted by pre-guard manifests still decode."""

    intervention_rate: float = 0.0
    """Interventions per mediated step (0.0 for unguarded runs)."""

    time_in_mode: Optional[Dict[str, int]] = None
    """Steps per supervisor health mode (None for unguarded runs)."""

    final_mode: str = ""
    """Supervisor health mode at the end of the run ("" when unguarded)."""


@dataclass
class RobustnessReport:
    """All rows of one robustness sweep."""

    rows: List[RobustnessRow] = field(default_factory=list)
    """One row per *surviving* (controller, scenario) run, healthy rows
    included."""

    failures: List[TaskFailure] = field(default_factory=list)
    """Quarantined runs (and runs skipped because their healthy reference
    was quarantined); empty for an all-successful sweep."""

    planned: int = 0
    """Runs the sweep set out to perform (0 for hand-built reports)."""

    @property
    def coverage(self) -> float:
        """Surviving fraction of the planned grid (1.0 when hand-built)."""
        if self.planned <= 0:
            return 1.0
        return len(self.rows) / self.planned

    def for_scenario(self, scenario: str) -> List[RobustnessRow]:
        """Rows of one scenario across controllers."""
        return [r for r in self.rows if r.scenario == scenario]

    def worst_retention(self) -> float:
        """Smallest MPG retention across all faulted runs."""
        faulted = [r.mpg_retention for r in self.rows
                   if r.scenario != _HEALTHY]
        if not faulted:
            raise ConfigurationError("report holds no faulted runs")
        return min(faulted)

    def limp_home_retention(self) -> float:
        """Smallest MPG retention among runs that spent steps in LIMP_HOME.

        The guarded sweep's headline: how much fuel economy the fallback
        controller preserves when the supervisor takes the learned policy
        out of the loop."""
        limp = [r.mpg_retention for r in self.rows
                if r.time_in_mode is not None
                and r.time_in_mode.get("LIMP_HOME", 0) > 0]
        if not limp:
            raise ConfigurationError(
                "report holds no runs that entered LIMP_HOME (was the "
                "sweep run with guard=True and severe enough scenarios?)")
        return min(limp)

    def render(self) -> str:
        """Human-readable sweep table (guard columns appear when any row
        carries supervisor metrics)."""
        guarded = any(r.time_in_mode is not None for r in self.rows)
        header = (
            f"{'scenario':15s} {'controller':12s} {'mpg':>7s} {'retain':>7s} "
            f"{'windowV':>8s} {'fallback':>9s} {'faulted':>8s} "
            f"{'activ.':>6s} {'SoC_f':>6s}")
        if guarded:
            header += f" {'interv':>7s} {'i.rate':>7s} {'mode_f':>9s}"
        lines = [
            "Robustness sweep: graceful degradation under injected faults",
            "(retention = corrected MPG vs the same controller, healthy)",
            "",
            header,
        ]
        for row in self.rows:
            line = (
                f"{row.scenario:15s} {row.controller:12s} "
                f"{row.corrected_mpg:7.1f} {row.mpg_retention:7.2f} "
                f"{row.window_violations:8d} {row.fallback_steps:9d} "
                f"{row.faulted_steps:8d} {row.fault_activations:6d} "
                f"{row.final_soc:6.2f}")
            if guarded:
                line += (f" {row.interventions:7d} "
                         f"{row.intervention_rate:7.3f} "
                         f"{row.final_mode or '-':>9s}")
            lines.append(line)
        if self.failures:
            lines.append("")
            lines.append(f"coverage: {len(self.rows)}/{self.planned} runs "
                         f"({len(self.failures)} quarantined)")
            for failure in self.failures:
                lines.append(f"  quarantined: {failure.describe()}")
        return "\n".join(lines)


def _finite(result: EpisodeResult) -> bool:
    return bool(np.all(np.isfinite(result.soc))
                and np.all(np.isfinite(result.fuel_rate))
                and np.all(np.isfinite(result.current)))


def _row(name: str, scenario: str, result: EpisodeResult, healthy_mpg: float,
         soc_min: float, soc_max: float, activations: int) -> RobustnessRow:
    mpg = result.corrected_mpg()
    safety = result.safety
    return RobustnessRow(
        controller=name, scenario=scenario, corrected_mpg=mpg,
        mpg_retention=mpg / healthy_mpg if healthy_mpg > 0 else 0.0,
        window_violations=result.window_violation_steps(soc_min, soc_max),
        fallback_steps=result.fallback_steps,
        fault_activations=activations,
        faulted_steps=result.faulted_steps,
        final_soc=result.final_soc,
        finite=_finite(result),
        interventions=safety.interventions if safety else 0,
        intervention_rate=safety.intervention_rate if safety else 0.0,
        time_in_mode=safety.time_in_mode() if safety else None,
        final_mode=safety.final_mode if safety else "")


def _guarded(controller: Controller, simulator: Simulator, guard: bool,
             supervisor_config) -> Controller:
    """Wrap one prepared controller for a guarded run (fresh supervisor per
    run, so journals never leak between grid cells).  The simulator's
    telemetry (if any) is shared, so guard interventions land in the same
    event stream as the episodes they happened in."""
    if not guard:
        return controller
    from repro.safety import SafetySupervisor
    return SafetySupervisor(controller, simulator.solver,
                            config=supervisor_config,
                            telemetry=simulator.telemetry)


def _healthy_run(simulator: Simulator, name: str, controller: Controller,
                 cycle: DriveCycle, initial_soc: float,
                 soc_min: float, soc_max: float, guard: bool = False,
                 supervisor_config=None) -> RobustnessRow:
    """Fault-free reference drive of one controller → its healthy row."""
    driver = _guarded(controller, simulator, guard, supervisor_config)
    healthy = simulator.run_episode(driver, cycle,
                                    initial_soc=initial_soc,
                                    learn=False, greedy=True)
    return _row(name, _HEALTHY, healthy, healthy.corrected_mpg(),
                soc_min, soc_max, activations=0)


def _faulted_run(simulator: Simulator, name: str, controller: Controller,
                 scenario_name: str, scenario: Scenario, cycle: DriveCycle,
                 initial_soc: float, seed: int, healthy_mpg: float,
                 soc_min: float, soc_max: float, guard: bool = False,
                 supervisor_config=None) -> RobustnessRow:
    """One degraded-mode drive → its scored row."""
    harness = FaultHarness(simulator.solver, scenario.schedule, seed=seed)
    driver = _guarded(controller, simulator, guard, supervisor_config)
    result = simulator.run_episode(driver, cycle,
                                   initial_soc=initial_soc,
                                   learn=False, greedy=True,
                                   faults=harness)
    return _row(name, scenario_name, result, healthy_mpg,
                soc_min, soc_max, activations=harness.activations)


def _task_spec(kind: str, name: str, scenario: str, cycle: DriveCycle,
               initial_soc: float, seed: int, guard: bool) -> dict:
    spec = {"kind": kind, "controller": name, "scenario": scenario,
            "cycle": cycle.name, "initial_soc": float(initial_soc),
            "seed": int(seed)}
    if guard:
        # Only present on guarded sweeps so pre-guard manifests keep their
        # content hashes (an unguarded resume must still hit its cache).
        spec["guard"] = True
    return spec


def run_robustness(simulator: Simulator,
                   controllers: Mapping[str, Controller],
                   scenarios: Mapping[str, Scenario],
                   cycle: DriveCycle, initial_soc: float = 0.60,
                   seed: int = 0,
                   executor: Optional[Supervisor] = None,
                   guard: bool = False,
                   supervisor_config=None) -> RobustnessReport:
    """Evaluate every controller under every fault scenario.

    ``controllers`` maps names to *prepared* controllers bound to the
    simulator's solver (train learning controllers beforehand — on the
    healthy vehicle).  Each controller first drives the cycle fault-free
    for its reference figures, then once per scenario; ``seed`` fixes the
    fault realisation (sensor noise, dropouts) across controllers so the
    comparison is paired.

    ``executor`` selects the execution strategy (see :mod:`repro.exec`).
    ``None`` keeps the historical serial in-process loop, failures
    raising.  A quarantine-mode :class:`~repro.exec.Supervisor` runs the
    grid fault-tolerantly (optionally in parallel workers): the healthy
    references run first, then every (controller, scenario) cell;
    quarantined cells — and cells skipped because their healthy reference
    was lost — are reported in :attr:`RobustnessReport.failures`.

    ``guard=True`` drives every run through a fresh
    :class:`repro.safety.SafetySupervisor` (thresholds from
    ``supervisor_config``): rows then carry intervention counts, time in
    each health mode, and the final mode, and
    :meth:`RobustnessReport.limp_home_retention` becomes meaningful.  A
    run the supervisor halts raises
    :class:`~repro.errors.SafetyHaltError` — structured, so a
    quarantine-mode executor records it as a failure instead of dying.
    """
    if not controllers:
        raise ConfigurationError("need at least one controller")
    if not scenarios:
        raise ConfigurationError("need at least one fault scenario")
    if executor is None:
        executor = Supervisor(failure_mode="raise")
    battery = simulator.solver.params.battery
    soc_min, soc_max = battery.soc_min, battery.soc_max

    healthy_tasks = [
        Task(key=f"{name}/{_HEALTHY}",
             spec=_task_spec("robustness-healthy", name, _HEALTHY, cycle,
                             initial_soc, seed, guard),
             fn=lambda name=name, controller=controller: _healthy_run(
                 simulator, name, controller, cycle, initial_soc,
                 soc_min, soc_max, guard, supervisor_config))
        for name, controller in controllers.items()]
    healthy_sweep = executor.run(healthy_tasks)

    report = RobustnessReport(
        planned=len(controllers) * (len(scenarios) + 1),
        failures=list(healthy_sweep.failures))
    faulted_tasks = []
    for name, controller in controllers.items():
        healthy_row = healthy_sweep.results.get(f"{name}/{_HEALTHY}")
        if healthy_row is None:
            # The reference drive was quarantined: retention is undefined
            # for this controller, so its grid cells are skipped — and
            # said so, instead of silently shrinking the table.
            report.failures.extend(
                TaskFailure(key=f"{name}/{scenario_name}", kind="skipped",
                            exception_type="", traceback="", attempts=0,
                            elapsed=0.0,
                            message="healthy reference was quarantined")
                for scenario_name in scenarios)
            continue
        healthy_mpg = healthy_row.corrected_mpg
        for scenario_name, scenario in scenarios.items():
            faulted_tasks.append(Task(
                key=f"{name}/{scenario_name}",
                spec=_task_spec("robustness", name, scenario_name, cycle,
                                initial_soc, seed, guard),
                fn=lambda name=name, controller=controller,
                scenario_name=scenario_name, scenario=scenario,
                healthy_mpg=healthy_mpg: _faulted_run(
                    simulator, name, controller, scenario_name, scenario,
                    cycle, initial_soc, seed, healthy_mpg,
                    soc_min, soc_max, guard, supervisor_config)))
    faulted_sweep = executor.run(faulted_tasks)
    report.failures.extend(faulted_sweep.failures)

    for name in controllers:
        healthy_row = healthy_sweep.results.get(f"{name}/{_HEALTHY}")
        if healthy_row is None:
            continue
        report.rows.append(healthy_row)
        for scenario_name in scenarios:
            row = faulted_sweep.results.get(f"{name}/{scenario_name}")
            if row is not None:
                report.rows.append(row)
    return report
