"""Simulation harness: episode runner, result accumulation, training loop.

The simulator replays a drive cycle step by step against any controller
implementing the :class:`repro.control.base.Controller` protocol (the RL
agent, the rule-based baseline, ECMS, ...), tracking battery charge by
Coulomb counting and accumulating fuel, reward, and diagnostic traces.
"""

from repro.sim.buffers import EpisodeBuffers
from repro.sim.results import EpisodeResult
from repro.sim.simulator import Simulator
from repro.sim.training import TrainingRun, evaluate, evaluate_stationary, train
from repro.sim.batch import BatchResult, Summary, compare_batches, run_batch
from repro.sim.robustness import (
    RobustnessReport,
    RobustnessRow,
    run_robustness,
)

__all__ = [
    "EpisodeBuffers",
    "EpisodeResult",
    "Simulator",
    "TrainingRun",
    "train",
    "evaluate",
    "evaluate_stationary",
    "BatchResult",
    "Summary",
    "run_batch",
    "compare_batches",
    "RobustnessReport",
    "RobustnessRow",
    "run_robustness",
]
