"""Training callbacks: progress, early stopping, checkpointing.

:func:`repro.sim.training.train` accepts a single ``callback(episode,
result)``; this module provides composable implementations — a progress
printer, reward-plateau early stopping (raise :class:`StopTraining`), and a
best-policy checkpointer built on :mod:`repro.rl.persistence` — plus
:class:`CallbackList` to chain them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.rl.agent import JointControlAgent
from repro.rl.persistence import save_policy
from repro.sim.results import EpisodeResult


class StopTraining(Exception):
    """Raised by a callback to end training early (caught by callers that
    opt into early stopping via :func:`train_with_callbacks`)."""


class CallbackList:
    """Invoke several callbacks in order."""

    def __init__(self, callbacks: Sequence[Callable[[int, EpisodeResult],
                                                    None]]):
        self._callbacks = list(callbacks)

    def __call__(self, episode: int, result: EpisodeResult) -> None:
        for callback in self._callbacks:
            callback(episode, result)


class ProgressPrinter:
    """Print a one-line summary every ``every`` episodes."""

    def __init__(self, every: int = 10, printer: Callable[[str], None] = print):
        if every < 1:
            raise ConfigurationError("print interval must be >= 1")
        self._every = every
        self._print = printer

    def __call__(self, episode: int, result: EpisodeResult) -> None:
        if (episode + 1) % self._every == 0:
            self._print(
                f"episode {episode + 1:4d}: reward {result.total_reward:9.2f}"
                f"  fuel {result.total_fuel:7.1f} g"
                f"  SoC -> {result.final_soc:.3f}")


class EarlyStopping:
    """Stop when the episode reward stops improving.

    Tracks the best cumulative learning reward seen; after ``patience``
    consecutive episodes without at least ``min_delta`` improvement, raises
    :class:`StopTraining`.
    """

    def __init__(self, patience: int = 10, min_delta: float = 1.0):
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        if min_delta < 0:
            raise ConfigurationError("min_delta cannot be negative")
        self._patience = patience
        self._min_delta = min_delta
        self.best: Optional[float] = None
        self.stale = 0
        self.stopped_at: Optional[int] = None

    def __call__(self, episode: int, result: EpisodeResult) -> None:
        reward = result.total_reward
        if self.best is None or reward > self.best + self._min_delta:
            self.best = reward
            self.stale = 0
        else:
            self.stale += 1
            if self.stale >= self._patience:
                self.stopped_at = episode
                raise StopTraining(
                    f"no reward improvement in {self._patience} episodes")


class BestPolicyCheckpoint:
    """Persist the agent's policy whenever the episode reward improves."""

    def __init__(self, agent: JointControlAgent, path: Union[str, Path]):
        self._agent = agent
        self._path = Path(path)
        self.best: Optional[float] = None
        self.saves = 0

    def __call__(self, episode: int, result: EpisodeResult) -> None:
        if self.best is None or result.total_reward > self.best:
            self.best = result.total_reward
            save_policy(self._agent, self._path)
            self.saves += 1


def train_with_callbacks(simulator, controller, cycle, episodes: int,
                         callbacks: Sequence[Callable[[int, EpisodeResult],
                                                      None]],
                         initial_soc: float = 0.60):
    """Like :func:`repro.sim.training.train`, but :class:`StopTraining`
    raised by a callback ends training cleanly (the greedy evaluation still
    runs)."""
    from repro.sim.training import TrainingRun, evaluate

    chain = CallbackList(callbacks)
    telemetry = simulator.telemetry
    span = None
    if telemetry is not None:
        span = telemetry.tracer.start(
            "train.run", cycle=cycle.name, episodes=episodes,
            first_episode=0, resumed=False)
    run = TrainingRun()
    completed = False
    try:
        for ep in range(episodes):
            result = simulator.run_episode(controller, cycle,
                                           initial_soc=initial_soc,
                                           learn=True)
            run.episodes.append(result)
            if telemetry is not None:
                telemetry.event(
                    "training_episode", episode=ep,
                    total_reward=float(result.total_reward),
                    final_soc=float(result.final_soc))
            try:
                chain(ep, result)
            except StopTraining:
                break
        run.evaluation = evaluate(simulator, controller, cycle,
                                  initial_soc=initial_soc)
        completed = True
    finally:
        if span is not None:
            telemetry.tracer.end(
                span, trained=len(run.episodes),
                outcome="ok" if completed else "error")
    return run
