"""Training and evaluation loops for learning controllers.

Training repeats the drive cycle for a number of episodes with learning and
annealed exploration enabled, then evaluates the greedy policy with
learning switched off.  The per-episode histories let the ablation benches
plot convergence (reward versus episode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from typing import Callable, List, Optional

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.sim.results import EpisodeResult
from repro.sim.simulator import Simulator


@dataclass
class TrainingRun:
    """Outcome of a training session."""

    episodes: List[EpisodeResult] = field(default_factory=list)
    """Per-episode results, in order, with learning enabled."""

    evaluation: Optional[EpisodeResult] = None
    """Greedy-policy evaluation after training."""

    @property
    def learning_curve(self) -> List[float]:
        """Cumulative learning reward per training episode."""
        return [e.total_reward for e in self.episodes]

    @property
    def paper_reward_curve(self) -> List[float]:
        """Cumulative unpenalised reward per training episode."""
        return [e.total_paper_reward for e in self.episodes]


def train(simulator: Simulator, controller: Controller, cycle: DriveCycle,
          episodes: int = 30, initial_soc: float = 0.60,
          initial_soc_jitter: float = 0.10,
          evaluate_after: bool = True,
          callback: Optional[Callable[[int, EpisodeResult], None]] = None,
          seed: int = 0) -> TrainingRun:
    """Train ``controller`` on ``cycle`` for ``episodes`` drives.

    Training episodes use *exploring starts*: the initial state of charge
    is drawn uniformly from ``initial_soc +- initial_soc_jitter`` (clipped
    to the battery window with margin) so the Q-table is trained across the
    whole charge range rather than only along the trajectory from one
    nominal start — without this, the policy is arbitrary in
    never-visited SoC regions.  Pass ``initial_soc_jitter=0`` for strictly
    repeatable single-start training.

    ``callback(episode_index, result)`` runs after each episode (progress
    reporting, early stopping by raising, ...).  When ``evaluate_after`` is
    set, a final greedy non-learning drive from the nominal ``initial_soc``
    is recorded in ``evaluation``.
    """
    if episodes < 1:
        raise ValueError("need at least one training episode")
    if initial_soc_jitter < 0:
        raise ValueError("SoC jitter cannot be negative")
    battery = simulator.solver.params.battery
    lo = battery.soc_min + 0.03
    hi = battery.soc_max - 0.03
    rng = np.random.default_rng(seed)
    run = TrainingRun()
    for ep in range(episodes):
        if initial_soc_jitter > 0:
            start = float(np.clip(
                initial_soc + rng.uniform(-initial_soc_jitter,
                                          initial_soc_jitter), lo, hi))
        else:
            start = initial_soc
        result = simulator.run_episode(controller, cycle,
                                       initial_soc=start, learn=True)
        run.episodes.append(result)
        if callback is not None:
            callback(ep, result)
    if evaluate_after:
        run.evaluation = evaluate(simulator, controller, cycle,
                                  initial_soc=initial_soc)
    return run


def evaluate(simulator: Simulator, controller: Controller, cycle: DriveCycle,
             initial_soc: float = 0.60) -> EpisodeResult:
    """One greedy, non-learning drive of ``cycle`` under ``controller``."""
    return simulator.run_episode(controller, cycle, initial_soc=initial_soc,
                                 learn=False, greedy=True)


def evaluate_stationary(simulator: Simulator, controller: Controller,
                        cycle: DriveCycle, initial_soc: float = 0.60,
                        settle_passes: int = 1) -> EpisodeResult:
    """Greedy evaluation started at the controller's stationary SoC.

    Every controller settles to its own state-of-charge operating band; a
    drive started away from that band banks or drains charge that the
    cumulative reward (the paper's Table 2 metric) does not account for.
    This helper first drives ``settle_passes`` throwaway passes to let the
    SoC converge, then reports a drive started exactly where the previous
    one ended — so the reported drive is charge-neutral up to the policy's
    own cycle-to-cycle ripple, and cumulative rewards are comparable across
    controllers.
    """
    if settle_passes < 1:
        raise ValueError("need at least one settling pass")
    soc = initial_soc
    for _ in range(settle_passes):
        warmup = simulator.run_episode(controller, cycle, initial_soc=soc,
                                       learn=False, greedy=True)
        soc = warmup.final_soc
    return simulator.run_episode(controller, cycle, initial_soc=soc,
                                 learn=False, greedy=True)
