"""Training and evaluation loops for learning controllers.

Training repeats the drive cycle for a number of episodes with learning and
annealed exploration enabled, then evaluates the greedy policy with
learning switched off.  The per-episode histories let the ablation benches
plot convergence (reward versus episode).

Every episode streams through the simulator's reusable struct-of-arrays
buffers (:mod:`repro.sim.buffers`); the stored :class:`EpisodeResult`
objects own independent copies, and :meth:`TrainingRun.curves` exposes
the whole run as index-aligned arrays for machine-readable reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
from typing import Callable, List, Optional, Union

from repro.control.base import Controller
from repro.cycles.cycle import DriveCycle
from repro.errors import CheckpointError, ConfigurationError
from repro.sim.results import EpisodeResult
from repro.sim.simulator import Simulator


@dataclass
class TrainingRun:
    """Outcome of a training session."""

    episodes: List[EpisodeResult] = field(default_factory=list)
    """Per-episode results, in order, with learning enabled."""

    evaluation: Optional[EpisodeResult] = None
    """Greedy-policy evaluation after training."""

    @property
    def learning_curve(self) -> List[float]:
        """Cumulative learning reward per training episode."""
        return [e.total_reward for e in self.episodes]

    @property
    def paper_reward_curve(self) -> List[float]:
        """Cumulative unpenalised reward per training episode."""
        return [e.total_paper_reward for e in self.episodes]

    def curves(self) -> dict:
        """Per-episode training trajectory as struct-of-arrays.

        One float64 array per figure of merit (``reward``,
        ``paper_reward``, ``fuel_g``, ``final_soc``, ``fallback_steps``),
        index-aligned with :attr:`episodes` — the machine-readable form
        the benches and the perf trajectory emit.
        """
        n = len(self.episodes)
        return {
            "reward": np.fromiter(
                (e.total_reward for e in self.episodes), float, count=n),
            "paper_reward": np.fromiter(
                (e.total_paper_reward for e in self.episodes), float,
                count=n),
            "fuel_g": np.fromiter(
                (e.total_fuel for e in self.episodes), float, count=n),
            "final_soc": np.fromiter(
                (e.final_soc for e in self.episodes), float, count=n),
            "fallback_steps": np.fromiter(
                (e.fallback_steps for e in self.episodes), float, count=n),
        }


def _checkpoint_agent(controller: Controller):
    """The checkpointable agent behind a controller, or raise."""
    agent = getattr(controller, "agent", None)
    if agent is None or not hasattr(agent, "learner"):
        raise CheckpointError(
            "checkpointing requires a learning controller exposing its "
            "agent (e.g. RLController); got "
            f"{type(controller).__name__}")
    return agent


def train(simulator: Simulator, controller: Controller, cycle: DriveCycle,
          episodes: int = 30, initial_soc: float = 0.60,
          initial_soc_jitter: float = 0.10,
          evaluate_after: bool = True,
          callback: Optional[Callable[[int, EpisodeResult], None]] = None,
          seed: int = 0,
          checkpoint_path: Optional[Union[str, Path]] = None,
          checkpoint_every: int = 1,
          resume_from: Optional[Union[str, Path]] = None) -> TrainingRun:
    """Train ``controller`` on ``cycle`` for ``episodes`` drives.

    Training episodes use *exploring starts*: the initial state of charge
    is drawn uniformly from ``initial_soc +- initial_soc_jitter`` (clipped
    to the battery window with margin) so the Q-table is trained across the
    whole charge range rather than only along the trajectory from one
    nominal start — without this, the policy is arbitrary in
    never-visited SoC regions.  Pass ``initial_soc_jitter=0`` for strictly
    repeatable single-start training.

    ``callback(episode_index, result)`` runs after each episode (progress
    reporting, early stopping by raising, ...).  When ``evaluate_after`` is
    set, a final greedy non-learning drive from the nominal ``initial_soc``
    is recorded in ``evaluation``.

    **Crash safety** — ``checkpoint_path`` writes an atomic training
    checkpoint (:func:`repro.rl.persistence.save_checkpoint`) every
    ``checkpoint_every`` completed episodes.  ``resume_from`` restores one
    and continues training toward the same ``episodes`` total; because the
    checkpoint captures every RNG state the loop consumes, a killed run
    resumed this way produces a final policy *bit-identical* to the
    uninterrupted run (build the resumed controller with the same seed and
    configuration).  ``TrainingRun.episodes`` then holds only the
    post-resume episodes.
    """
    if episodes < 1:
        raise ConfigurationError("need at least one training episode")
    if initial_soc_jitter < 0:
        raise ConfigurationError("SoC jitter cannot be negative")
    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint interval must be >= 1")
    battery = simulator.solver.params.battery
    lo = battery.soc_min + 0.03
    hi = battery.soc_max - 0.03
    rng = np.random.default_rng(seed)
    first_episode = 0
    if resume_from is not None:
        from repro.rl.persistence import load_checkpoint
        agent = _checkpoint_agent(controller)
        first_episode = load_checkpoint(agent, resume_from, train_rng=rng)
        if first_episode >= episodes:
            raise CheckpointError(
                f"checkpoint already holds {first_episode} completed "
                f"episodes; nothing to resume toward episodes={episodes}")
    if checkpoint_path is not None:
        from repro.rl.persistence import save_checkpoint
        agent = _checkpoint_agent(controller)
    telemetry = simulator.telemetry
    span = None
    if telemetry is not None:
        span = telemetry.tracer.start(
            "train.run", cycle=cycle.name, episodes=episodes,
            first_episode=first_episode, resumed=resume_from is not None)
    run = TrainingRun()
    completed = False
    try:
        for ep in range(first_episode, episodes):
            if initial_soc_jitter > 0:
                start = float(np.clip(
                    initial_soc + rng.uniform(-initial_soc_jitter,
                                              initial_soc_jitter), lo, hi))
            else:
                start = initial_soc
            result = simulator.run_episode(controller, cycle,
                                           initial_soc=start, learn=True)
            run.episodes.append(result)
            if telemetry is not None:
                telemetry.event(
                    "training_episode", episode=ep,
                    total_reward=float(result.total_reward),
                    final_soc=float(result.final_soc))
            if callback is not None:
                callback(ep, result)
            if (checkpoint_path is not None
                    and (ep + 1) % checkpoint_every == 0):
                save_checkpoint(agent, checkpoint_path, episode=ep + 1,
                                train_rng=rng)
        if evaluate_after:
            run.evaluation = evaluate(simulator, controller, cycle,
                                      initial_soc=initial_soc)
        completed = True
    finally:
        if span is not None:
            telemetry.tracer.end(
                span, trained=len(run.episodes),
                outcome="ok" if completed else "error")
    return run


def evaluate(simulator: Simulator, controller: Controller, cycle: DriveCycle,
             initial_soc: float = 0.60, faults=None) -> EpisodeResult:
    """One greedy, non-learning drive of ``cycle`` under ``controller``.

    ``faults`` (a :class:`~repro.faults.schedule.FaultSchedule` or bound
    :class:`~repro.faults.harness.FaultHarness`) drives the evaluation in
    degraded mode; the solver is restored afterwards.
    """
    return simulator.run_episode(controller, cycle, initial_soc=initial_soc,
                                 learn=False, greedy=True, faults=faults)


def evaluate_stationary(simulator: Simulator, controller: Controller,
                        cycle: DriveCycle, initial_soc: float = 0.60,
                        settle_passes: int = 1) -> EpisodeResult:
    """Greedy evaluation started at the controller's stationary SoC.

    Every controller settles to its own state-of-charge operating band; a
    drive started away from that band banks or drains charge that the
    cumulative reward (the paper's Table 2 metric) does not account for.
    This helper first drives ``settle_passes`` throwaway passes to let the
    SoC converge, then reports a drive started exactly where the previous
    one ended — so the reported drive is charge-neutral up to the policy's
    own cycle-to-cycle ripple, and cumulative rewards are comparable across
    controllers.
    """
    if settle_passes < 1:
        raise ConfigurationError("need at least one settling pass")
    soc = initial_soc
    for _ in range(settle_passes):
        warmup = simulator.run_episode(controller, cycle, initial_soc=soc,
                                       learn=False, greedy=True)
        soc = warmup.final_soc
    return simulator.run_episode(controller, cycle, initial_soc=soc,
                                 learn=False, greedy=True)
