"""Fault-tolerant online learning at fleet scale (``docs/ONLINE_LEARNING.md``).

The loop ROADMAP item 5 asks for, built survivably: fleet workers
stream schema-validated experience into per-shard append-only JSONL
journals (:mod:`repro.learn.journal` — torn-line amputation, corrupt
-record quarantine, oldest-first backpressure shedding); a crash-safe
central learner (:mod:`repro.learn.learner`) consumes them with
content-hash exact-resume cursors and batch-invariant Q updates, so a
kill-and-resume aggregate is bit-identical; candidates publish through
the :class:`repro.serve.PolicyRegistry` and take traffic only via the
guarded promotion pipeline (:mod:`repro.learn.promotion`) — canary,
regression watchdog, auto-rollback with *measured* recovery time.

Chaos kinds ``learn_journal_torn_batch`` and
``learn_regressed_candidate`` attack exactly these guarantees.
"""

from repro.learn.journal import (DEFAULT_BUFFER_LIMIT, ExperienceStream,
                                 JournalSlice, read_journal,
                                 shard_filename)
from repro.learn.learner import (IngestReport, OnlineLearner,
                                 OnlineLearnerConfig)
from repro.learn.loop import (LoopReport, OnlineLearningLoop, RoundReport)
from repro.learn.promotion import (PromotionPipeline, PromotionReport,
                                   RegressionWatchdog)
from repro.learn.records import (RECORD_VERSION, ExperienceRecord,
                                 decode_record, encode_record)

__all__ = [
    "DEFAULT_BUFFER_LIMIT",
    "ExperienceRecord",
    "ExperienceStream",
    "IngestReport",
    "JournalSlice",
    "LoopReport",
    "OnlineLearner",
    "OnlineLearnerConfig",
    "OnlineLearningLoop",
    "PromotionPipeline",
    "PromotionReport",
    "RECORD_VERSION",
    "RegressionWatchdog",
    "RoundReport",
    "decode_record",
    "encode_record",
    "read_journal",
    "shard_filename",
]
