"""Crash-safe central learner consuming experience journals.

The :class:`OnlineLearner` turns journaled fleet experience into
candidate policies.  Its defining property is the exec-manifest resume
contract: **kill it anywhere and resume, and the aggregate Q-table is
bit-identical to an uninterrupted run** (chaos kind
``learn_journal_torn_batch`` enforces this).  Two design choices make
that cheap to guarantee:

* **Batch-invariant updates.**  The update rule is plain tabular
  Q-learning — TD(λ) with ``λ = 0`` and a *constant* step size —
  optionally in double-Q form with a deterministic alternation counter.
  No eligibility traces and no step-size annealing means the final
  table depends only on the *sequence* of records, never on how they
  were grouped into :meth:`ingest` calls; a learner killed between any
  two records and resumed replays the exact same float operations.
  (The offline trainer keeps its TD(λ) traces; they pay off there and
  would silently break exact resume here.)

* **State and cursors committed together.**  Every successful
  :meth:`ingest` atomically rewrites one checkpoint file (tmp + fsync +
  rename through :func:`repro.rl.persistence._atomic_write_bytes`)
  holding the Q-table bytes, the per-journal content-hash cursors, and
  the counters.  There is no window where the table reflects records
  the cursors have not acknowledged, so a crash at any instant resumes
  from a consistent pair.

Corrupt journal lines are quarantined with honest counts (see
:mod:`repro.learn.journal`); a corrupt *checkpoint* is a
:class:`repro.errors.PersistenceError`, exactly like every other
integrity failure in the repo.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.errors import ExperienceError, PersistenceError
from repro.learn.journal import read_journal
from repro.rl.persistence import _atomic_write_bytes

CHECKPOINT_FORMAT = "repro-learn-checkpoint"
"""Format name recorded in (and required of) every learner checkpoint."""

CHECKPOINT_VERSION = 1
"""Checkpoint layout version this module writes and reads."""


@dataclass(frozen=True)
class OnlineLearnerConfig:
    """Hyper-parameters of the online update rule.

    Deliberately excludes eligibility traces and step-size annealing:
    both make the final table depend on ingest batch boundaries, which
    would break the kill-and-resume bit-identity contract (see module
    docstring).
    """

    learning_rate: float = 0.05
    """Constant step size of every update."""

    discount: float = 0.8
    """Discount factor of the one-step bootstrap target."""

    double_q: bool = False
    """Maintain two tables updated alternately (van Hasselt double-Q);
    the published policy is their mean."""

    def __post_init__(self):
        if not 0.0 < self.learning_rate <= 1.0:
            raise ExperienceError(
                f"learning_rate must lie in (0, 1], got "
                f"{self.learning_rate}")
        if not 0.0 <= self.discount < 1.0:
            raise ExperienceError(
                f"discount must lie in [0, 1), got {self.discount}")


@dataclass
class IngestReport:
    """Accounting of one :meth:`OnlineLearner.ingest` pass."""

    journals: int = 0
    """Journal shard files consumed."""

    records: int = 0
    """Valid records applied as updates this pass."""

    quarantined: int = 0
    """Corrupt lines skipped (counted, never trained on) this pass."""

    excluded: int = 0
    """Schema-valid records rejected as foreign (state or action id
    outside the learner's table) this pass."""

    amputated_bytes: int = 0
    """Torn-final-line bytes truncated off journals this pass."""


def _encode_table(table: np.ndarray) -> dict:
    body = np.ascontiguousarray(table).tobytes()
    return {"dtype": table.dtype.str,
            "shape": [int(n) for n in table.shape],
            "sha256": hashlib.sha256(body).hexdigest(),
            "b64": base64.b64encode(body).decode("ascii")}


def _decode_table(payload: dict, path: Path, label: str) -> np.ndarray:
    try:
        body = base64.b64decode(payload["b64"].encode("ascii"),
                                validate=True)
        dtype = np.dtype(payload["dtype"])
        shape = tuple(int(n) for n in payload["shape"])
        expected = payload["sha256"]
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(
            f"{path}: learner checkpoint {label} section is malformed "
            f"({exc}); the checkpoint is corrupt") from exc
    actual = hashlib.sha256(body).hexdigest()
    if actual != expected:
        raise PersistenceError(
            f"{path}: integrity check failed — {label} SHA-256 {actual} "
            f"does not match the recorded {expected}; the checkpoint "
            "was corrupted after it was written")
    if len(shape) != 2 or len(body) != shape[0] * shape[1] * dtype.itemsize:
        raise PersistenceError(
            f"{path}: learner checkpoint {label} declares shape {shape} "
            f"but carries {len(body)} bytes; the checkpoint is corrupt")
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()


class OnlineLearner:
    """Consumes experience journals into a publishable Q-table."""

    def __init__(self, fingerprint: dict, table: np.ndarray,
                 config: Optional[OnlineLearnerConfig] = None,
                 checkpoint_path: Optional[Union[str, Path]] = None):
        table = np.ascontiguousarray(np.asarray(table, dtype=np.float64))
        if table.ndim != 2 or table.size == 0:
            raise ExperienceError(
                f"learner tables are non-empty 2-D (states x actions) "
                f"arrays; got shape {table.shape}")
        if not np.all(np.isfinite(table)):
            raise ExperienceError(
                "the learner's seed table contains non-finite values; "
                "refusing to learn from a poisoned starting point")
        if not isinstance(fingerprint, dict):
            raise ExperienceError(
                "the learner needs the agent fingerprint dict the seed "
                "table was trained under")
        self._fingerprint = dict(fingerprint)
        self._config = config or OnlineLearnerConfig()
        self._qa = table.copy()
        self._qb = table.copy() if self._config.double_q else None
        self._cursors: Dict[str, dict] = {}
        self._updates = 0
        self._path = Path(checkpoint_path) if checkpoint_path else None
        self.records = 0
        """Valid records applied over the learner's lifetime."""
        self.quarantined = 0
        """Corrupt lines quarantined over the learner's lifetime."""
        self.excluded = 0
        """Foreign (out-of-table) records excluded over the lifetime."""
        self.ingests = 0
        """Completed :meth:`ingest` passes (checkpoints written)."""

    @classmethod
    def from_artifact(cls, artifact,
                      config: Optional[OnlineLearnerConfig] = None,
                      checkpoint_path: Optional[Union[str, Path]] = None
                      ) -> "OnlineLearner":
        """A learner warm-started from a serving policy artifact."""
        return cls(artifact.fingerprint, np.array(artifact.table),
                   config=config, checkpoint_path=checkpoint_path)

    @property
    def config(self) -> OnlineLearnerConfig:
        """The update-rule hyper-parameters."""
        return self._config

    @property
    def fingerprint(self) -> dict:
        """Agent fingerprint the table (and its candidates) carry."""
        return dict(self._fingerprint)

    @property
    def table(self) -> np.ndarray:
        """The publishable Q-table (mean of both tables under double-Q)."""
        if self._qb is not None:
            return (self._qa + self._qb) / 2.0
        return self._qa.copy()

    @property
    def cursors(self) -> Dict[str, dict]:
        """Per-journal resume cursors (filename -> cursor dict)."""
        return {name: dict(cur) for name, cur in self._cursors.items()}

    def _apply(self, rec) -> None:
        lr = self._config.learning_rate
        gamma = self._config.discount
        if self._qb is None:
            target = rec.reward + gamma * float(np.max(self._qa[rec.next_state]))
            self._qa[rec.state, rec.action] += lr * (
                target - self._qa[rec.state, rec.action])
        else:
            # Double-Q: alternate deterministically on the update
            # counter (checkpointed, so resume keeps the parity).
            if self._updates % 2 == 0:
                best = int(np.argmax(self._qa[rec.next_state]))
                target = rec.reward + gamma * self._qb[rec.next_state, best]
                self._qa[rec.state, rec.action] += lr * (
                    target - self._qa[rec.state, rec.action])
            else:
                best = int(np.argmax(self._qb[rec.next_state]))
                target = rec.reward + gamma * self._qa[rec.next_state, best]
                self._qb[rec.state, rec.action] += lr * (
                    target - self._qb[rec.state, rec.action])
        self._updates += 1

    def ingest(self, journal_dir: Union[str, Path]) -> IngestReport:
        """Consume every journal shard under ``journal_dir`` once.

        Shards are read in sorted filename order from each one's stored
        cursor, records are applied in journal order, and on success the
        checkpoint (when configured) is atomically rewritten with the
        new table *and* cursors together.  Idempotent when nothing new
        was appended.
        """
        directory = Path(journal_dir)
        report = IngestReport()
        num_states, num_actions = self._qa.shape
        for path in sorted(directory.glob("shard-*.jsonl")):
            piece = read_journal(path, self._cursors.get(path.name))
            report.journals += 1
            report.quarantined += piece.quarantined
            report.amputated_bytes += piece.amputated_bytes
            for rec in piece.records:
                if rec.state >= num_states or rec.next_state >= num_states \
                        or rec.action >= num_actions:
                    report.excluded += 1
                    continue
                self._apply(rec)
                report.records += 1
            self._cursors[path.name] = piece.cursor
        self.records += report.records
        self.quarantined += report.quarantined
        self.excluded += report.excluded
        self.ingests += 1
        if self._path is not None:
            self.checkpoint()
        return report

    def publish(self, registry) -> int:
        """Publish the current table as a registry candidate; version."""
        return registry.publish_table(self.table, self._fingerprint)

    def checkpoint(self) -> Path:
        """Atomically write the checkpoint file; returns its path."""
        if self._path is None:
            raise ExperienceError(
                "this learner was built without a checkpoint_path; "
                "nowhere to checkpoint to")
        payload = {
            "format": CHECKPOINT_FORMAT,
            "v": CHECKPOINT_VERSION,
            "config": {"learning_rate": self._config.learning_rate,
                       "discount": self._config.discount,
                       "double_q": self._config.double_q},
            "fingerprint": self._fingerprint,
            "cursors": self._cursors,
            "updates": self._updates,
            "counters": {"records": self.records,
                         "quarantined": self.quarantined,
                         "excluded": self.excluded,
                         "ingests": self.ingests},
            "q": _encode_table(self._qa),
            "q_b": (_encode_table(self._qb)
                    if self._qb is not None else None),
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        _atomic_write_bytes(self._path, body)
        return self._path

    @classmethod
    def resume(cls, checkpoint_path: Union[str, Path]) -> "OnlineLearner":
        """Rebuild a learner from its checkpoint, verified end to end.

        A missing checkpoint is an :class:`ExperienceError` (nothing to
        resume); a present-but-corrupt one — unparseable JSON, a table
        whose digest no longer matches — is a
        :class:`repro.errors.PersistenceError`.
        """
        path = Path(checkpoint_path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError as exc:
            raise ExperienceError(
                f"no learner checkpoint at {path}; nothing to resume "
                "from") from exc
        except OSError as exc:
            raise PersistenceError(
                f"cannot read learner checkpoint {path} ({exc})") from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PersistenceError(
                f"{path}: learner checkpoint is not valid JSON ({exc}); "
                "the file is corrupt") from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != CHECKPOINT_FORMAT:
            raise PersistenceError(
                f"{path}: not a learner checkpoint (missing format "
                f"{CHECKPOINT_FORMAT!r}); the file is corrupt or foreign")
        if payload.get("v") != CHECKPOINT_VERSION:
            raise PersistenceError(
                f"{path}: unsupported learner checkpoint version "
                f"{payload.get('v')!r} (this reader understands "
                f"{CHECKPOINT_VERSION})")
        conf = payload.get("config")
        fingerprint = payload.get("fingerprint")
        cursors = payload.get("cursors")
        counters = payload.get("counters")
        if not isinstance(conf, dict) or not isinstance(fingerprint, dict) \
                or not isinstance(cursors, dict) \
                or not isinstance(counters, dict):
            raise PersistenceError(
                f"{path}: learner checkpoint is missing or mistypes "
                "required sections (config/fingerprint/cursors/counters)")
        config = OnlineLearnerConfig(
            learning_rate=conf.get("learning_rate", 0.05),
            discount=conf.get("discount", 0.8),
            double_q=bool(conf.get("double_q", False)))
        table = _decode_table(payload.get("q") or {}, path, "Q-table")
        learner = cls(fingerprint, table, config=config,
                      checkpoint_path=path)
        learner._qa = table  # keep the exact decoded bytes, no re-copy
        if config.double_q:
            learner._qb = _decode_table(payload.get("q_b") or {}, path,
                                        "double-Q table")
        learner._cursors = {str(k): dict(v) for k, v in cursors.items()}
        learner._updates = int(payload.get("updates", 0))
        learner.records = int(counters.get("records", 0))
        learner.quarantined = int(counters.get("quarantined", 0))
        learner.excluded = int(counters.get("excluded", 0))
        learner.ingests = int(counters.get("ingests", 0))
        return learner
