"""The online-learning loop: fleet → journals → learner → promotion.

:class:`OnlineLearningLoop` wires every piece of ``repro.learn`` into
the cycle ROADMAP item 5 describes: a guarded fleet serves decisions
and streams experience into per-shard journals, the crash-safe learner
ingests them with exact-resume cursors, and every few rounds the
updated table is published to the registry and driven through the
guarded :class:`~repro.learn.promotion.PromotionPipeline`.

Robustness split of responsibilities (each part is tested on its own):

* the fleet never blocks on the learner — the journal stream sheds
  oldest-first under backpressure, and a stream write failure freezes
  *streaming*, never serving;
* the learner can die anywhere — ``--resume`` rebuilds it from its
  atomic checkpoint and the journals replay bit-identically;
* a regressed candidate is the promotion pipeline's problem — canary
  rollback with measured recovery, while the incumbent keeps serving;
* the :class:`~repro.learn.promotion.RegressionWatchdog` baseline rides
  across rounds and triggers a post-promotion rollback if a regression
  only becomes visible at full traffic.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import ExperienceError, PersistenceError, ServeError
from repro.learn.journal import ExperienceStream
from repro.learn.learner import OnlineLearner, OnlineLearnerConfig
from repro.learn.promotion import (PromotionPipeline, PromotionReport,
                                   RegressionWatchdog)
from repro.rl.persistence import _atomic_write_bytes
from repro.serve.canary import CanaryConfig
from repro.serve.fleet import FleetConfig, FleetSimulator
from repro.serve.registry import PolicyRegistry
from repro.serve.server import PolicyServer

CHECKPOINT_NAME = "learner-checkpoint.json"
"""Filename of the learner checkpoint inside the loop workdir."""

JOURNAL_DIRNAME = "journals"
"""Subdirectory of the loop workdir holding experience journals."""

STATE_NAME = "incumbent.json"
"""Loop state file pinning the vetted incumbent version.

The registry may hold *candidates* that were published but rolled back
or aborted by the canary; ``activate_latest`` on a restart would hand
one of them the fleet ungated.  The loop therefore records which
version actually won promotion and re-activates exactly that on
``--resume``."""


@dataclass
class RoundReport:
    """What one loop round did."""

    round: int
    """1-based round index."""

    decisions: int
    """Decisions the fleet consumed this round."""

    mean_reward: float
    """Fleet mean decision reward this round."""

    records_streamed: int
    """Experience records durably journaled this round."""

    records_shed: int
    """Records shed oldest-first by stream backpressure this round."""

    records_ingested: int
    """Valid records the learner applied this round."""

    quarantined: int
    """Corrupt journal lines quarantined this round."""

    watchdog_alert: Optional[str] = None
    """Watchdog regression reason, when one fired this round."""

    promotion: Optional[PromotionReport] = None
    """The guarded promotion attempt, on promotion rounds."""


@dataclass
class LoopReport:
    """Aggregates of one :meth:`OnlineLearningLoop.run` call."""

    rounds: List[RoundReport] = field(default_factory=list)
    """Per-round accounting, in order."""

    promotions: int = 0
    """Candidates that took over as incumbent."""

    rollbacks: int = 0
    """Candidates rolled back or aborted by the canary/watchdog."""

    recovery_latencies_s: List[float] = field(default_factory=list)
    """Measured regression-recovery times of this run's rollbacks."""

    final_version: int = 0
    """Incumbent version serving when the run ended."""


class OnlineLearningLoop:
    """Round-based fleet/learner/promotion orchestrator."""

    def __init__(self, registry: Union[PolicyRegistry, str, Path],
                 workdir: Union[str, Path],
                 fleet_config: Optional[FleetConfig] = None,
                 learner_config: Optional[OnlineLearnerConfig] = None,
                 canary_config: Optional[CanaryConfig] = None,
                 promote_every: int = 2,
                 resume: bool = False,
                 telemetry=None,
                 stream_buffer: int = 65536):
        if promote_every < 1:
            raise ExperienceError(
                f"promote_every must be at least 1, got {promote_every}")
        self._registry = (registry if isinstance(registry, PolicyRegistry)
                          else PolicyRegistry(registry))
        self._workdir = Path(workdir)
        self._workdir.mkdir(parents=True, exist_ok=True)
        self._journal_dir = self._workdir / JOURNAL_DIRNAME
        self._telemetry = telemetry
        self._promote_every = int(promote_every)
        self._fleet_config = fleet_config or FleetConfig()

        self.server = PolicyServer(self._registry, telemetry=telemetry)
        """The serving side of the loop (kept answering no matter what)."""
        self._state_path = self._workdir / STATE_NAME
        pinned = self._pinned_incumbent() if resume else None
        if pinned is not None:
            self.server.activate(self._registry.load(pinned))
        else:
            self.server.activate_latest()
        if self.server.degraded:
            raise ServeError(
                "the registry holds no servable policy; the loop needs a "
                "healthy incumbent to learn from (publish one first)")
        self._save_state()

        checkpoint = self._workdir / CHECKPOINT_NAME
        if resume and checkpoint.exists():
            self.learner = OnlineLearner.resume(checkpoint)
            """The crash-safe central learner."""
            if self.learner.fingerprint != \
                    self.server.active_artifact.fingerprint:
                raise ExperienceError(
                    f"checkpoint {checkpoint} was trained under a "
                    "different agent fingerprint than the serving "
                    "incumbent; refusing to mix incompatible policies")
        else:
            self.learner = OnlineLearner.from_artifact(
                self.server.active_artifact, config=learner_config,
                checkpoint_path=checkpoint)
        max_rounds, round_steps = 8, 20
        if canary_config is None:
            # Size the canary budget to the configured fleet: the stock
            # CanaryConfig budget (10k canary decisions) assumes a large
            # fleet and would starve — and so abort — every healthy
            # candidate on a small one before the promote verdict.
            expected = int(0.1 * self._fleet_config.vehicles
                           * round_steps * max_rounds * 0.5)
            budget = max(16, min(10_000, expected))
            canary_config = CanaryConfig(
                fraction=0.1,
                min_samples=max(2, min(256, budget // 4)),
                decision_budget=budget)
        self.pipeline = PromotionPipeline(
            self.server, self._registry, fleet_config=self._fleet_config,
            canary_config=canary_config, watchdog=RegressionWatchdog(),
            max_rounds=max_rounds, round_steps=round_steps)
        """The guarded promotion path every candidate goes through."""
        self._stream = ExperienceStream(self._journal_dir, shard=0,
                                        buffer_limit=stream_buffer)

    def _event(self, type_: str, **fields) -> None:
        if self._telemetry is not None:
            self._telemetry.event(type_, **fields)

    def _pinned_incumbent(self) -> Optional[int]:
        """The vetted incumbent version recorded by a previous run."""
        try:
            raw = self._state_path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise PersistenceError(
                f"cannot read loop state {self._state_path} "
                f"({exc})") from exc
        try:
            payload = json.loads(raw.decode("utf-8"))
            version = payload["version"]
        except (json.JSONDecodeError, UnicodeDecodeError, TypeError,
                KeyError) as exc:
            raise PersistenceError(
                f"{self._state_path}: loop state is corrupt ({exc}); "
                "delete it to fall back to the latest registry version "
                "— note that may activate an unvetted candidate") from exc
        if not isinstance(version, int) or isinstance(version, bool):
            raise PersistenceError(
                f"{self._state_path}: loop state pins non-integer "
                f"incumbent version {version!r}; the file is corrupt")
        return version

    def _save_state(self) -> None:
        body = json.dumps(
            {"version": int(self.server.active_version)},
            sort_keys=True).encode("utf-8")
        _atomic_write_bytes(self._state_path, body)

    def run(self, rounds: int) -> LoopReport:
        """Drive ``rounds`` fleet/ingest/promote cycles; returns totals."""
        if rounds < 1:
            raise ExperienceError(
                f"the loop needs at least one round, got {rounds}")
        report = LoopReport()
        # The previous incumbent's baseline, armed for one round after a
        # promotion: the canary's verdict came from a traffic fraction,
        # so the first full-traffic run can still expose a regression —
        # and one rollback step away is the verified-healthy incumbent.
        net: Optional[RegressionWatchdog] = None
        for index in range(1, rounds + 1):
            watchdog = self.pipeline.watchdog
            shed_before = self._stream.shed
            written_before = self._stream.written
            result = FleetSimulator(
                self.server, self._fleet_config,
                experience=self._stream).run()

            alert = (net.check(result) if net is not None
                     else watchdog.check(result))
            if alert is not None and net is not None:
                self.server.rollback(reason=alert)
                report.rollbacks += 1
                # The old incumbent is back; its baseline resumes.
                self.pipeline.watchdog = net
                watchdog = net
            elif alert is None:
                watchdog.observe(result)
            net = None

            ingest = self.learner.ingest(self._journal_dir)
            self._event("learn_ingest", journals=ingest.journals,
                        records=ingest.records,
                        quarantined=ingest.quarantined,
                        excluded=ingest.excluded)

            promotion: Optional[PromotionReport] = None
            if index % self._promote_every == 0:
                prior = copy.deepcopy(self.pipeline.watchdog)
                version = self.learner.publish(self._registry)
                promotion = self.pipeline.promote(version)
                self._event("learn_promotion", version=version,
                            outcome=promotion.outcome,
                            reason=promotion.reason[:300])
                if promotion.outcome == "promoted":
                    report.promotions += 1
                    net = prior
                elif promotion.outcome in ("rolled_back", "aborted"):
                    report.rollbacks += 1
                    if promotion.recovery_s is not None:
                        report.recovery_latencies_s.append(
                            promotion.recovery_s)

            self._save_state()
            report.rounds.append(RoundReport(
                round=index, decisions=result.decisions,
                mean_reward=result.mean_reward,
                records_streamed=self._stream.written - written_before,
                records_shed=self._stream.shed - shed_before,
                records_ingested=ingest.records,
                quarantined=ingest.quarantined,
                watchdog_alert=alert, promotion=promotion))
        report.final_version = self.server.active_version
        return report

    def close(self) -> None:
        """Release the journal stream descriptor (idempotent)."""
        self._stream.close()

    def __enter__(self) -> "OnlineLearningLoop":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
