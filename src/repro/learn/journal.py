"""Per-shard experience journals: bounded writer, cursor-exact reader.

Fleet workers stream experience through an :class:`ExperienceStream`,
the write half of one shard's journal: a bounded in-memory buffer that
*sheds oldest-first* when the learner falls behind (the fleet never
blocks on a slow learner — backpressure loses the stalest experience,
counted honestly, instead of stalling serving), flushed to an
append-only JSONL file as one atomic ``os.write`` per record on an
``O_APPEND`` descriptor routed through :mod:`repro.fsio` (the same
fork-safe idiom as :class:`repro.telemetry.EventSink`, and the chaos
harness's injection point).

The read half, :func:`read_journal`, carries the crash-recovery
contract the learner depends on (``docs/ONLINE_LEARNING.md``):

* a **torn final line** (writer killed mid-append) is amputated by
  physically truncating the file back to its last newline — idempotent,
  warned about, and exactly the sweep-manifest recovery semantics;
* **corrupt interior records** are quarantined (counted, skipped) so one
  bad line cannot poison or abort ingestion;
* the returned **cursor** is content-hash keyed — byte offset plus the
  SHA-256 of everything consumed — so a resumed learner re-reads
  nothing twice and detects a journal rewritten under it as a
  structured :class:`repro.errors.ExperienceError`, never as silent
  double-counting.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro import fsio
from repro.errors import ExperienceError
from repro.learn.records import (ExperienceRecord, decode_record,
                                 encode_record)

JOURNAL_FORMAT = "repro-experience-journal"
"""Format name recorded in (and required of) every journal header."""

JOURNAL_VERSION = 1
"""Journal layout version this module writes and reads."""

DEFAULT_BUFFER_LIMIT = 8192
"""Default bound on records buffered between flushes."""


def shard_filename(shard: int) -> str:
    """Canonical journal filename of one shard (``shard-0003.jsonl``)."""
    return f"shard-{int(shard):04d}.jsonl"


def _header_line(shard: int) -> str:
    return json.dumps({"format": JOURNAL_FORMAT, "v": JOURNAL_VERSION,
                       "shard": int(shard)}, sort_keys=True)


class ExperienceStream:
    """Bounded-buffer write half of one shard's experience journal."""

    def __init__(self, directory: Union[str, Path], shard: int = 0,
                 buffer_limit: int = DEFAULT_BUFFER_LIMIT):
        if int(shard) < 0:
            raise ExperienceError(
                f"journal shard indices are non-negative, got {shard}")
        if int(buffer_limit) < 1:
            raise ExperienceError(
                f"the stream buffer must hold at least one record, got "
                f"buffer_limit={buffer_limit}")
        self._directory = Path(directory)
        self._shard = int(shard)
        self._limit = int(buffer_limit)
        self._buffer: deque = deque()
        self._fd: Optional[int] = None
        self.path = self._directory / shard_filename(shard)
        """The journal file this stream appends to."""
        self.offered = 0
        """Records handed to the stream (including later-shed ones)."""
        self.shed = 0
        """Records dropped oldest-first under backpressure."""
        self.written = 0
        """Records durably appended to the journal."""

    def offer(self, record: ExperienceRecord) -> bool:
        """Buffer one record; returns False if an old record was shed.

        When the buffer is full the *oldest* buffered record is dropped
        to make room — the freshest experience always survives, and the
        caller (the fleet) is never blocked.
        """
        self.offered += 1
        shed = len(self._buffer) >= self._limit
        if shed:
            self._buffer.popleft()
            self.shed += 1
        self._buffer.append(record)
        return not shed

    def offer_batch(self, states, actions, rewards, next_states,
                    policy_versions, vehicle_ids, step: int) -> int:
        """Buffer one tick's transitions (parallel arrays); returns count.

        Records are offered in ascending vehicle order, so the journal
        ordering — and therefore the learner's update order — is
        deterministic for a deterministic fleet.
        """
        count = 0
        for i in range(len(states)):
            self.offer(ExperienceRecord(
                state=int(states[i]), action=int(actions[i]),
                reward=float(rewards[i]), next_state=int(next_states[i]),
                policy_version=int(policy_versions[i]),
                vehicle_id=int(vehicle_ids[i]), step=int(step)))
            count += 1
        return count

    def _ensure_open(self) -> int:
        if self._fd is None:
            try:
                self._directory.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() \
                    or self.path.stat().st_size == 0
                self._fd = os.open(
                    str(self.path),
                    os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
                if fresh:
                    line = _header_line(self._shard) + "\n"
                    fsio.os_write(self._fd, line.encode("utf-8"),
                                  path=self.path)
            except OSError as exc:
                raise ExperienceError(
                    f"cannot open experience journal {self.path} "
                    f"({exc})") from exc
        return self._fd

    def flush(self) -> int:
        """Append every buffered record to the journal; returns count.

        One ``os.write`` per record on the ``O_APPEND`` descriptor, so
        concurrent forked writers interleave whole records and a crash
        mid-flush tears at most the final line (which the reader
        amputates).  A failed write leaves the unwritten suffix
        buffered and raises :class:`repro.errors.ExperienceError`.
        """
        fd = self._ensure_open()
        flushed = 0
        while self._buffer:
            line = encode_record(self._buffer[0]) + "\n"
            try:
                fsio.os_write(fd, line.encode("utf-8"), path=self.path)
            except OSError as exc:
                raise ExperienceError(
                    f"cannot append to experience journal {self.path} "
                    f"({exc}); {len(self._buffer)} record(s) remain "
                    "buffered — every earlier line is intact") from exc
            self._buffer.popleft()
            self.written += 1
            flushed += 1
        return flushed

    @property
    def buffered(self) -> int:
        """Records currently waiting for the next :meth:`flush`."""
        return len(self._buffer)

    def close(self) -> None:
        """Release the descriptor (idempotent); does not flush."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "ExperienceStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalSlice:
    """Everything one :func:`read_journal` call consumed."""

    records: List[ExperienceRecord] = field(default_factory=list)
    """Validated records past the cursor, in journal order."""

    cursor: Dict[str, object] = field(default_factory=dict)
    """Resume cursor: ``{"offset", "sha256", "lines"}`` — the byte
    offset consumed, the SHA-256 of every consumed byte, and the total
    record lines seen (quarantined included)."""

    quarantined: int = 0
    """Corrupt record lines skipped (honest coverage accounting)."""

    amputated_bytes: int = 0
    """Bytes of torn final line physically truncated before reading."""


def _amputate_torn_tail(path: Path, raw: bytes) -> tuple:
    """Truncate a torn final line off the journal; returns (raw, cut)."""
    if not raw or raw.endswith(b"\n"):
        return raw, 0
    cut = raw.rfind(b"\n") + 1
    dropped = len(raw) - cut
    warnings.warn(
        f"experience journal {path} ends mid-record ({dropped} bytes "
        "after the last newline); a writer died mid-append — amputating "
        "the torn line and continuing from the last durable record",
        RuntimeWarning, stacklevel=3)
    try:
        with open(path, "r+b") as fh:
            fh.truncate(cut)
    except OSError as exc:
        raise ExperienceError(
            f"cannot amputate torn tail of experience journal {path} "
            f"({exc})") from exc
    return raw[:cut], dropped


def read_journal(path: Union[str, Path],
                 cursor: Optional[dict] = None) -> JournalSlice:
    """Consume one journal shard from ``cursor`` (or its start).

    Amputates a torn final line first (idempotent — re-reading after a
    crash truncates nothing further), verifies the cursor's content
    hash against the bytes it claims to have consumed, then decodes
    every complete line past it, quarantining corrupt records.  Returns
    the validated records plus the new cursor.

    Raises :class:`repro.errors.ExperienceError` when the journal
    itself is untrustworthy: unreadable, missing its header, or
    rewritten under the cursor (prefix hash mismatch).
    """
    path = Path(path)
    try:
        raw = fsio.read_bytes(path)
    except OSError as exc:
        raise ExperienceError(
            f"cannot read experience journal {path} ({exc})") from exc
    raw, amputated = _amputate_torn_tail(path, raw)
    first_nl = raw.find(b"\n")
    if first_nl < 0:
        raise ExperienceError(
            f"experience journal {path} has no complete header line; "
            "the file is empty or corrupt")
    try:
        header = json.loads(raw[:first_nl].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ExperienceError(
            f"experience journal {path} header is not valid JSON "
            f"({exc}); the file is corrupt or foreign") from exc
    if not isinstance(header, dict) \
            or header.get("format") != JOURNAL_FORMAT:
        raise ExperienceError(
            f"experience journal {path} does not declare format "
            f"{JOURNAL_FORMAT!r}; the file is corrupt or foreign")
    if header.get("v") != JOURNAL_VERSION:
        raise ExperienceError(
            f"experience journal {path} has unsupported version "
            f"{header.get('v')!r} (this reader understands "
            f"{JOURNAL_VERSION})")
    start = first_nl + 1
    prior_lines = 0
    if cursor is not None:
        offset = cursor.get("offset")
        digest = cursor.get("sha256")
        prior_lines = cursor.get("lines", 0)
        if (not isinstance(offset, int) or not isinstance(digest, str)
                or isinstance(offset, bool)
                or not isinstance(prior_lines, int)):
            raise ExperienceError(
                f"malformed journal cursor {cursor!r}; cursors carry an "
                "integer offset, a sha256 hex digest, and a line count")
        if offset < start or offset > len(raw) \
                or raw[offset - 1:offset] != b"\n":
            raise ExperienceError(
                f"journal cursor offset {offset} does not land on a "
                f"record boundary of {path} ({len(raw)} bytes); the "
                "journal was rewritten or truncated under the cursor")
        actual = hashlib.sha256(raw[:offset]).hexdigest()
        if actual != digest:
            raise ExperienceError(
                f"journal {path} was rewritten under its cursor: the "
                f"consumed prefix hashes to {actual}, the cursor "
                f"recorded {digest} — refusing to resume, the learner "
                "would double-count or skip experience")
        start = offset
    records: List[ExperienceRecord] = []
    quarantined = 0
    lines = 0
    for chunk in raw[start:].split(b"\n")[:-1]:
        lines += 1
        try:
            records.append(decode_record(chunk.decode("utf-8")))
        except (ExperienceError, UnicodeDecodeError):
            # Quarantine, never crash: the bad line is counted and the
            # rest of the journal still trains the learner.
            quarantined += 1
    new_cursor = {"offset": len(raw),
                  "sha256": hashlib.sha256(raw).hexdigest(),
                  "lines": prior_lines + lines}
    return JournalSlice(records=records, cursor=new_cursor,
                        quarantined=quarantined,
                        amputated_bytes=amputated)
