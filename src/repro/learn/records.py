"""Experience-record codec: one validated transition per JSONL line.

An :class:`ExperienceRecord` is one fleet transition ``(s, a, r, s')``
tagged with the policy version that produced the action, the global
vehicle id, and the simulation step — the unit of currency of the
online-learning loop (``docs/ONLINE_LEARNING.md``).  Records are
encoded as single sorted-key JSON lines so a journal is greppable,
diffable, and append-only-composable; JSON round-trips Python floats
bit-exactly, so an encoded reward decodes to the same IEEE-754 value.

Validation is the whole point of this module: *any* malformed line —
truncation, a dropped field, a mistyped value, a non-finite reward, a
bool smuggled into an integer field — decodes to a structured
:class:`repro.errors.ExperienceError`, never to a record the learner
would silently train on.  The journal reader quarantines (counts, skips)
such lines; the codec itself never crashes on garbage (fuzz-tested with
Hypothesis in ``tests/test_learn.py``).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

from repro.errors import ExperienceError

RECORD_VERSION = 1
"""Schema version stamped into (and required of) every record line."""

_MAX_LINE_BYTES = 1 << 16
"""Upper bound on a plausible record line; longer claims are garbage."""

_INT_FIELDS = ("state", "action", "next_state", "policy_version",
               "vehicle_id", "step")
"""Record fields that must be non-negative non-bool integers."""


@dataclass(frozen=True)
class ExperienceRecord:
    """One validated fleet transition ``(s, a, r, s')``."""

    state: int
    """Discrete state id the decision was taken in."""

    action: int
    """Action id the serving policy chose."""

    reward: float
    """Decision reward (finite; the fleet's off-policy reward proxy)."""

    next_state: int
    """Discrete state id observed one step later."""

    policy_version: int
    """Registry version of the policy that produced the action (>= 1;
    fallback decisions are never streamed, so version 0 cannot occur)."""

    vehicle_id: int
    """Global (fleet-wide) vehicle id, stable across shards."""

    step: int
    """Simulation step the decision was taken at."""

    def __post_init__(self):
        for name in _INT_FIELDS:
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ExperienceError(
                    f"experience field {name!r} must be an integer, got "
                    f"{type(value).__name__} ({value!r})")
            if value < 0:
                raise ExperienceError(
                    f"experience field {name!r} must be non-negative, "
                    f"got {value}")
        if self.policy_version < 1:
            raise ExperienceError(
                "experience records carry the serving policy version "
                f"(>= 1); got {self.policy_version} — fallback decisions "
                "are excluded from the training stream")
        if isinstance(self.reward, bool) \
                or not isinstance(self.reward, (int, float)):
            raise ExperienceError(
                f"experience reward must be a real number, got "
                f"{type(self.reward).__name__} ({self.reward!r})")
        if not math.isfinite(self.reward):
            raise ExperienceError(
                f"experience reward must be finite, got {self.reward!r}; "
                "a non-finite reward would silently poison the Q-table")
        object.__setattr__(self, "reward", float(self.reward))


def encode_record(record: ExperienceRecord) -> str:
    """One sorted-key JSON line (no trailing newline) for ``record``."""
    return json.dumps({
        "v": RECORD_VERSION,
        "state": record.state,
        "action": record.action,
        "reward": record.reward,
        "next_state": record.next_state,
        "policy_version": record.policy_version,
        "vehicle_id": record.vehicle_id,
        "step": record.step,
    }, sort_keys=True)


def decode_record(line: str) -> ExperienceRecord:
    """Decode and fully validate one journal line.

    Every malformed shape — non-JSON, a non-object, an unknown or
    missing field, a wrong type, a non-finite reward, an unsupported
    schema version — raises :class:`repro.errors.ExperienceError`
    naming the problem.  A successfully decoded record is safe to train
    on by construction.
    """
    if len(line) > _MAX_LINE_BYTES:
        raise ExperienceError(
            f"experience line is implausibly long ({len(line)} bytes); "
            "refusing to parse it")
    try:
        payload = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ExperienceError(
            f"experience line is not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ExperienceError(
            f"experience line must be a JSON object, got "
            f"{type(payload).__name__}")
    version = payload.get("v")
    if version != RECORD_VERSION:
        raise ExperienceError(
            f"unsupported experience record version {version!r} (this "
            f"reader understands {RECORD_VERSION})")
    expected = set(_INT_FIELDS) | {"v", "reward"}
    unknown = set(payload) - expected
    if unknown:
        raise ExperienceError(
            f"experience line carries unknown fields {sorted(unknown)}")
    missing = expected - set(payload)
    if missing:
        raise ExperienceError(
            f"experience line is missing fields {sorted(missing)}")
    return ExperienceRecord(
        state=payload["state"], action=payload["action"],
        reward=payload["reward"], next_state=payload["next_state"],
        policy_version=payload["policy_version"],
        vehicle_id=payload["vehicle_id"], step=payload["step"])
