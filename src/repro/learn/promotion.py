"""Guarded candidate promotion: canary, watchdog, measured recovery.

Every candidate the learner publishes goes through the
:class:`PromotionPipeline`, which drives the PolicyServer's full
stage → verify → golden-probe → canary path and adds the two guarantees
the online loop needs on top:

* **Measured regression recovery.**  When the canary verdict is
  ``"rollback"`` (or the rollout starves and is aborted), the pipeline
  *verifies the fleet is healthy again* — the incumbent's digest and a
  deterministic probe of its decisions are bit-identical to before the
  attempt — and reports **regression-recovery time**: the wall-clock
  from the verdict (detection) through rollback to the verified-healthy
  incumbent.  This is the first-class metric of ``BENCH_online.json``
  (see ``docs/ONLINE_LEARNING.md`` for the precise definition).

* **A cross-promotion baseline.**  The :class:`RegressionWatchdog`
  accumulates the incumbent's fleet-level reward and intervention-rate
  statistics across *healthy* runs, so a regression that slips past a
  canary (or appears later) is still caught: :meth:`check` compares any
  run against the baseline with the same sigma/margin vocabulary as the
  canary.  The baseline resets only when a *new* incumbent is promoted
  — a no-op swap of an identical candidate must not reset it (tested).

A candidate bit-identical to the incumbent short-circuits: the swap is
the server's provably-no-op identical-artifact path, no canary runs,
and the watchdog baseline survives untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import (CheckpointError, ExperienceError,
                          PersistenceError, ServeError)
from repro.serve.canary import CanaryConfig, _Welford
from repro.serve.fleet import FleetConfig, FleetSimulator


class RegressionWatchdog:
    """Incumbent fleet-health baseline with canary-style thresholds."""

    def __init__(self, sigmas: float = 3.0,
                 intervention_margin: float = 0.05,
                 min_runs: int = 2):
        if sigmas <= 0:
            raise ExperienceError(
                f"watchdog sigmas must be positive, got {sigmas!r}")
        if intervention_margin < 0:
            raise ExperienceError(
                "watchdog intervention_margin cannot be negative")
        if min_runs < 2:
            raise ExperienceError(
                "the watchdog needs at least two baseline runs before "
                f"a deviation is meaningful, got min_runs={min_runs}")
        self._sigmas = float(sigmas)
        self._margin = float(intervention_margin)
        self._min_runs = int(min_runs)
        self._reward = _Welford()
        self._interventions = 0
        self._decisions = 0

    @property
    def runs(self) -> int:
        """Healthy fleet runs folded into the baseline."""
        return self._reward.count

    @property
    def baseline(self) -> dict:
        """The current baseline (runs, reward moments, intervention rate)."""
        return {"runs": self._reward.count,
                "reward_mean": self._reward.mean,
                "reward_std": self._reward.std,
                "intervention_rate": (self._interventions / self._decisions
                                      if self._decisions else 0.0)}

    def observe(self, result) -> None:
        """Fold one healthy fleet run into the incumbent baseline."""
        if result.decisions <= 0:
            return
        self._reward.update_batch(np.asarray([result.mean_reward]))
        self._interventions += int(result.interventions)
        self._decisions += int(result.decisions)

    def check(self, result) -> Optional[str]:
        """Compare one run against the baseline; a reason means regression.

        Returns ``None`` while the baseline is too thin (< ``min_runs``
        healthy runs) or the run produced no decisions — a zero-decision
        fleet carries no evidence either way.
        """
        if self._reward.count < self._min_runs or result.decisions <= 0:
            return None
        scale = max(self._reward.std, 1e-12)
        deficit = (self._reward.mean - result.mean_reward) / scale
        if deficit > self._sigmas:
            return (f"fleet reward {result.mean_reward:.4f} is "
                    f"{deficit:.1f} sigma below the incumbent baseline "
                    f"{self._reward.mean:.4f} ({self._reward.count} runs)")
        base_rate = (self._interventions / self._decisions
                     if self._decisions else 0.0)
        rate = result.interventions / result.decisions
        if rate > base_rate + self._margin:
            return (f"fleet intervention rate {rate:.2%} exceeds the "
                    f"incumbent baseline {base_rate:.2%} by more than "
                    f"{self._margin:.0%}")
        return None

    def reset(self) -> None:
        """Forget the baseline (a *new* incumbent took over)."""
        self._reward = _Welford()
        self._interventions = 0
        self._decisions = 0


@dataclass
class PromotionReport:
    """What one guarded promotion attempt did."""

    candidate_version: int
    """Registry version of the candidate."""

    outcome: str
    """``"promoted"``, ``"noop"`` (identical candidate), ``"refused"``
    (staging rejected it), ``"rolled_back"``, or ``"aborted"`` (canary
    starved without a verdict)."""

    reason: str
    """One-line justification of the outcome."""

    rounds: int
    """Canary fleet rounds driven before the verdict."""

    canary_decisions: int
    """Decisions the candidate served during the rollout."""

    recovery_s: Optional[float] = None
    """Regression-recovery time — verdict (detection) → rollback →
    verified-healthy incumbent — for rollback/abort outcomes."""

    incumbent_intact: Optional[bool] = None
    """For rollback/abort outcomes: True when the incumbent's digest and
    probed decisions are bit-identical to before the attempt."""

    baseline_runs: int = 0
    """Watchdog baseline size after the attempt (proves noop swaps and
    rollbacks preserve it, promotions reset it)."""


class PromotionPipeline:
    """Drives candidates through canary with verified, timed recovery."""

    def __init__(self, server, registry,
                 fleet_config: Optional[FleetConfig] = None,
                 canary_config: Optional[CanaryConfig] = None,
                 watchdog: Optional[RegressionWatchdog] = None,
                 max_rounds: int = 8, round_steps: int = 20,
                 probe_states: int = 128):
        if max_rounds < 1:
            raise ExperienceError(
                f"the canary needs at least one fleet round, got "
                f"max_rounds={max_rounds}")
        if round_steps < 1:
            raise ExperienceError(
                f"round_steps must be at least 1, got {round_steps}")
        self._server = server
        self._registry = registry
        self._fleet_config = fleet_config or FleetConfig()
        self._canary_config = canary_config
        self.watchdog = watchdog or RegressionWatchdog()
        """The cross-promotion incumbent baseline (shared with the loop)."""
        self._max_rounds = int(max_rounds)
        self._round_steps = int(round_steps)
        self._probe_states = int(probe_states)

    def _probe(self, artifact) -> np.ndarray:
        grid = np.arange(min(self._probe_states, artifact.num_states))
        return np.asarray(artifact.greedy(grid))

    def promote(self, version: int) -> PromotionReport:
        """Run one candidate through the guarded promotion path."""
        server = self._server
        incumbent = server.active_artifact
        if incumbent is None:
            raise ServeError(
                "cannot promote without an active incumbent; activate a "
                "policy before running the promotion pipeline")
        try:
            candidate = self._registry.load(version)
        except (PersistenceError, ServeError) as exc:
            return PromotionReport(
                candidate_version=int(version), outcome="refused",
                reason=str(exc), rounds=0, canary_decisions=0,
                baseline_runs=self.watchdog.runs)

        if candidate.digest == incumbent.digest \
                and candidate.fingerprint == incumbent.fingerprint:
            # Identical candidate: the swap is the server's provably
            # no-op path; no canary, and the watchdog baseline survives
            # (the incumbent did not actually change).
            swap = server.swap(version=version)
            return PromotionReport(
                candidate_version=int(version),
                outcome="noop" if swap.activated else "refused",
                reason=("candidate is bit-identical to the incumbent; "
                        "no-op swap" if swap.activated else swap.reason),
                rounds=0, canary_decisions=0,
                baseline_runs=self.watchdog.runs)

        before_digest = incumbent.digest
        before_actions = self._probe(incumbent)
        try:
            rollout = server.begin_canary(version=version,
                                          canary_config=self._canary_config)
        except (PersistenceError, CheckpointError, ServeError) as exc:
            return PromotionReport(
                candidate_version=int(version), outcome="refused",
                reason=str(exc), rounds=0, canary_decisions=0,
                baseline_runs=self.watchdog.runs)
        begin = time.monotonic()

        rounds = 0
        verdict: Optional[str] = None
        while rounds < self._max_rounds and server.canary is not None:
            result = FleetSimulator(server, self._fleet_config).run(
                steps=self._round_steps)
            rounds += 1
            if result.canary_verdict is not None:
                verdict = result.canary_verdict
        if server.canary is not None:
            # The rollout starved (e.g. a cohort that never decides);
            # abort so an undecidable canary cannot pin the server.
            server.abort_canary(
                reason=f"canary undecided after {rounds} fleet round(s)")
            verdict = "aborted"
        canary_decisions = rollout.canary_decisions

        rollback = server.last_rollback or {}
        if verdict in ("rollback", "aborted"):
            # Detection instant: the server stamped the verdict latency
            # against the same monotonic clock begin_canary used.
            detected = begin + float(rollback.get("latency_s",
                                                  time.monotonic() - begin))
            active = server.active_artifact
            intact = (active is not None
                      and active.digest == before_digest
                      and bool(np.array_equal(self._probe(active),
                                              before_actions))
                      and bool(np.array_equal(server.decide(
                          np.arange(len(before_actions))), before_actions)))
            recovery = max(time.monotonic() - detected, 0.0)
            return PromotionReport(
                candidate_version=int(version),
                outcome=("rolled_back" if verdict == "rollback"
                         else "aborted"),
                reason=str(rollback.get("reason", "canary aborted")),
                rounds=rounds, canary_decisions=canary_decisions,
                recovery_s=recovery, incumbent_intact=intact,
                baseline_runs=self.watchdog.runs)

        # Promoted: a genuinely new incumbent is serving — the old
        # baseline describes a different policy, so it resets.
        self.watchdog.reset()
        return PromotionReport(
            candidate_version=int(version), outcome="promoted",
            reason=f"canary promoted after {rounds} fleet round(s)",
            rounds=rounds,
            canary_decisions=canary_decisions,
            baseline_runs=self.watchdog.runs)
