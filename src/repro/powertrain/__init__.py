"""Backward-looking powertrain solver for the parallel HEV.

Given the driver-imposed (speed, acceleration, grade) and a candidate
control action (battery current, gear, auxiliary power), the solver resolves
every dependent variable of Section 2.2 — engine and motor torque/speed,
actual battery current, fuel rate, friction-brake torque — and classifies
the operating mode.  Evaluation is vectorised over whole batches of
candidate actions, which is what makes tabular RL training tractable in
pure Python; controllers with a fixed candidate grid bind it once to an
:class:`ActionGridWorkspace` and drive the zero-allocation
:meth:`PowertrainSolver.evaluate_grid` hot path (see
``docs/PERFORMANCE.md``).  :mod:`repro.powertrain.reference` keeps the
frozen pre-vectorisation implementation the equivalence suite and the
throughput bench compare against.
"""

from repro.powertrain.modes import OperatingMode
from repro.powertrain.operating_point import BatchResult, OperatingPoint
from repro.powertrain.solver import PowertrainSolver
from repro.powertrain.tables import (
    ActionGridWorkspace,
    DenseMaps,
    PowertrainTables,
)

__all__ = [
    "OperatingMode",
    "OperatingPoint",
    "BatchResult",
    "PowertrainSolver",
    "PowertrainTables",
    "ActionGridWorkspace",
    "DenseMaps",
]
