"""Backward-looking powertrain solver for the parallel HEV.

Given the driver-imposed (speed, acceleration, grade) and a candidate
control action (battery current, gear, auxiliary power), the solver resolves
every dependent variable of Section 2.2 — engine and motor torque/speed,
actual battery current, fuel rate, friction-brake torque — and classifies
the operating mode.  Evaluation is vectorised over whole batches of
candidate actions, which is what makes tabular RL training tractable in
pure Python.
"""

from repro.powertrain.modes import OperatingMode
from repro.powertrain.operating_point import BatchResult, OperatingPoint
from repro.powertrain.solver import PowertrainSolver

__all__ = ["OperatingMode", "OperatingPoint", "BatchResult", "PowertrainSolver"]
