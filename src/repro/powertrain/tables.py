"""Precomputed per-vehicle tables and reusable action-grid workspaces.

The struct-of-arrays hot path is built on two precomputation layers:

* :class:`PowertrainTables` — every per-:class:`~repro.vehicle.params.VehicleParams`
  constant the solver kernel needs, extracted **exactly** (no fitting, no
  interpolation) at :class:`~repro.powertrain.solver.PowertrainSolver`
  construction: per-gear wheel-speed/torque transform coefficients, battery
  OCV line and resistance/limit constants, motor-envelope and engine
  speed-band bounds, and the scalar road-load coefficients.  Because these
  are the same numbers the component models use, arithmetic against them is
  bit-identical to calling the models — that is the contract the golden
  equivalence suite pins.
* :class:`DenseMaps` — dense sampled views of the nonlinear component
  surfaces (engine WOT torque + fuel map, motor envelope, battery OCV and
  power limits).  These are **advisory**: analysis, plotting, and future
  table-serving layers read them; the exact kernel never interpolates them,
  so the hot path stays bit-identical to the seed physics.  Built lazily —
  fault-injection rebuilds the solver's tables per plant change and must
  not pay for maps it never reads.

:class:`ActionGridWorkspace` binds a *fixed* candidate action grid
(currents × gears × aux powers) to a solver: everything that does not
depend on the driver state — clamped commanded currents, their resistive
power terms, per-unique-gear index maps, standstill discriminant terms —
is computed once, and every per-step output/scratch array is preallocated
and reused.  :meth:`repro.powertrain.solver.PowertrainSolver.evaluate_grid`
evaluates a step into the workspace without allocating; the returned
:class:`~repro.powertrain.operating_point.BatchResult` views the workspace
buffers and is only valid until the next ``evaluate_grid`` call on the
same workspace.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.units import AIR_DENSITY, GRAVITY


class PowertrainTables:
    """Exact precomputed constants for one solver configuration.

    Rebuilt whenever the solver is (re)initialised — including in-place
    fault-injection rebuilds — so the tables always describe the *current*
    plant.  All fields are plain floats or small per-gear arrays; building
    them costs microseconds.
    """

    def __init__(self, solver) -> None:
        # Late import: solver.py owns the tolerance constants (and imports
        # this module at load time).
        from repro.powertrain.solver import _WINDOW_EDGE_TOL, _WINDOW_SLACK

        params = solver.params
        body = params.body
        batt = params.battery
        trans = params.transmission
        motor = params.motor

        # --- road load (paper Eq. 5-7), seed association order ---
        self.wheel_radius = float(body.wheel_radius)
        self.mass = float(body.mass)
        self.mass_x_gravity = body.mass * GRAVITY
        self.rolling_resistance = float(body.rolling_resistance)
        self.aero_factor = (
            0.5 * AIR_DENSITY * body.drag_coefficient * body.frontal_area)

        # --- battery (Rint model) ---
        self.capacity = float(batt.capacity)
        self.coulombic_efficiency = float(batt.coulombic_efficiency)
        self.voltage_at_empty = float(batt.voltage_at_empty)
        self.voc_span = batt.voltage_at_full - batt.voltage_at_empty
        self.discharge_resistance = float(batt.discharge_resistance)
        self.charge_resistance = float(batt.charge_resistance)
        self.four_rd = 4.0 * batt.discharge_resistance
        self.two_rd = 2.0 * batt.discharge_resistance
        self.four_rc = 4.0 * batt.charge_resistance
        self.two_rc = 2.0 * batt.charge_resistance
        self.max_current = float(batt.max_current)
        self.current_tol = batt.max_current + 1e-9
        self.window_lo = batt.soc_min - _WINDOW_SLACK - _WINDOW_EDGE_TOL
        self.window_hi = batt.soc_max + _WINDOW_SLACK + _WINDOW_EDGE_TOL

        # --- motor envelope / efficiency-map constants ---
        self.motor_max_speed = float(motor.max_speed)
        self.motor_speed_bound = motor.max_speed + 1e-9
        self.motor_peak_efficiency = float(motor.peak_efficiency)
        self.motor_efficiency_floor = float(motor.efficiency_floor)
        self.motor_opt_speed_fraction = float(motor.optimal_speed_fraction)
        self.motor_opt_torque_fraction = float(motor.optimal_torque_fraction)

        # --- engine admissible speed band (honours substituted engines) ---
        self.engine_min_speed = float(solver._engine_min_speed)
        self.engine_max_speed = float(solver._engine_max_speed)

        # Fuel-map constants for the parametric engine.  Substituted engine
        # models (e.g. TabulatedEngine) keep their own fuel methods and the
        # kernel falls back to calling them, so these are only derived — and
        # only trusted — when the active engine is the stock class.
        from repro.vehicle.engine import Engine
        self.engine_parametric = type(solver.engine) is Engine
        if self.engine_parametric:
            ep = solver.engine.params
            self.eng_peak_efficiency = float(ep.peak_efficiency)
            self.eng_efficiency_floor = float(ep.efficiency_floor)
            self.eng_opt_torque_fraction = float(ep.optimal_torque_fraction)
            self.eng_opt_speed = float(ep.optimal_speed)
            self.eng_speed_span = ep.max_speed - ep.min_speed
            self.eng_speed_falloff = float(ep.speed_falloff)
            self.eng_torque_falloff = float(ep.torque_falloff)
            self.eng_fuel_energy_density = float(ep.fuel_energy_density)
            self.eng_idle_fuel_rate = float(ep.idle_fuel_rate)
            self.eng_fuel_max_speed = float(ep.max_speed)
            # Efficiency-hill values at crankshaft speed zero (declutched
            # elements; their fuel is zeroed afterwards but the elementwise
            # arithmetic must still match the seed bit for bit).
            ds_zero = (0.0 - ep.optimal_speed) / self.eng_speed_span
            self.eng_a_at_zero = 1.0 - ep.speed_falloff * (ds_zero * ds_zero)

        # --- transmission (Eq. 8-10) ---
        self.reduction_ratio = float(trans.reduction_ratio)
        self.reduction_efficiency = float(trans.reduction_efficiency)
        self.inv_reduction_efficiency = 1.0 / trans.reduction_efficiency
        self.gearbox_efficiency = float(trans.gearbox_efficiency)
        self.inv_gearbox_efficiency = 1.0 / trans.gearbox_efficiency
        self.num_gears = int(trans.num_gears)
        self.ratios = np.asarray(trans.gear_ratios, dtype=float)
        # Denominator of the positive-torque branch of Eq. 8 inversion:
        # T_shaft = T_wh / (R(k) * eta_gb).
        self.ratio_x_gb_eta = self.ratios * trans.gearbox_efficiency
        # Denominators of motor_torque_from_shaft (sign-uniform per step):
        # s / (rho * eta_red) motoring, s / (rho * (1/eta_red)) generating.
        self.rho_x_red_eta = trans.reduction_ratio * trans.reduction_efficiency
        self.rho_x_inv_red_eta = trans.reduction_ratio * (
            1.0 / trans.reduction_efficiency)

        self._solver = solver
        self._dense: Optional[DenseMaps] = None

    # ------------------------------------------------------------- helpers ---

    def open_circuit_voltage(self, soc: float) -> float:
        """Scalar OCV at a state of charge, V (exact seed arithmetic)."""
        soc = min(max(float(soc), 0.0), 1.0)
        return self.voltage_at_empty + self.voc_span * soc

    def feasible_gear_mask(self, wheel_speed: float,
                           engine_needed: bool = True) -> np.ndarray:
        """Boolean per-gear feasibility at a wheel speed (exact algebra).

        A gear is feasible when the EM stays inside its speed envelope and,
        if ``engine_needed``, the crankshaft lands inside the engine band —
        the same comparisons :meth:`Transmission.feasible_gears` makes, but
        against the precomputed coefficient tables.
        """
        omega_eng = wheel_speed * self.ratios
        ok = omega_eng * self.reduction_ratio <= self.motor_max_speed
        if engine_needed:
            ok = ok & ((omega_eng >= self.engine_min_speed)
                       & (omega_eng <= self.engine_max_speed))
        return ok

    def dense_maps(self, speed_samples: int = 64,
                   torque_samples: int = 48,
                   soc_samples: int = 33) -> "DenseMaps":
        """The lazily built dense sampled maps (cached per resolution)."""
        key = (speed_samples, torque_samples, soc_samples)
        if self._dense is None or self._dense.resolution != key:
            self._dense = DenseMaps(self._solver, speed_samples,
                                    torque_samples, soc_samples)
        return self._dense


class DenseMaps:
    """Dense sampled component surfaces for analysis and serving layers.

    Samples are exact evaluations of the live component models at the grid
    nodes; between nodes they are what a lookup-table consumer would
    interpolate.  The solver kernel itself never reads these (see module
    docstring), so they carry no equivalence burden.
    """

    def __init__(self, solver, speed_samples: int = 64,
                 torque_samples: int = 48, soc_samples: int = 33) -> None:
        if speed_samples < 2 or torque_samples < 2 or soc_samples < 2:
            raise ConfigurationError(
                "dense maps need at least two samples per axis")
        self.resolution = (speed_samples, torque_samples, soc_samples)
        params = solver.params

        # Engine: WOT curve and fuel map over (speed, torque).
        self.engine_speeds = np.linspace(solver._engine_min_speed,
                                         solver._engine_max_speed,
                                         speed_samples)
        self.engine_wot = np.asarray(
            solver.engine.max_torque(self.engine_speeds), dtype=float)
        t_max = float(np.max(self.engine_wot)) if len(self.engine_wot) else 0.0
        self.engine_torques = np.linspace(0.0, max(t_max, 1e-9),
                                          torque_samples)
        self.engine_fuel = np.asarray(solver.engine.fuel_rate(
            self.engine_torques[:, None], self.engine_speeds[None, :]),
            dtype=float)

        # Motor: envelope over rotor speed.
        self.motor_speeds = np.linspace(0.0, params.motor.max_speed,
                                        speed_samples)
        self.motor_envelope = np.asarray(
            solver.motor.max_torque(self.motor_speeds), dtype=float)

        # Battery: OCV line and directional power limits over SoC.
        self.soc_grid = np.linspace(0.0, 1.0, soc_samples)
        self.battery_ocv = np.asarray(
            solver.battery.open_circuit_voltage(self.soc_grid), dtype=float)
        self.battery_max_discharge = np.asarray(
            solver.battery.max_discharge_power(self.soc_grid), dtype=float)
        self.battery_max_charge = np.asarray(
            solver.battery.max_charge_power(self.soc_grid), dtype=float)


class ActionGridWorkspace:
    """A fixed candidate action grid bound to a solver, with reusable state.

    Construction validates and freezes the grid; the grid-static arrays
    (everything independent of the driver state) are derived lazily and
    re-derived automatically whenever the bound solver is rebuilt in place
    (fault injection re-runs ``PowertrainSolver.__init__``, which bumps the
    solver's configuration epoch).

    The per-step output and scratch arrays are preallocated once and
    **reused** by every :meth:`~repro.powertrain.solver.PowertrainSolver.evaluate_grid`
    call, so a returned :class:`BatchResult` is a view that is only valid
    until the next call on the same workspace.  Callers that need to keep a
    result across steps must copy it (or use ``evaluate_actions``, which
    allocates).
    """

    def __init__(self, solver, currents, gears, aux_powers) -> None:
        currents = np.ascontiguousarray(currents, dtype=float)
        gears = np.ascontiguousarray(gears, dtype=int)
        aux = np.ascontiguousarray(aux_powers, dtype=float)
        if not (len(currents) == len(gears) == len(aux)):
            raise ConfigurationError(
                "action component arrays must be index-aligned")
        self._solver = solver
        self.currents = currents
        self.gears = gears
        self.aux = aux
        self.n = len(currents)
        self._epoch = -1
        self._scratch = {}
        # Immutable per-grid constants that survive solver rebuilds.  Gear
        # validation is deferred to the moving kernel so that a standstill
        # evaluation of out-of-range gears behaves exactly like the seed
        # solver (which never indexed the ratio table at v = 0).
        self.gear_out_of_range = bool(
            self.n and np.any((gears < 0)
                              | (gears >= solver.transmission.num_gears)))
        self.gear_unique, self.gear_inv = np.unique(gears,
                                                    return_inverse=True)
        self.gear_inv = np.ascontiguousarray(self.gear_inv)
        self.n_unique = len(self.gear_unique)
        self.aux_max0 = np.maximum(aux, 0.0)
        self.aux_min0 = np.minimum(aux, 0.0)
        self.aux_nonneg = aux >= 0.0
        self.zeros = np.zeros(self.n)
        self.ones_bool = np.ones(self.n, dtype=bool)
        self.idle_mode = np.zeros(self.n, dtype=int)
        self._sync()

    # ----------------------------------------------------------- lifecycle ---

    @property
    def solver(self):
        """The solver this workspace is bound to."""
        return self._solver

    def _sync(self) -> None:
        """Re-derive grid statics from the solver's current tables."""
        tables = self._solver.tables
        self.i_cmd = np.clip(self.currents, -tables.max_current,
                             tables.max_current)
        r_cmd = np.where(self.i_cmd >= 0.0, tables.discharge_resistance,
                         tables.charge_resistance)
        self.ri2_cmd = r_cmd * self.i_cmd ** 2
        # Standstill current-for-power discriminant terms over the static
        # auxiliary draws (seed association: (4 R) * clamped power).
        self.four_rd_aux = tables.four_rd * self.aux_max0
        self.four_rc_aux = tables.four_rc * self.aux_min0
        # A plant rebuild may change the gear count (exotic, but cheap to
        # keep correct).
        self.gear_out_of_range = bool(
            self.n and np.any((self.gears < 0)
                              | (self.gears >= tables.num_gears)))
        self._epoch = self._solver._epoch

    def ensure_current(self) -> None:
        """Refresh grid statics if the solver was rebuilt since last use."""
        if self._epoch != self._solver._epoch:
            self._sync()

    # ------------------------------------------------------------- buffers ---

    def buf(self, name: str) -> np.ndarray:
        """A reusable float scratch/output array of grid length."""
        arr = self._scratch.get(name)
        if arr is None:
            arr = np.empty(self.n)
            self._scratch[name] = arr
        return arr

    def bool_buf(self, name: str) -> np.ndarray:
        """A reusable boolean scratch/output array of grid length."""
        arr = self._scratch.get(name)
        if arr is None:
            arr = np.empty(self.n, dtype=bool)
            self._scratch[name] = arr
        return arr

    def unique_buf(self, name: str) -> np.ndarray:
        """A reusable float scratch array of unique-gear length."""
        arr = self._scratch.get(name)
        if arr is None:
            arr = np.empty(self.n_unique)
            self._scratch[name] = arr
        return arr
