"""The five parallel-HEV operating modes (paper Section 2).

The paper enumerates five energy-flow modes; the solver adds an ``IDLE``
mode for standstill with the powertrain disengaged (auxiliaries still draw
from the battery) so that every simulated time step has a classification.
"""

from __future__ import annotations

import enum

import numpy as np


class OperatingMode(enum.IntEnum):
    """Energy-flow classification of one powertrain operating point."""

    IDLE = 0
    """Standstill: powertrain disengaged, auxiliaries on battery."""

    ICE_ONLY = 1
    """(i) Only the ICE propels the vehicle."""

    EM_ONLY = 2
    """(ii) Only the EM propels the vehicle."""

    HYBRID = 3
    """(iii) ICE and EM propel the vehicle together."""

    CHARGING = 4
    """(iv) The ICE propels the vehicle and drives the EM as a generator."""

    REGEN = 5
    """(v) The EM recovers braking energy (regenerative braking)."""


def classify(engine_torque: np.ndarray, motor_torque: np.ndarray,
             wheel_speed: np.ndarray, braking: np.ndarray,
             torque_tol: float = 1e-6) -> np.ndarray:
    """Vectorised mode classification from resolved component torques.

    ``braking`` marks steps whose demanded wheel torque is negative.  The
    returned array holds :class:`OperatingMode` integer values.
    """
    engine_on = engine_torque > torque_tol
    motoring = motor_torque > torque_tol
    generating = motor_torque < -torque_tol
    standstill = wheel_speed <= 1e-9

    mode = np.full(np.shape(engine_torque), int(OperatingMode.IDLE))
    mode = np.where(engine_on & ~motoring & ~generating,
                    int(OperatingMode.ICE_ONLY), mode)
    mode = np.where(~engine_on & motoring, int(OperatingMode.EM_ONLY), mode)
    mode = np.where(engine_on & motoring, int(OperatingMode.HYBRID), mode)
    mode = np.where(engine_on & generating, int(OperatingMode.CHARGING), mode)
    mode = np.where(braking & generating & ~engine_on,
                    int(OperatingMode.REGEN), mode)
    mode = np.where(standstill, int(OperatingMode.IDLE), mode)
    return mode
