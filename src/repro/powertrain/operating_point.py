"""Containers for resolved powertrain operating points.

:class:`OperatingPoint` is the scalar view a controller or test inspects for
one (state, action) pair; :class:`BatchResult` is the structure-of-arrays
view the solver produces when evaluating a whole batch of candidate actions
for one time step (the fast path used by RL training and the inner
optimisation of the reduced action space).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.powertrain.modes import OperatingMode


@dataclass(frozen=True)
class OperatingPoint:
    """Fully resolved powertrain state for one (driver demand, action) pair."""

    feasible: bool
    """Whether every component constraint (Eq. 2, 4, current and SoC-window
    limits) is satisfied and the traction demand is met."""

    mode: OperatingMode
    """Energy-flow classification of the point."""

    power_demand: float
    """Driver propulsion power demand ``p_dem``, W (negative while braking)."""

    wheel_speed: float
    """Wheel angular speed, rad/s."""

    wheel_torque: float
    """Demanded wheel torque, N*m."""

    gear: int
    """Selected 0-based gear index."""

    engine_speed: float
    """Crankshaft speed, rad/s (zero when the engine is off)."""

    engine_torque: float
    """Engine brake torque, N*m (zero when the engine is off)."""

    motor_speed: float
    """EM rotor speed, rad/s."""

    motor_torque: float
    """EM shaft torque, N*m (negative while generating)."""

    battery_current: float
    """Actual pack current after saturation, A (positive = discharge)."""

    battery_power: float
    """Actual pack terminal power, W (positive = discharge)."""

    aux_power: float
    """Auxiliary-system draw ``p_aux``, W."""

    fuel_rate: float
    """Fuel mass-flow rate ``mdot_f``, g/s."""

    brake_torque: float
    """Friction-brake torque at the wheel, N*m (non-positive)."""

    shortfall: float = 0.0
    """Undelivered shaft torque, N*m (zero when demand is met)."""

    def __post_init__(self) -> None:
        if self.aux_power < 0:
            raise ConfigurationError("auxiliary power cannot be negative")
        if self.fuel_rate < -1e-12:
            raise ConfigurationError("fuel rate cannot be negative")


@dataclass
class BatchResult:
    """Structure-of-arrays result of evaluating N candidate actions at once.

    Every field is a numpy array of length N, index-aligned with the action
    batch handed to :meth:`repro.powertrain.solver.PowertrainSolver.evaluate_actions`.
    """

    feasible: np.ndarray
    """Boolean feasibility flags."""

    mode: np.ndarray
    """Integer :class:`OperatingMode` values."""

    power_demand: float
    """Scalar driver power demand shared by the batch, W."""

    wheel_speed: float
    """Scalar wheel speed shared by the batch, rad/s."""

    wheel_torque: float
    """Scalar demanded wheel torque shared by the batch, N*m."""

    gear: np.ndarray
    """0-based gear index per action."""

    engine_speed: np.ndarray
    """Crankshaft speed per action, rad/s."""

    engine_torque: np.ndarray
    """Engine torque per action, N*m."""

    motor_speed: np.ndarray
    """EM speed per action, rad/s."""

    motor_torque: np.ndarray
    """EM torque per action, N*m."""

    battery_current: np.ndarray
    """Actual pack current per action, A."""

    battery_power: np.ndarray
    """Actual pack terminal power per action, W."""

    aux_power: np.ndarray
    """Auxiliary draw per action, W."""

    fuel_rate: np.ndarray
    """Fuel rate per action, g/s."""

    brake_torque: np.ndarray
    """Friction-brake torque per action, N*m."""

    meets_demand: np.ndarray
    """True where the action delivers the demanded wheel torque exactly."""

    window_ok: np.ndarray
    """True where the post-step charge stays inside the SoC operating window."""

    soc_next: np.ndarray
    """Post-step state of charge (fraction) under each action."""

    shortfall: np.ndarray
    """Undelivered shaft torque, N*m (zero when demand is met)."""

    def __len__(self) -> int:
        return len(self.fuel_rate)

    def point(self, index: int) -> OperatingPoint:
        """Extract the scalar :class:`OperatingPoint` at ``index``."""
        return OperatingPoint(
            feasible=bool(self.feasible[index]),
            mode=OperatingMode(int(self.mode[index])),
            power_demand=float(self.power_demand),
            wheel_speed=float(self.wheel_speed),
            wheel_torque=float(self.wheel_torque),
            gear=int(self.gear[index]),
            engine_speed=float(self.engine_speed[index]),
            engine_torque=float(self.engine_torque[index]),
            motor_speed=float(self.motor_speed[index]),
            motor_torque=float(self.motor_torque[index]),
            battery_current=float(self.battery_current[index]),
            battery_power=float(self.battery_power[index]),
            aux_power=float(self.aux_power[index]),
            fuel_rate=float(self.fuel_rate[index]),
            brake_torque=float(self.brake_torque[index]),
            shortfall=float(self.shortfall[index]),
        )
