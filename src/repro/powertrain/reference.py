"""Frozen reference implementations of the powertrain solver.

This module pins the pre-refactor (seed) semantics of
:class:`repro.powertrain.solver.PowertrainSolver` so the optimised
struct-of-arrays kernel can be proven equivalent forever:

* :class:`ReferencePowertrainSolver` — the seed ``evaluate_actions`` /
  ``_moving`` / ``_standstill`` bodies, verbatim, operating on the same
  component models (engine, motor, battery, transmission, dynamics).  The
  golden equivalence suite (``tests/test_vectorized_equivalence.py``)
  compares every optimised result against this class.
* :class:`ScalarReferenceSolver` — the same physics driven one action at a
  time through single-element batches.  This is the "scalar path" the
  throughput benchmark (``benchmarks/bench_throughput.py``) measures as
  its *before* figure: what evaluating the action grid costs without any
  batching at all.

Neither class is used on any hot path; they exist for verification and
benchmarking.  Do **not** "optimise" this file — its value is that it does
not change.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.powertrain.modes import classify
from repro.powertrain.operating_point import BatchResult
from repro.powertrain.solver import (
    PowertrainSolver,
    _SPEED_TOL,
    _TORQUE_TOL,
    _WINDOW_EDGE_TOL,
    _WINDOW_SLACK,
)


class ReferencePowertrainSolver(PowertrainSolver):
    """Seed (pre-refactor) solver semantics, kept verbatim for golden tests."""

    def evaluate_grid(self, workspace, speed, acceleration, soc, dt,
                      grade=0.0) -> BatchResult:
        """Route workspace callers through the frozen path.

        Controllers holding a persistent :class:`ActionGridWorkspace`
        (the RL agent) call ``evaluate_grid``; on a reference solver that
        must exercise the *seed* physics code, re-allocating per call as
        the pre-refactor implementation did.  Only the raw action arrays
        are read from the workspace — none of its precomputed statics.
        """
        if workspace.solver is not self:
            raise ConfigurationError(
                "workspace is bound to a different solver")
        return self.evaluate_actions(speed, acceleration, soc,
                                     workspace.currents, workspace.gears,
                                     workspace.aux, dt, grade)

    def evaluate_actions(self, speed, acceleration, soc, currents, gears,
                         aux_powers, dt, grade=0.0) -> BatchResult:
        """Resolve a batch of candidate actions (seed implementation)."""
        currents = np.asarray(currents, dtype=float)
        gears = np.asarray(gears, dtype=int)
        aux = np.asarray(aux_powers, dtype=float)
        if not (len(currents) == len(gears) == len(aux)):
            raise ConfigurationError(
                "action component arrays must be index-aligned")
        if dt <= 0:
            raise ConfigurationError("time step must be positive")

        wheel_speed = float(self.dynamics.wheel_speed(speed))
        wheel_torque = float(self.dynamics.wheel_torque(speed, acceleration,
                                                        grade))
        p_dem = float(self.dynamics.power_demand(speed, acceleration, grade))

        if wheel_speed <= _SPEED_TOL:
            return self._reference_standstill(p_dem, currents, gears, aux,
                                              soc, dt)
        return self._reference_moving(wheel_speed, wheel_torque, p_dem,
                                      currents, gears, aux, soc, dt)

    # ------------------------------------------------------------ internals ---

    def _soc_after(self, currents: np.ndarray, soc: float,
                   dt: float) -> np.ndarray:
        """Post-step SoC (fraction) for each actual current (seed code)."""
        p = self.params.battery
        delta = np.where(currents >= 0.0, -currents * dt,
                         -currents * dt * p.coulombic_efficiency)
        charge = soc * p.capacity + delta
        return np.clip(charge / p.capacity, 0.0, 1.0)

    def _window_ok(self, soc_next: np.ndarray) -> np.ndarray:
        """True where the post-step SoC stays inside the slackened window."""
        p = self.params.battery
        return ((soc_next >= p.soc_min - _WINDOW_SLACK - _WINDOW_EDGE_TOL)
                & (soc_next <= p.soc_max + _WINDOW_SLACK + _WINDOW_EDGE_TOL))

    def _reference_standstill(self, p_dem: float, currents: np.ndarray,
                              gears: np.ndarray, aux: np.ndarray, soc: float,
                              dt: float) -> BatchResult:
        """Seed disengaged-powertrain case (v = 0), verbatim."""
        n = len(currents)
        i_act = np.asarray(self.battery.current_for_power(aux, soc),
                           dtype=float)
        i_act = self.battery.clamp_current(i_act)
        p_batt = np.asarray(self.battery.terminal_power(i_act, soc),
                            dtype=float)
        soc_next = self._soc_after(i_act, soc, dt)
        window = self._window_ok(soc_next)
        zeros = np.zeros(n)
        meets = np.ones(n, dtype=bool)
        feasible = window & meets
        mode = classify(zeros, zeros, np.zeros(n), np.zeros(n, dtype=bool))
        return BatchResult(
            feasible=feasible, mode=mode, power_demand=p_dem, wheel_speed=0.0,
            wheel_torque=0.0, gear=gears.copy(), engine_speed=zeros.copy(),
            engine_torque=zeros.copy(), motor_speed=zeros.copy(),
            motor_torque=zeros.copy(), battery_current=i_act,
            battery_power=p_batt, aux_power=aux.copy(), fuel_rate=zeros.copy(),
            brake_torque=zeros.copy(), meets_demand=meets, window_ok=window,
            soc_next=soc_next, shortfall=zeros.copy())

    def _reference_moving(self, wheel_speed: float, wheel_torque: float,
                          p_dem: float, currents: np.ndarray,
                          gears: np.ndarray, aux: np.ndarray, soc: float,
                          dt: float) -> BatchResult:
        """Seed engaged-powertrain case (v > 0), verbatim."""
        trans = self.transmission

        omega_eng = np.asarray(trans.engine_speed(wheel_speed, gears),
                               dtype=float)
        omega_mot = np.asarray(trans.motor_speed(wheel_speed, gears),
                               dtype=float)
        t_shaft_req = np.asarray(
            trans.required_shaft_torque(wheel_torque, gears), dtype=float)

        motor_speed_ok = omega_mot <= self.params.motor.max_speed + 1e-9
        engine_can_run = ((omega_eng >= self._engine_min_speed)
                          & (omega_eng <= self._engine_max_speed))

        # Commanded EM torque from the commanded current (the "intent").
        i_cmd = np.asarray(self.battery.clamp_current(currents), dtype=float)
        p_batt_cmd = np.asarray(self.battery.terminal_power(i_cmd, soc),
                                dtype=float)
        p_em_cmd = p_batt_cmd - aux
        t_em_cmd = np.asarray(
            self.motor.torque_from_electrical_power(p_em_cmd, omega_mot),
            dtype=float)
        t_em_lim = np.asarray(self.motor.max_torque(omega_mot), dtype=float)
        t_em = np.clip(t_em_cmd, -t_em_lim, t_em_lim)

        braking = t_shaft_req < 0.0
        t_em_demand = np.asarray(
            trans.motor_torque_from_shaft(t_shaft_req), dtype=float)

        # --- braking: engine declutched, regen bounded by demand and envelope
        t_em_brk = np.clip(t_em, np.maximum(-t_em_lim, t_em_demand), 0.0)

        # --- motoring: engine makes up the remainder, cannot absorb surplus
        shaft_from_em = np.asarray(trans.motor_torque_at_shaft(t_em),
                                   dtype=float)
        t_ice_raw = t_shaft_req - shaft_from_em
        t_ice_max = np.asarray(self.engine.max_torque(omega_eng), dtype=float)
        ev_only = (~engine_can_run) | (t_ice_raw <= _TORQUE_TOL)
        t_em_ev = np.clip(t_em_demand, -t_em_lim, t_em_lim)
        ev_meets = np.abs(t_em_ev - t_em_demand) <= _TORQUE_TOL
        t_ice_mot = np.clip(t_ice_raw, 0.0, t_ice_max)
        eng_meets = t_ice_raw <= t_ice_max + _TORQUE_TOL

        t_em_final = np.where(braking, t_em_brk,
                              np.where(ev_only, t_em_ev, t_em))
        t_ice_final = np.where(braking | ev_only, 0.0, t_ice_mot)
        meets = np.where(braking, True, np.where(ev_only, ev_meets, eng_meets))
        meets = meets & motor_speed_ok
        engine_off = t_ice_final <= _TORQUE_TOL
        omega_eng_final = np.where(engine_off, 0.0, omega_eng)

        delivered_shaft = (t_ice_final
                           + np.asarray(trans.motor_torque_at_shaft(t_em_final),
                                        dtype=float))
        shortfall = np.where(braking, 0.0,
                             np.maximum(t_shaft_req - delivered_shaft, 0.0))
        shortfall = np.where(motor_speed_ok, shortfall, np.abs(t_shaft_req))

        # Actual electrical balance after saturation.
        p_em_act = np.asarray(
            self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
        p_batt_act = p_em_act + aux
        i_act = np.asarray(self.battery.current_for_power(p_batt_act, soc),
                           dtype=float)
        over_chg = i_act < -self.params.battery.max_current
        if np.any(over_chg):
            i_clamped = self.battery.clamp_current(i_act)
            p_batt_lim = np.asarray(
                self.battery.terminal_power(i_clamped, soc), dtype=float)
            p_em_lim = p_batt_lim - aux
            t_em_lim_chg = np.asarray(
                self.motor.torque_from_electrical_power(p_em_lim, omega_mot),
                dtype=float)
            t_em_final = np.where(over_chg,
                                  np.clip(t_em_lim_chg, -t_em_lim, 0.0),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot),
                dtype=float)
            p_batt_act = p_em_act + aux
            i_act = np.asarray(self.battery.current_for_power(p_batt_act, soc),
                               dtype=float)
        current_ok = np.asarray(self.battery.is_current_feasible(i_act))
        i_act = np.asarray(self.battery.clamp_current(i_act), dtype=float)
        p_batt_check = np.asarray(self.battery.terminal_power(i_act, soc),
                                  dtype=float)
        power_ok = np.abs(p_batt_check - p_batt_act) <= np.maximum(
            50.0, 0.02 * np.abs(p_batt_act))
        starved = (~power_ok) & (t_em_final > 0.0)
        if np.any(starved):
            p_em_avail = p_batt_check - aux
            t_em_avail = np.clip(np.asarray(
                self.motor.torque_from_electrical_power(p_em_avail, omega_mot),
                dtype=float), 0.0, t_em_lim)
            t_em_final = np.where(starved,
                                  np.minimum(t_em_final, t_em_avail),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot),
                dtype=float)
            p_batt_act = p_em_act + aux
            i_act = np.asarray(self.battery.clamp_current(
                self.battery.current_for_power(p_batt_act, soc)), dtype=float)
            p_batt_check = np.asarray(self.battery.terminal_power(i_act, soc),
                                      dtype=float)
            delivered_shaft = (t_ice_final + np.asarray(
                trans.motor_torque_at_shaft(t_em_final), dtype=float))
            shortfall = np.where(braking, 0.0,
                                 np.maximum(t_shaft_req - delivered_shaft,
                                            0.0))
            shortfall = np.where(motor_speed_ok, shortfall,
                                 np.abs(t_shaft_req))

        soc_next = self._soc_after(i_act, soc, dt)
        window = self._window_ok(soc_next)

        fuel = np.asarray(
            self.engine.fuel_rate(t_ice_final, omega_eng_final), dtype=float)
        fuel = np.where(engine_off, 0.0, fuel)

        brake = np.where(
            braking,
            np.minimum(wheel_torque - np.asarray(
                trans.wheel_torque(0.0, t_em_final, gears), dtype=float), 0.0),
            0.0)

        feasible = meets & window & current_ok & power_ok
        mode = classify(t_ice_final, t_em_final,
                        np.full(len(gears), wheel_speed), braking)

        return BatchResult(
            feasible=feasible, mode=mode, power_demand=p_dem,
            wheel_speed=wheel_speed, wheel_torque=wheel_torque,
            gear=gears.copy(), engine_speed=omega_eng_final,
            engine_torque=t_ice_final, motor_speed=omega_mot,
            motor_torque=t_em_final, battery_current=i_act,
            battery_power=p_batt_check, aux_power=aux.copy(), fuel_rate=fuel,
            brake_torque=brake, meets_demand=meets, window_ok=window,
            soc_next=soc_next, shortfall=shortfall)


class ScalarReferenceSolver(ReferencePowertrainSolver):
    """The seed physics driven one action at a time (no grid batching).

    Every candidate action is resolved through its own single-element batch
    and the results are stitched back together.  Because every seed
    operation is elementwise over the action axis (reductions like
    ``np.any`` only *gate* elementwise corrections), the stitched result is
    bit-identical to the batched one — the equivalence suite asserts it.
    This is the honest "before" of the struct-of-arrays refactor: the cost
    of the action grid without any vectorisation.
    """

    def evaluate_actions(self, speed, acceleration, soc, currents, gears,
                         aux_powers, dt, grade=0.0) -> BatchResult:
        """Resolve each action through its own single-element seed batch."""
        currents = np.asarray(currents, dtype=float)
        gears = np.asarray(gears, dtype=int)
        aux = np.asarray(aux_powers, dtype=float)
        if not (len(currents) == len(gears) == len(aux)):
            raise ConfigurationError(
                "action component arrays must be index-aligned")
        singles = [
            super(ScalarReferenceSolver, self).evaluate_actions(
                speed, acceleration, soc, currents[i:i + 1], gears[i:i + 1],
                aux[i:i + 1], dt, grade)
            for i in range(len(currents))
        ]
        if not singles:
            return super().evaluate_actions(speed, acceleration, soc,
                                            currents, gears, aux, dt, grade)
        first = singles[0]
        cat = {
            name: np.concatenate([getattr(s, name) for s in singles])
            for name in ("feasible", "mode", "gear", "engine_speed",
                         "engine_torque", "motor_speed", "motor_torque",
                         "battery_current", "battery_power", "aux_power",
                         "fuel_rate", "brake_torque", "meets_demand",
                         "window_ok", "soc_next", "shortfall")
        }
        return BatchResult(power_demand=first.power_demand,
                           wheel_speed=first.wheel_speed,
                           wheel_torque=first.wheel_torque, **cat)
