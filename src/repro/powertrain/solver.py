"""Backward-looking parallel-HEV powertrain solver.

This module resolves the paper's Section 2.2 control flow: the driver fixes
speed ``v`` and acceleration ``a``; the controller picks the battery current
``i``, the gear ``R(k)``, and the auxiliary power ``p_aux``; everything else
(engine and motor torques/speeds, actual battery power, fuel rate, friction
braking) is a dependent variable that this solver computes.

Saturation semantics
--------------------
Discrete current actions rarely hit the exact power balance, so the solver
treats the commanded current as an *intent* and saturates it against the
physics, the way a real supervisory controller's lower layers would:

* If the EM (fed by the commanded current) would over-deliver torque while
  motoring, the engine cannot absorb the excess, so the EM torque is cut back
  to exactly meet demand and the actual current is recomputed.
* While braking, the engine is declutched and fuel is cut; the EM may not
  regenerate harder than the demanded braking torque, the envelope, or the
  battery's charge-current limit, and friction brakes absorb the remainder.
* At standstill the powertrain is disengaged and only the auxiliaries load
  the battery.

An action is *infeasible* when it cannot deliver the demanded traction (the
engine would exceed its wide-open-throttle curve, or EV-only operation would
exceed the EM envelope) or when it would push the battery charge outside the
charge-sustaining window.  The solver always reports the achievable torque
shortfall so the simulator can fall back gracefully on pathological steps.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.powertrain.modes import classify
from repro.powertrain.operating_point import BatchResult, OperatingPoint
from repro.vehicle.auxiliary import AuxiliarySystem
from repro.vehicle.battery import Battery
from repro.vehicle.dynamics import VehicleDynamics
from repro.vehicle.engine import Engine
from repro.vehicle.motor import Motor
from repro.vehicle.params import VehicleParams
from repro.vehicle.transmission import Transmission

_TORQUE_TOL = 1e-6
_SPEED_TOL = 1e-6
_WINDOW_SLACK = 0.01
"""SoC slack (fraction of capacity) tolerated beyond the operating window
before an action is declared infeasible; keeps boundary states solvable."""
_WINDOW_EDGE_TOL = 1e-9
"""Absolute tolerance on the slackened window edges: a post-step SoC that
lands *exactly* on an edge must count as inside, but the Coulomb-counting
round trip (charge -> fraction) can round the landing a few ULPs past it.
The window comparison is therefore edge-inclusive up to this tolerance."""


class PowertrainSolver:
    """Resolves dependent powertrain variables for batches of actions."""

    def __init__(self, params: VehicleParams, engine=None):
        """``engine`` substitutes a drop-in engine model (e.g. a
        :class:`repro.vehicle.maps.TabulatedEngine` built from a measured
        fuel map) for the parametric default."""
        self._params = params
        self.dynamics = VehicleDynamics(params.body)
        self.engine = engine if engine is not None else Engine(params.engine)
        self.motor = Motor(params.motor)
        self.battery = Battery(params.battery)
        self.transmission = Transmission(params.transmission)
        self.auxiliary = AuxiliarySystem(params.auxiliary)
        # The speed band comes from the active engine model, which may be a
        # tabulated substitute with a different grid than the params.
        self._engine_min_speed = getattr(self.engine, "min_speed",
                                         params.engine.min_speed)
        self._engine_max_speed = getattr(self.engine, "max_speed",
                                         params.engine.max_speed)
        if hasattr(self.engine, "params"):
            self._engine_min_speed = self.engine.params.min_speed
            self._engine_max_speed = self.engine.params.max_speed

    @property
    def params(self) -> VehicleParams:
        """The vehicle parameter set this solver was built from."""
        return self._params

    # ------------------------------------------------------------------ API ---

    def evaluate_actions(self, speed: float, acceleration: float, soc: float,
                         currents: Sequence[float], gears: Sequence[int],
                         aux_powers: Sequence[float], dt: float,
                         grade: float = 0.0) -> BatchResult:
        """Resolve a batch of candidate actions for one driver demand.

        ``currents``, ``gears`` and ``aux_powers`` must be index-aligned
        arrays of equal length N; the result is a :class:`BatchResult` of
        length N.  ``soc`` is the pack state of charge as a fraction.
        """
        currents = np.asarray(currents, dtype=float)
        gears = np.asarray(gears, dtype=int)
        aux = np.asarray(aux_powers, dtype=float)
        if not (len(currents) == len(gears) == len(aux)):
            raise ConfigurationError(
                "action component arrays must be index-aligned")
        if dt <= 0:
            raise ConfigurationError("time step must be positive")

        wheel_speed = float(self.dynamics.wheel_speed(speed))
        wheel_torque = float(self.dynamics.wheel_torque(speed, acceleration, grade))
        p_dem = float(self.dynamics.power_demand(speed, acceleration, grade))

        if wheel_speed <= _SPEED_TOL:
            return self._standstill(p_dem, currents, gears, aux, soc, dt)
        return self._moving(wheel_speed, wheel_torque, p_dem, currents, gears,
                            aux, soc, dt)

    def evaluate(self, speed: float, acceleration: float, soc: float,
                 current: float, gear: int, aux_power: float, dt: float,
                 grade: float = 0.0) -> OperatingPoint:
        """Scalar convenience wrapper around :meth:`evaluate_actions`."""
        batch = self.evaluate_actions(speed, acceleration, soc, [current],
                                      [gear], [aux_power], dt, grade)
        return batch.point(0)

    # ------------------------------------------------------------ internals ---

    def _soc_after(self, currents: np.ndarray, soc: float, dt: float) -> np.ndarray:
        """Post-step SoC (fraction) for each actual current, by Coulomb counting."""
        p = self._params.battery
        delta = np.where(currents >= 0.0, -currents * dt,
                         -currents * dt * p.coulombic_efficiency)
        charge = soc * p.capacity + delta
        return np.clip(charge / p.capacity, 0.0, 1.0)

    def _window_ok(self, soc_next: np.ndarray) -> np.ndarray:
        """True where the post-step SoC stays inside the (slackened) window.

        Edge-inclusive: landing exactly on ``soc_min - slack`` (or the upper
        mirror) is feasible even when floating-point round-off places the
        computed fraction a few ULPs outside.
        """
        p = self._params.battery
        return ((soc_next >= p.soc_min - _WINDOW_SLACK - _WINDOW_EDGE_TOL)
                & (soc_next <= p.soc_max + _WINDOW_SLACK + _WINDOW_EDGE_TOL))

    def _standstill(self, p_dem: float, currents: np.ndarray, gears: np.ndarray,
                    aux: np.ndarray, soc: float, dt: float) -> BatchResult:
        """Resolve the disengaged-powertrain case (v = 0).

        The commanded current is irrelevant: the only battery load is the
        auxiliary draw, so the actual current is whatever sustains ``p_aux``.
        """
        n = len(currents)
        i_act = np.asarray(self.battery.current_for_power(aux, soc), dtype=float)
        i_act = self.battery.clamp_current(i_act)
        p_batt = np.asarray(self.battery.terminal_power(i_act, soc), dtype=float)
        soc_next = self._soc_after(i_act, soc, dt)
        window = self._window_ok(soc_next)
        zeros = np.zeros(n)
        meets = np.ones(n, dtype=bool)
        feasible = window & meets
        mode = classify(zeros, zeros, np.zeros(n), np.zeros(n, dtype=bool))
        return BatchResult(
            feasible=feasible, mode=mode, power_demand=p_dem, wheel_speed=0.0,
            wheel_torque=0.0, gear=gears.copy(), engine_speed=zeros.copy(),
            engine_torque=zeros.copy(), motor_speed=zeros.copy(),
            motor_torque=zeros.copy(), battery_current=i_act,
            battery_power=p_batt, aux_power=aux.copy(), fuel_rate=zeros.copy(),
            brake_torque=zeros.copy(), meets_demand=meets, window_ok=window,
            soc_next=soc_next, shortfall=zeros.copy())

    def _moving(self, wheel_speed: float, wheel_torque: float, p_dem: float,
                currents: np.ndarray, gears: np.ndarray, aux: np.ndarray,
                soc: float, dt: float) -> BatchResult:
        """Resolve the engaged-powertrain case (v > 0) for a batch of actions."""
        trans = self.transmission

        omega_eng = np.asarray(trans.engine_speed(wheel_speed, gears), dtype=float)
        omega_mot = np.asarray(trans.motor_speed(wheel_speed, gears), dtype=float)
        t_shaft_req = np.asarray(
            trans.required_shaft_torque(wheel_torque, gears), dtype=float)

        motor_speed_ok = omega_mot <= self._params.motor.max_speed + 1e-9
        engine_can_run = ((omega_eng >= self._engine_min_speed)
                          & (omega_eng <= self._engine_max_speed))

        # Commanded EM torque from the commanded current (the "intent").
        i_cmd = np.asarray(self.battery.clamp_current(currents), dtype=float)
        p_batt_cmd = np.asarray(self.battery.terminal_power(i_cmd, soc), dtype=float)
        p_em_cmd = p_batt_cmd - aux
        t_em_cmd = np.asarray(
            self.motor.torque_from_electrical_power(p_em_cmd, omega_mot),
            dtype=float)
        t_em_lim = np.asarray(self.motor.max_torque(omega_mot), dtype=float)
        t_em = np.clip(t_em_cmd, -t_em_lim, t_em_lim)

        braking = t_shaft_req < 0.0
        # EM torque needed to meet the full shaft demand alone (for EV-only
        # operation and for bounding regen).
        t_em_demand = np.asarray(
            trans.motor_torque_from_shaft(t_shaft_req), dtype=float)

        # --- braking: engine declutched, regen bounded by demand and envelope
        t_em_brk = np.clip(t_em, np.maximum(-t_em_lim, t_em_demand), 0.0)

        # --- motoring: engine makes up the remainder, cannot absorb surplus
        shaft_from_em = np.asarray(trans.motor_torque_at_shaft(t_em), dtype=float)
        t_ice_raw = t_shaft_req - shaft_from_em
        t_ice_max = np.asarray(self.engine.max_torque(omega_eng), dtype=float)
        ev_only = (~engine_can_run) | (t_ice_raw <= _TORQUE_TOL)
        # EV-only: the EM must carry the whole demand by itself.
        t_em_ev = np.clip(t_em_demand, -t_em_lim, t_em_lim)
        ev_meets = np.abs(t_em_ev - t_em_demand) <= _TORQUE_TOL
        # Engine-assisted: engine clipped at wide-open throttle.
        t_ice_mot = np.clip(t_ice_raw, 0.0, t_ice_max)
        eng_meets = t_ice_raw <= t_ice_max + _TORQUE_TOL

        t_em_final = np.where(braking, t_em_brk, np.where(ev_only, t_em_ev, t_em))
        t_ice_final = np.where(braking | ev_only, 0.0, t_ice_mot)
        meets = np.where(braking, True, np.where(ev_only, ev_meets, eng_meets))
        meets = meets & motor_speed_ok
        # Engine speed collapses to zero when it produces no torque (declutched).
        engine_off = t_ice_final <= _TORQUE_TOL
        omega_eng_final = np.where(engine_off, 0.0, omega_eng)

        # Undelivered shaft torque for graceful fallback ranking.
        delivered_shaft = (t_ice_final
                           + np.asarray(trans.motor_torque_at_shaft(t_em_final),
                                        dtype=float))
        shortfall = np.where(braking, 0.0,
                             np.maximum(t_shaft_req - delivered_shaft, 0.0))
        shortfall = np.where(motor_speed_ok, shortfall, np.abs(t_shaft_req))

        # Actual electrical balance after saturation.
        p_em_act = np.asarray(
            self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
        p_batt_act = p_em_act + aux
        i_act = np.asarray(self.battery.current_for_power(p_batt_act, soc),
                           dtype=float)
        # Regen may exceed the charge-current limit: clamp and shed the excess
        # regeneration to the friction brakes.
        over_chg = i_act < -self._params.battery.max_current
        if np.any(over_chg):
            i_clamped = self.battery.clamp_current(i_act)
            p_batt_lim = np.asarray(
                self.battery.terminal_power(i_clamped, soc), dtype=float)
            p_em_lim = p_batt_lim - aux
            t_em_lim_chg = np.asarray(
                self.motor.torque_from_electrical_power(p_em_lim, omega_mot),
                dtype=float)
            t_em_final = np.where(over_chg, np.clip(t_em_lim_chg, -t_em_lim, 0.0),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
            p_batt_act = p_em_act + aux
            i_act = np.asarray(self.battery.current_for_power(p_batt_act, soc),
                               dtype=float)
        current_ok = np.asarray(self.battery.is_current_feasible(i_act))
        # Whatever gets executed must be a physical current: clamp to the
        # pack limit (the pre-clamp check above already marked the point
        # infeasible, but the fallback path may still execute it).
        i_act = np.asarray(self.battery.clamp_current(i_act), dtype=float)
        # Discharge saturation (demand beyond pack power) shows up as the
        # quadratic clamping inside current_for_power; flag it infeasible when
        # the delivered bus power misses the requirement.
        p_batt_check = np.asarray(self.battery.terminal_power(i_act, soc),
                                  dtype=float)
        power_ok = np.abs(p_batt_check - p_batt_act) <= np.maximum(
            50.0, 0.02 * np.abs(p_batt_act))
        # Discharge starvation: the pack cannot feed the EM the electrical
        # power its torque requires.  The point is flagged infeasible above,
        # but the fallback path may still execute it, so cut the executed EM
        # torque back to what the delivered bus power can actually feed —
        # otherwise the reported operating point creates energy (motor
        # mechanical output above its electrical input).
        starved = (~power_ok) & (t_em_final > 0.0)
        if np.any(starved):
            p_em_avail = p_batt_check - aux
            t_em_avail = np.clip(np.asarray(
                self.motor.torque_from_electrical_power(p_em_avail, omega_mot),
                dtype=float), 0.0, t_em_lim)
            t_em_final = np.where(starved, np.minimum(t_em_final, t_em_avail),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
            p_batt_act = p_em_act + aux
            i_act = np.asarray(self.battery.clamp_current(
                self.battery.current_for_power(p_batt_act, soc)), dtype=float)
            p_batt_check = np.asarray(self.battery.terminal_power(i_act, soc),
                                      dtype=float)
            delivered_shaft = (t_ice_final + np.asarray(
                trans.motor_torque_at_shaft(t_em_final), dtype=float))
            shortfall = np.where(braking, 0.0,
                                 np.maximum(t_shaft_req - delivered_shaft, 0.0))
            shortfall = np.where(motor_speed_ok, shortfall, np.abs(t_shaft_req))

        soc_next = self._soc_after(i_act, soc, dt)
        window = self._window_ok(soc_next)

        fuel = np.asarray(
            self.engine.fuel_rate(t_ice_final, omega_eng_final), dtype=float)
        fuel = np.where(engine_off, 0.0, fuel)

        brake = np.where(
            braking,
            np.minimum(wheel_torque - np.asarray(
                trans.wheel_torque(0.0, t_em_final, gears), dtype=float), 0.0),
            0.0)

        feasible = meets & window & current_ok & power_ok
        mode = classify(t_ice_final, t_em_final,
                        np.full(len(gears), wheel_speed), braking)

        return BatchResult(
            feasible=feasible, mode=mode, power_demand=p_dem,
            wheel_speed=wheel_speed, wheel_torque=wheel_torque,
            gear=gears.copy(), engine_speed=omega_eng_final,
            engine_torque=t_ice_final, motor_speed=omega_mot,
            motor_torque=t_em_final, battery_current=i_act,
            battery_power=p_batt_check, aux_power=aux.copy(), fuel_rate=fuel,
            brake_torque=brake, meets_demand=meets, window_ok=window,
            soc_next=soc_next, shortfall=shortfall)
