"""Backward-looking parallel-HEV powertrain solver.

This module resolves the paper's Section 2.2 control flow: the driver fixes
speed ``v`` and acceleration ``a``; the controller picks the battery current
``i``, the gear ``R(k)``, and the auxiliary power ``p_aux``; everything else
(engine and motor torques/speeds, actual battery power, fuel rate, friction
braking) is a dependent variable that this solver computes.

Saturation semantics
--------------------
Discrete current actions rarely hit the exact power balance, so the solver
treats the commanded current as an *intent* and saturates it against the
physics, the way a real supervisory controller's lower layers would:

* If the EM (fed by the commanded current) would over-deliver torque while
  motoring, the engine cannot absorb the excess, so the EM torque is cut back
  to exactly meet demand and the actual current is recomputed.
* While braking, the engine is declutched and fuel is cut; the EM may not
  regenerate harder than the demanded braking torque, the envelope, or the
  battery's charge-current limit, and friction brakes absorb the remainder.
* At standstill the powertrain is disengaged and only the auxiliaries load
  the battery.

An action is *infeasible* when it cannot deliver the demanded traction (the
engine would exceed its wide-open-throttle curve, or EV-only operation would
exceed the EM envelope) or when it would push the battery charge outside the
charge-sustaining window.  The solver always reports the achievable torque
shortfall so the simulator can fall back gracefully on pathological steps.

Struct-of-arrays fast path
--------------------------
The batch kernel is organised around two precomputation layers (see
:mod:`repro.powertrain.tables` and ``docs/PERFORMANCE.md``):

* per-vehicle constants (:class:`PowertrainTables`, built once per solver
  configuration and rebuilt automatically when fault injection re-runs
  ``__init__`` in place), and
* per-action-grid statics (:class:`ActionGridWorkspace`, built once per
  controller grid and reused every step), with per-*unique-gear* evaluation
  of the gear-dependent quantities followed by ``np.take`` gathers.

The kernel is arithmetically **bit-identical** to the frozen seed
implementation preserved in :mod:`repro.powertrain.reference` — same
elementwise operations in the same association order — which the golden
equivalence suite (``tests/test_vectorized_equivalence.py``) enforces.
Results produced through a caller-held workspace reuse its buffers and are
only valid until the next evaluation on that workspace.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.powertrain.modes import OperatingMode, classify
from repro.powertrain.operating_point import BatchResult, OperatingPoint
from repro.powertrain.tables import ActionGridWorkspace, PowertrainTables
from repro.vehicle.auxiliary import AuxiliarySystem
from repro.vehicle.battery import Battery
from repro.vehicle.dynamics import VehicleDynamics
from repro.vehicle.engine import Engine
from repro.vehicle.motor import Motor
from repro.vehicle.params import VehicleParams
from repro.vehicle.transmission import Transmission

_TORQUE_TOL = 1e-6
_SPEED_TOL = 1e-6
_WINDOW_SLACK = 0.01
"""SoC slack (fraction of capacity) tolerated beyond the operating window
before an action is declared infeasible; keeps boundary states solvable."""
_WINDOW_EDGE_TOL = 1e-9
"""Absolute tolerance on the slackened window edges: a post-step SoC that
lands *exactly* on an edge must count as inside, but the Coulomb-counting
round trip (charge -> fraction) can round the landing a few ULPs past it.
The window comparison is therefore edge-inclusive up to this tolerance."""

_CONFIG_EPOCHS = itertools.count()
"""Monotonic configuration-epoch source.  Each ``PowertrainSolver.__init__``
takes a fresh epoch, including the in-place re-initialisations the fault
harness performs, so caller-held workspaces can detect plant changes."""


class PowertrainSolver:
    """Resolves dependent powertrain variables for batches of actions."""

    def __init__(self, params: VehicleParams, engine=None):
        """``engine`` substitutes a drop-in engine model (e.g. a
        :class:`repro.vehicle.maps.TabulatedEngine` built from a measured
        fuel map) for the parametric default."""
        self._params = params
        self.dynamics = VehicleDynamics(params.body)
        self.engine = engine if engine is not None else Engine(params.engine)
        self.motor = Motor(params.motor)
        self.battery = Battery(params.battery)
        self.transmission = Transmission(params.transmission)
        self.auxiliary = AuxiliarySystem(params.auxiliary)
        # The speed band comes from the active engine model, which may be a
        # tabulated substitute with a different grid than the params.
        self._engine_min_speed = getattr(self.engine, "min_speed",
                                         params.engine.min_speed)
        self._engine_max_speed = getattr(self.engine, "max_speed",
                                         params.engine.max_speed)
        if hasattr(self.engine, "params"):
            self._engine_min_speed = self.engine.params.min_speed
            self._engine_max_speed = self.engine.params.max_speed
        self._epoch = next(_CONFIG_EPOCHS)
        self.tables = PowertrainTables(self)

    @property
    def params(self) -> VehicleParams:
        """The vehicle parameter set this solver was built from."""
        return self._params

    # ------------------------------------------------------------------ API ---

    def workspace(self, currents: Sequence[float], gears: Sequence[int],
                  aux_powers: Sequence[float]) -> ActionGridWorkspace:
        """Bind a fixed candidate action grid to this solver for reuse.

        The returned workspace precomputes every state-independent quantity
        of the grid and preallocates the per-step buffers; feed it to
        :meth:`evaluate_grid` each step.  It survives in-place plant
        rebuilds (fault injection) by re-deriving its statics on demand.
        """
        return ActionGridWorkspace(self, currents, gears, aux_powers)

    def evaluate_actions(self, speed: float, acceleration: float, soc: float,
                         currents: Sequence[float], gears: Sequence[int],
                         aux_powers: Sequence[float], dt: float,
                         grade: float = 0.0) -> BatchResult:
        """Resolve a batch of candidate actions for one driver demand.

        ``currents``, ``gears`` and ``aux_powers`` must be index-aligned
        arrays of equal length N; the result is a :class:`BatchResult` of
        length N.  ``soc`` is the pack state of charge as a fraction.

        This compatibility path builds a throwaway workspace per call and
        therefore owns its output arrays, like the seed implementation;
        steady-state callers should hold a :meth:`workspace` and use
        :meth:`evaluate_grid` instead.
        """
        workspace = ActionGridWorkspace(
            self, np.array(currents, dtype=float),
            np.array(gears, dtype=int), np.array(aux_powers, dtype=float))
        return self.evaluate_grid(workspace, speed, acceleration, soc, dt,
                                  grade)

    def evaluate_grid(self, workspace: ActionGridWorkspace, speed: float,
                      acceleration: float, soc: float, dt: float,
                      grade: float = 0.0) -> BatchResult:
        """Resolve the workspace's action grid for one driver demand.

        The hot path: all grid statics and buffers come from ``workspace``,
        so the returned :class:`BatchResult` aliases workspace storage and
        is only valid until the next ``evaluate_grid`` call on the same
        workspace (copy what must survive).
        """
        if workspace.solver is not self:
            raise ConfigurationError(
                "workspace is bound to a different solver")
        if dt <= 0:
            raise ConfigurationError("time step must be positive")
        workspace.ensure_current()

        # One road-load evaluation serves wheel torque and power demand
        # (the seed computed it twice with identical inputs).
        speed_arr = np.asarray(speed, dtype=float)
        tractive = self.dynamics.road_load(speed, acceleration, grade).total
        wheel_speed = float(speed_arr / self.tables.wheel_radius)
        wheel_torque = float(tractive * self.tables.wheel_radius)
        p_dem = float(tractive * speed_arr)

        if wheel_speed <= _SPEED_TOL:
            return self._standstill_grid(workspace, p_dem, float(soc), dt)
        return self._moving_grid(workspace, wheel_speed, wheel_torque, p_dem,
                                 float(soc), dt)

    def evaluate(self, speed: float, acceleration: float, soc: float,
                 current: float, gear: int, aux_power: float, dt: float,
                 grade: float = 0.0) -> OperatingPoint:
        """Scalar convenience wrapper around :meth:`evaluate_actions`."""
        batch = self.evaluate_actions(speed, acceleration, soc, [current],
                                      [gear], [aux_power], dt, grade)
        return batch.point(0)

    # ------------------------------------------------------------ internals ---

    def _soc_after(self, currents: np.ndarray, soc: float, dt: float) -> np.ndarray:
        """Post-step SoC (fraction) for each actual current, by Coulomb counting."""
        p = self._params.battery
        delta = np.where(currents >= 0.0, -currents * dt,
                         -currents * dt * p.coulombic_efficiency)
        charge = soc * p.capacity + delta
        return np.clip(charge / p.capacity, 0.0, 1.0)

    def _window_ok(self, soc_next: np.ndarray) -> np.ndarray:
        """True where the post-step SoC stays inside the (slackened) window.

        Edge-inclusive: landing exactly on ``soc_min - slack`` (or the upper
        mirror) is feasible even when floating-point round-off places the
        computed fraction a few ULPs outside.
        """
        p = self._params.battery
        return ((soc_next >= p.soc_min - _WINDOW_SLACK - _WINDOW_EDGE_TOL)
                & (soc_next <= p.soc_max + _WINDOW_SLACK + _WINDOW_EDGE_TOL))

    def _open_circuit_voltage(self, soc: float) -> np.float64:
        """Scalar OCV, arithmetically identical to :meth:`Battery.open_circuit_voltage`."""
        tables = self.tables
        soc_c = min(max(soc, 0.0), 1.0)
        return np.float64(tables.voltage_at_empty + tables.voc_span * soc_c)

    def _standstill_grid(self, ws: ActionGridWorkspace, p_dem: float,
                         soc: float, dt: float) -> BatchResult:
        """Resolve the disengaged-powertrain case (v = 0).

        The commanded current is irrelevant: the only battery load is the
        auxiliary draw, so the actual current is whatever sustains ``p_aux``.
        """
        tables = self.tables
        voc = self._open_circuit_voltage(soc)
        # Square through the power ufunc: np.float64 ** 2 (libm pow) can be
        # 1 ULP off the seed's 0-d-array power, which current_for_power's
        # discriminant then amplifies into a visible current difference.
        voc2 = np.float64(np.asarray(voc) ** 2)

        # battery.current_for_power(aux, soc) against the precomputed
        # per-grid discriminant terms (aux is static per workspace).
        disc = voc2 - ws.four_rd_aux
        disc_i = (voc - np.sqrt(np.maximum(disc, 0.0))) / tables.two_rd
        disc_i = np.where(disc >= 0.0, disc_i, voc / tables.two_rd)
        chg = voc2 - ws.four_rc_aux
        chg_i = (voc - np.sqrt(chg)) / tables.two_rc
        i_act = np.where(ws.aux_nonneg, disc_i, chg_i)
        i_act = np.minimum(np.maximum(i_act, -tables.max_current),
                           tables.max_current)

        r_act = np.where(i_act >= 0.0, tables.discharge_resistance,
                         tables.charge_resistance)
        p_batt = voc * i_act - r_act * i_act ** 2

        neg_idt = -i_act * dt
        delta = np.where(i_act >= 0.0, neg_idt,
                         neg_idt * tables.coulombic_efficiency)
        charge = soc * tables.capacity + delta
        soc_next = np.minimum(np.maximum(charge / tables.capacity, 0.0),
                              1.0)
        window = ((soc_next >= tables.window_lo)
                  & (soc_next <= tables.window_hi))
        feasible = window & ws.ones_bool

        zeros = ws.zeros
        return BatchResult(
            feasible=feasible, mode=ws.idle_mode, power_demand=p_dem,
            wheel_speed=0.0, wheel_torque=0.0, gear=ws.gears,
            engine_speed=zeros, engine_torque=zeros, motor_speed=zeros,
            motor_torque=zeros, battery_current=i_act, battery_power=p_batt,
            aux_power=ws.aux, fuel_rate=zeros, brake_torque=zeros,
            meets_demand=ws.ones_bool, window_ok=window, soc_next=soc_next,
            shortfall=zeros)

    def _commanded_torque(self, ws: ActionGridWorkspace, power: np.ndarray,
                          safe_speed: np.ndarray, t_lim_fp: np.ndarray,
                          a_fp: np.ndarray) -> np.ndarray:
        """Motor fixed-point power inversion over workspace scratch buffers.

        Same five ``torque <-> efficiency`` sweeps as
        :meth:`Motor.torque_from_electrical_power`, with the speed-dependent
        subexpressions (``safe_speed``, torque limit, ``1 - 0.5 ds^2``)
        precomputed per unique gear and gathered.  The caller applies the
        zero-speed cutoff.  Returns a workspace buffer.
        """
        tables = self.tables
        eta = ws.buf("fp_eta")
        torque = ws.buf("fp_torque")
        tmp = ws.buf("fp_tmp")
        generating = np.less(power, 0.0, out=ws.bool_buf("fp_generating"))
        eta.fill(tables.motor_peak_efficiency)
        for _ in range(5):
            # torque = where(motoring, power * eta / safe_speed,
            #                power / (eta * safe_speed))
            np.multiply(power, eta, out=torque)
            np.divide(torque, safe_speed, out=torque)
            np.multiply(eta, safe_speed, out=tmp)
            np.divide(power, tmp, out=tmp)
            np.copyto(torque, tmp, where=generating)
            # eta = clip(peak * ((1 - 0.5 ds^2) - 0.45 dt^2), floor, peak)
            np.abs(torque, out=tmp)
            np.divide(tmp, t_lim_fp, out=tmp)
            np.minimum(tmp, 1.5, out=tmp)
            np.subtract(tmp, tables.motor_opt_torque_fraction, out=tmp)
            np.power(tmp, 2.0, out=tmp)
            np.multiply(tmp, 0.45, out=tmp)
            np.subtract(a_fp, tmp, out=tmp)
            np.multiply(tmp, tables.motor_peak_efficiency, out=tmp)
            np.maximum(tmp, tables.motor_efficiency_floor, out=tmp)
            np.minimum(tmp, tables.motor_peak_efficiency, out=eta)
        return torque

    def _moving_grid(self, ws: ActionGridWorkspace, wheel_speed: float,
                     wheel_torque: float, p_dem: float, soc: float,
                     dt: float) -> BatchResult:
        """Resolve the engaged-powertrain case (v > 0) for an action grid."""
        if ws.gear_out_of_range:
            raise IndexError("gear index out of range")
        tables = self.tables
        inv = ws.gear_inv

        # --- per-unique-gear quantities (G entries, then gathered to N) ---
        gear_u = ws.gear_unique
        ratio_u = tables.ratios[gear_u]
        omega_eng_u = wheel_speed * ratio_u
        omega_mot_u = omega_eng_u * tables.reduction_ratio
        motor_ok_u = omega_mot_u <= tables.motor_speed_bound
        can_run_u = ((omega_eng_u >= tables.engine_min_speed)
                     & (omega_eng_u <= tables.engine_max_speed))
        t_em_lim_u = np.asarray(self.motor.max_torque(omega_mot_u),
                                dtype=float)
        neg_lim_u = -t_em_lim_u
        # The demanded shaft torque keeps the sign of the wheel torque for
        # every gear (ratios and efficiencies are positive), so the braking
        # decision is uniform across the batch and the directional branches
        # of the Eq. 8 inversions collapse to scalar Python branches.
        braking = wheel_torque < 0.0
        if braking:
            t_shaft_u = wheel_torque * tables.gearbox_efficiency / ratio_u
            t_em_dem_u = t_shaft_u / tables.rho_x_inv_red_eta
        else:
            t_shaft_u = wheel_torque / tables.ratio_x_gb_eta[gear_u]
            t_em_dem_u = t_shaft_u / tables.rho_x_red_eta
        # Fixed-point inversion statics.
        safe_speed_u = np.maximum(omega_mot_u, 1e-6)
        t_lim_fp_u = np.maximum(t_em_lim_u, 1e-9)
        ds_u = (omega_mot_u / tables.motor_max_speed
                - tables.motor_opt_speed_fraction)
        a_u = 1.0 - 0.5 * ds_u ** 2
        spd_all_pos = bool((omega_mot_u > 1e-6).all())

        omega_mot = omega_mot_u.take(inv)
        motor_ok = motor_ok_u.take(inv)
        t_shaft = t_shaft_u.take(inv)
        t_em_lim = t_em_lim_u.take(inv)
        neg_lim = neg_lim_u.take(inv)
        safe_speed = safe_speed_u.take(inv)
        t_lim_fp = t_lim_fp_u.take(inv)
        a_fp = a_u.take(inv)

        # --- commanded EM torque from the commanded current (the "intent") ---
        voc = self._open_circuit_voltage(soc)
        # Ufunc square, not scalar pow — see the note in _standstill_grid.
        voc2 = np.float64(np.asarray(voc) ** 2)
        p_batt_cmd = voc * ws.i_cmd - ws.ri2_cmd
        p_em_cmd = p_batt_cmd - ws.aux
        t_em_cmd = self._commanded_torque(ws, p_em_cmd, safe_speed, t_lim_fp,
                                          a_fp)
        if not spd_all_pos:
            np.copyto(t_em_cmd, 0.0, where=(~(omega_mot_u > 1e-6)).take(inv))
        t_em = np.minimum(np.maximum(t_em_cmd, neg_lim), t_em_lim)

        if braking:
            # --- engine declutched, regen bounded by demand and envelope ---
            brk_lo = np.maximum(neg_lim_u, t_em_dem_u).take(inv)
            t_em_final = np.minimum(np.maximum(t_em, brk_lo), 0.0)
            t_ice_final = ws.zeros
            meets = motor_ok
            engine_off = ws.ones_bool
            omega_eng_final = ws.zeros
            shortfall = np.where(motor_ok, 0.0, np.abs(t_shaft))
        else:
            # --- motoring: engine makes up the remainder, cannot absorb surplus
            eta_elem = np.where(t_em >= 0.0, tables.reduction_efficiency,
                                tables.inv_reduction_efficiency)
            shaft_from_em = tables.reduction_ratio * t_em * eta_elem
            t_ice_raw = t_shaft - shaft_from_em
            t_ice_max_u = np.asarray(self.engine.max_torque(omega_eng_u),
                                     dtype=float)
            t_ice_max = t_ice_max_u.take(inv)
            can_run = can_run_u.take(inv)
            ev_only = (~can_run) | (t_ice_raw <= _TORQUE_TOL)
            # EV-only: the EM must carry the whole demand by itself.
            t_em_ev_u = np.minimum(np.maximum(t_em_dem_u, neg_lim_u),
                                   t_em_lim_u)
            t_em_ev = t_em_ev_u.take(inv)
            ev_meets = (np.abs(t_em_ev_u - t_em_dem_u)
                        <= _TORQUE_TOL).take(inv)
            # Engine-assisted: engine clipped at wide-open throttle.
            t_ice_mot = np.minimum(np.maximum(t_ice_raw, 0.0), t_ice_max)
            eng_meets = t_ice_raw <= t_ice_max + _TORQUE_TOL

            t_em_final = np.where(ev_only, t_em_ev, t_em)
            t_ice_final = np.where(ev_only, 0.0, t_ice_mot)
            meets = np.where(ev_only, ev_meets, eng_meets) & motor_ok
            # Engine speed collapses to zero when it produces no torque.
            engine_off = t_ice_final <= _TORQUE_TOL
            omega_eng_final = np.where(engine_off, 0.0,
                                       omega_eng_u.take(inv))

            # Undelivered shaft torque for graceful fallback ranking.
            eta_fin = np.where(t_em_final >= 0.0, tables.reduction_efficiency,
                               tables.inv_reduction_efficiency)
            delivered = t_ice_final + tables.reduction_ratio * t_em_final * eta_fin
            shortfall = np.maximum(t_shaft - delivered, 0.0)
            shortfall = np.where(motor_ok, shortfall, np.abs(t_shaft))

        # --- actual electrical balance after saturation ---
        # motor.electrical_power with the per-gear efficiency statics.
        mech = t_em_final * omega_mot
        tf_act = np.minimum(np.abs(t_em_final) / t_lim_fp, 1.5)
        dt_act = tf_act - tables.motor_opt_torque_fraction
        eta_act = np.minimum(
            np.maximum(tables.motor_peak_efficiency * (a_fp - 0.45 * dt_act ** 2),
                       tables.motor_efficiency_floor),
            tables.motor_peak_efficiency)
        p_em_act = np.where(mech >= 0.0, mech / eta_act, mech * eta_act)
        p_batt_act = p_em_act + ws.aux
        # battery.current_for_power(p_batt_act, soc), inline.
        disc = voc2 - tables.four_rd * np.maximum(p_batt_act, 0.0)
        disc_i = (voc - np.sqrt(np.maximum(disc, 0.0))) / tables.two_rd
        i_act = np.where(disc >= 0.0, disc_i, voc / tables.two_rd)
        chg = voc2 - tables.four_rc * np.minimum(p_batt_act, 0.0)
        chg_i = (voc - np.sqrt(chg)) / tables.two_rc
        i_act = np.where(p_batt_act >= 0.0, i_act, chg_i)

        # Regen may exceed the charge-current limit: clamp and shed the excess
        # regeneration to the friction brakes.  (Rare; uses the component
        # models directly, exactly like the reference path.)
        over_chg = i_act < -tables.max_current
        if over_chg.any():
            i_clamped = self.battery.clamp_current(i_act)
            p_batt_lim = np.asarray(
                self.battery.terminal_power(i_clamped, soc), dtype=float)
            p_em_lim = p_batt_lim - ws.aux
            t_em_lim_chg = np.asarray(
                self.motor.torque_from_electrical_power(p_em_lim, omega_mot),
                dtype=float)
            t_em_final = np.where(over_chg, np.clip(t_em_lim_chg, -t_em_lim, 0.0),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
            p_batt_act = p_em_act + ws.aux
            i_act = np.asarray(self.battery.current_for_power(p_batt_act, soc),
                               dtype=float)
        current_ok = np.abs(i_act) <= tables.current_tol
        # Whatever gets executed must be a physical current: clamp to the
        # pack limit (the pre-clamp check above already marked the point
        # infeasible, but the fallback path may still execute it).
        i_act = np.minimum(np.maximum(i_act, -tables.max_current),
                           tables.max_current)
        # Discharge saturation (demand beyond pack power) shows up as the
        # quadratic clamping inside current_for_power; flag it infeasible when
        # the delivered bus power misses the requirement.
        r_act = np.where(i_act >= 0.0, tables.discharge_resistance,
                         tables.charge_resistance)
        p_batt_check = voc * i_act - r_act * i_act ** 2
        power_ok = np.abs(p_batt_check - p_batt_act) <= np.maximum(
            50.0, 0.02 * np.abs(p_batt_act))
        # Discharge starvation: the pack cannot feed the EM the electrical
        # power its torque requires.  The point is flagged infeasible above,
        # but the fallback path may still execute it, so cut the executed EM
        # torque back to what the delivered bus power can actually feed —
        # otherwise the reported operating point creates energy (motor
        # mechanical output above its electrical input).  (Rare; component
        # models, like the reference path.)
        starved = (~power_ok) & (t_em_final > 0.0)
        if starved.any():
            p_em_avail = p_batt_check - ws.aux
            t_em_avail = np.clip(np.asarray(
                self.motor.torque_from_electrical_power(p_em_avail, omega_mot),
                dtype=float), 0.0, t_em_lim)
            t_em_final = np.where(starved, np.minimum(t_em_final, t_em_avail),
                                  t_em_final)
            p_em_act = np.asarray(
                self.motor.electrical_power(t_em_final, omega_mot), dtype=float)
            p_batt_act = p_em_act + ws.aux
            i_act = np.asarray(self.battery.clamp_current(
                self.battery.current_for_power(p_batt_act, soc)), dtype=float)
            p_batt_check = np.asarray(self.battery.terminal_power(i_act, soc),
                                      dtype=float)
            delivered = (t_ice_final + np.asarray(
                self.transmission.motor_torque_at_shaft(t_em_final),
                dtype=float))
            shortfall = np.where(braking, 0.0,
                                 np.maximum(t_shaft - delivered, 0.0))
            shortfall = np.where(motor_ok, shortfall, np.abs(t_shaft))

        # --- Coulomb counting and SoC window ---
        neg_idt = -i_act * dt
        delta = np.where(i_act >= 0.0, neg_idt,
                         neg_idt * tables.coulombic_efficiency)
        charge = soc * tables.capacity + delta
        soc_next = np.minimum(np.maximum(charge / tables.capacity, 0.0),
                              1.0)
        window = ((soc_next >= tables.window_lo)
                  & (soc_next <= tables.window_hi))

        if braking:
            fuel = ws.zeros
            brake = np.minimum(
                wheel_torque - np.asarray(
                    self.transmission.wheel_torque(0.0, t_em_final, ws.gears),
                    dtype=float), 0.0)
            # With the engine declutched the full classify() collapses to
            # "regenerating or idle" (engine torque is identically zero).
            mode = np.where(t_em_final < -_TORQUE_TOL,
                            int(OperatingMode.REGEN),
                            int(OperatingMode.IDLE))
        else:
            if tables.engine_parametric:
                # engine.fuel_rate inlined over the per-gear statics; the
                # declutched elements run through the same arithmetic as the
                # seed (speed 0) and are zeroed just below.
                t_max_fuel = np.where(engine_off, 1e-9,
                                      np.maximum(t_ice_max_u, 1e-9).take(inv))
                torque_frac = np.minimum(
                    np.maximum(t_ice_final / t_max_fuel, 0.0), 1.5)
                ds_eng_u = ((omega_eng_u - tables.eng_opt_speed)
                            / tables.eng_speed_span)
                a_eng = np.where(
                    engine_off, tables.eng_a_at_zero,
                    (1.0 - tables.eng_speed_falloff * ds_eng_u ** 2).take(inv))
                dt_eng = torque_frac - tables.eng_opt_torque_fraction
                eta_eng = np.minimum(np.maximum(
                    tables.eng_peak_efficiency
                    * (a_eng - tables.eng_torque_falloff * dt_eng ** 2),
                    tables.eng_efficiency_floor), tables.eng_peak_efficiency)
                power_eng = np.maximum(t_ice_final, 0.0) * omega_eng_final
                load_fuel = power_eng / (eta_eng
                                         * tables.eng_fuel_energy_density)
                speed_frac = np.where(
                    engine_off, 0.0,
                    (omega_eng_u / tables.eng_fuel_max_speed).take(inv))
                idle_fuel = tables.eng_idle_fuel_rate * (speed_frac + 0.5)
                running = omega_eng_final > 1e-9
                fuel = np.where(running, load_fuel + idle_fuel, 0.0)
            else:
                fuel = np.asarray(
                    self.engine.fuel_rate(t_ice_final, omega_eng_final),
                    dtype=float)
            fuel = np.where(engine_off, 0.0, fuel)
            brake = ws.zeros
            mode = classify(t_ice_final, t_em_final, wheel_speed, braking)

        feasible = meets & window & current_ok & power_ok

        return BatchResult(
            feasible=feasible, mode=mode, power_demand=p_dem,
            wheel_speed=wheel_speed, wheel_torque=wheel_torque,
            gear=ws.gears, engine_speed=omega_eng_final,
            engine_torque=t_ice_final, motor_speed=omega_mot,
            motor_torque=t_em_final, battery_current=i_act,
            battery_power=p_batt_check, aux_power=ws.aux, fuel_rate=fuel,
            brake_torque=brake, meets_demand=meets, window_ok=window,
            soc_next=soc_next, shortfall=shortfall)
