"""Versioned on-disk registry of compiled policy artifacts.

One registry is one directory; one artifact is one file named
``policy-v%06d.rpa``.  Versions are monotonically increasing positive
integers assigned at publish time: the next version is always
``latest + 1``, publishes are atomic (a crash mid-publish never leaves a
readable-but-bogus version), and a published artifact is never rewritten
— a version is an immutable fact a fleet can pin, cache, and roll back
to.  The version is also recorded inside the artifact header, and
:meth:`PolicyRegistry.load` cross-checks it against the filename so a
renamed or shuffled file cannot impersonate another version.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.errors import PersistenceError, ServeError
from repro.rl.agent import JointControlAgent
from repro.rl.persistence import _fingerprint
from repro.serve.artifact import PolicyArtifact, compile_table

_ARTIFACT_RE = re.compile(r"^policy-v(\d{6})\.rpa$")


class PolicyRegistry:
    """A directory of policy artifacts under monotonic versions."""

    def __init__(self, root: Union[str, Path]):
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The directory artifacts live in."""
        return self._root

    def versions(self) -> List[int]:
        """All published versions, ascending."""
        found = []
        for entry in self._root.iterdir():
            match = _ARTIFACT_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self) -> Optional[int]:
        """The newest published version, or ``None`` in an empty registry."""
        versions = self.versions()
        return versions[-1] if versions else None

    def path_for(self, version: int) -> Path:
        """The artifact path a version lives at (whether or not it exists)."""
        if not isinstance(version, (int, np.integer)) or version < 1:
            raise ServeError(
                f"registry versions are positive integers, got {version!r}")
        return self._root / f"policy-v{int(version):06d}.rpa"

    def publish(self, agent: JointControlAgent) -> int:
        """Compile an agent's policy as the next version; returns it."""
        return self.publish_table(agent.learner.qtable.values,
                                  _fingerprint(agent))

    def publish_table(self, table: np.ndarray, fingerprint: dict) -> int:
        """Compile a raw Q-table as the next version; returns it.

        The lower-level entry point the fleet tooling (and the tests'
        forced-regression candidates) use to publish without an agent.
        """
        version = (self.latest_version() or 0) + 1
        compile_table(table, fingerprint, self.path_for(version),
                      version=version)
        return version

    def load(self, version: Optional[int] = None) -> PolicyArtifact:
        """Load and verify one version (default: the latest).

        Unknown versions raise :class:`repro.errors.ServeError`; a
        present-but-corrupt artifact raises
        :class:`repro.errors.PersistenceError`.  A header whose recorded
        version disagrees with the filename is treated as corruption —
        artifacts are immutable, so the two can only diverge through
        tampering or bit rot.
        """
        if version is None:
            version = self.latest_version()
            if version is None:
                raise ServeError(
                    f"registry {self._root} is empty; publish a policy "
                    "before serving")
        path = self.path_for(version)
        if not path.exists():
            raise ServeError(
                f"registry {self._root} has no version {version}; "
                f"published versions: {self.versions() or 'none'}")
        artifact = PolicyArtifact.load(path)
        if artifact.version != int(version):
            raise PersistenceError(
                f"{path}: header records version {artifact.version} but the "
                f"filename claims {version}; the artifact was renamed or "
                "tampered with")
        return artifact
