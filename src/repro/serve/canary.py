"""Canary rollout bookkeeping: compare candidate vs incumbent, roll back.

A canary rollout routes a deterministic fraction of the fleet to a
candidate policy while the rest stays on the incumbent, accumulates
per-group reward and intervention statistics with Welford running
moments (the same machinery as the safety layer's
:class:`repro.safety.monitors.RewardCollapseMonitor` baseline), and
renders a verdict:

* ``"rollback"`` — the canary group's mean reward fell more than
  ``sigmas`` incumbent standard deviations below the incumbent's mean,
  or its intervention rate exceeded the incumbent's by more than
  ``intervention_margin``.  Guaranteed to be reached within
  ``decision_budget`` canary decisions of the regression becoming
  statistically visible, because the verdict is re-evaluated on every
  recorded batch.
* ``"promote"`` — ``decision_budget`` canary decisions completed with
  no regression; the candidate is safe to take full traffic.
* ``None`` — not enough evidence yet; keep routing.

Vehicle→group assignment is a pure hash of ``(vehicle id, candidate
version)``: deterministic (replayable campaigns), stable for a vehicle
across the rollout, and uncorrelated between rollouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ServeError


@dataclass(frozen=True)
class CanaryConfig:
    """Knobs of one canary rollout."""

    fraction: float = 0.1
    """Fraction of the fleet routed to the candidate, in (0, 1)."""

    min_samples: int = 256
    """Decisions *per group* before the regression test may fire."""

    sigmas: float = 3.0
    """Reward deficit, in incumbent standard deviations, that means
    regression (mirrors the reward-collapse monitor's threshold)."""

    decision_budget: int = 10_000
    """Canary decisions after which a healthy candidate is promoted —
    and, symmetrically, the bound within which a regressed one must
    have been rolled back."""

    intervention_margin: float = 0.05
    """Absolute intervention-rate excess over the incumbent that means
    regression regardless of reward."""

    def __post_init__(self):
        if not 0.0 < self.fraction < 1.0:
            raise ServeError(
                f"canary fraction must be in (0, 1), got {self.fraction!r}")
        if self.min_samples < 2:
            raise ServeError("canary min_samples must be at least 2")
        if self.sigmas <= 0:
            raise ServeError(f"sigmas must be positive, got {self.sigmas!r}")
        if self.decision_budget < self.min_samples:
            raise ServeError(
                f"decision_budget ({self.decision_budget}) cannot be "
                f"smaller than min_samples ({self.min_samples})")
        if self.intervention_margin < 0:
            raise ServeError("intervention_margin cannot be negative")


class _Welford:
    """Running mean/variance (Welford), batch-updatable."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update_batch(self, values: np.ndarray) -> None:
        """Fold a batch of samples into the running moments."""
        values = np.asarray(values, dtype=float)
        n = int(values.size)
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(((values - batch_mean) ** 2).sum())
        delta = batch_mean - self.mean
        total = self.count + n
        self.mean += delta * n / total
        self._m2 += batch_m2 + delta * delta * self.count * n / total
        self.count = total

    @property
    def std(self) -> float:
        """Sample standard deviation (0 before two samples)."""
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


def _assignment_hash(ids: np.ndarray, salt: int) -> np.ndarray:
    """SplitMix64-style avalanche of ``ids`` mixed with ``salt``."""
    x = np.asarray(ids, dtype=np.uint64) + np.uint64(salt)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


class CanaryRollout:
    """Mutable state of one in-flight canary rollout."""

    def __init__(self, candidate_version: int,
                 config: Optional[CanaryConfig] = None):
        self.candidate_version = int(candidate_version)
        self.config = config or CanaryConfig()
        self._canary = _Welford()
        self._incumbent = _Welford()
        self._canary_interventions = 0
        self._incumbent_interventions = 0
        self._verdict: Optional[str] = None
        self._reason = ""

    @property
    def canary_decisions(self) -> int:
        """Decisions served by the candidate so far."""
        return self._canary.count

    @property
    def incumbent_decisions(self) -> int:
        """Decisions served by the incumbent since the rollout began."""
        return self._incumbent.count

    @property
    def verdict(self) -> Optional[str]:
        """``"rollback"``, ``"promote"``, or ``None`` while undecided."""
        return self._verdict

    @property
    def reason(self) -> str:
        """One-line justification of a decided verdict (else empty)."""
        return self._reason

    def assign_mask(self, vehicle_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: which vehicles ride the canary.

        Pure function of ``(vehicle id, candidate version, fraction)``;
        the hash's top 53 bits become a uniform [0, 1) draw compared
        against the configured fraction.
        """
        hashed = _assignment_hash(vehicle_ids,
                                  salt=0x5E12 + self.candidate_version)
        draws = (hashed >> np.uint64(11)).astype(np.float64) / float(2 ** 53)
        return draws < self.config.fraction

    def record(self, canary: bool, rewards: np.ndarray,
               interventions: int = 0) -> Optional[str]:
        """Fold one group's batch of decision rewards; returns the verdict.

        Called once per served batch per group.  The verdict is
        re-evaluated immediately, so a visible regression triggers
        rollback on the very batch that exposed it — never later than
        ``decision_budget`` canary decisions in.
        """
        if self._verdict is not None:
            return self._verdict
        stats = self._canary if canary else self._incumbent
        stats.update_batch(rewards)
        if canary:
            self._canary_interventions += int(interventions)
        else:
            self._incumbent_interventions += int(interventions)
        self._evaluate()
        return self._verdict

    def _evaluate(self) -> None:
        cfg = self.config
        can, inc = self._canary, self._incumbent
        if can.count >= cfg.min_samples and inc.count >= cfg.min_samples:
            scale = max(inc.std, 1e-12)
            deficit = (inc.mean - can.mean) / scale
            if deficit > cfg.sigmas:
                self._verdict = "rollback"
                self._reason = (
                    f"canary reward {can.mean:.4f} is {deficit:.1f} sigma "
                    f"below incumbent {inc.mean:.4f} after "
                    f"{can.count} canary decisions")
                return
            can_rate = self._canary_interventions / can.count
            inc_rate = self._incumbent_interventions / inc.count
            if can_rate > inc_rate + cfg.intervention_margin:
                self._verdict = "rollback"
                self._reason = (
                    f"canary intervention rate {can_rate:.2%} exceeds "
                    f"incumbent {inc_rate:.2%} by more than "
                    f"{cfg.intervention_margin:.0%}")
                return
        if can.count >= cfg.decision_budget:
            self._verdict = "promote"
            self._reason = (
                f"no regression after {can.count} canary decisions "
                f"(budget {cfg.decision_budget})")
