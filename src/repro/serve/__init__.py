"""Fleet policy serving: versioned artifacts, hot-swap, canary, degradation.

The training side of this repository produces Q-tables; this package
turns them into something a fleet can consume safely:

* :mod:`repro.serve.artifact` — :class:`PolicyArtifact`: a trained
  policy compiled to a read-only, SHA-256-integrity-checked,
  memory-mapped file.  Corruption anywhere surfaces as a structured
  :class:`repro.errors.PersistenceError`, never a numpy traceback.
* :mod:`repro.serve.registry` — :class:`PolicyRegistry`: a directory of
  artifacts under monotonically increasing versions.
* :mod:`repro.serve.server` — :class:`PolicyServer`: batched
  state→action decisions with an LRU cache, atomic hot-swap (verify +
  golden probe before a single pointer flip), graceful degradation down
  a documented ladder, and a bounded request queue with deadline-based
  load shedding.
* :mod:`repro.serve.canary` — :class:`CanaryRollout`: route a fraction
  of the fleet to a candidate, compare reward/intervention-rate against
  the incumbent with Welford statistics, and roll back automatically
  within a bounded number of decisions on regression.
* :mod:`repro.serve.fleet` — :class:`FleetSimulator`: the standard load
  generator driving a heterogeneous vehicle population (cycle ×
  aux-load × fault scenario) against the server, shardable across
  worker processes through :class:`repro.exec.Supervisor`.

See ``docs/SERVING.md`` for the artifact format, the swap/rollback state
machine, and the degradation ladder.
"""

from repro.serve.artifact import (
    PolicyArtifact,
    compile_policy,
    compile_table,
    peek_fingerprint,
)
from repro.serve.canary import CanaryConfig, CanaryRollout
from repro.serve.fleet import FleetConfig, FleetResult, FleetSimulator, run_fleet_sharded
from repro.serve.registry import PolicyRegistry
from repro.serve.server import PolicyServer, ServeConfig, SwapReport

__all__ = [
    "PolicyArtifact",
    "compile_policy",
    "compile_table",
    "peek_fingerprint",
    "PolicyRegistry",
    "PolicyServer",
    "ServeConfig",
    "SwapReport",
    "CanaryConfig",
    "CanaryRollout",
    "FleetConfig",
    "FleetResult",
    "FleetSimulator",
    "run_fleet_sharded",
]
