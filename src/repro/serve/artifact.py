"""Read-only, integrity-checked, memory-mapped policy artifacts.

A :class:`PolicyArtifact` is one trained policy compiled for serving: the
dense Q-table plus the configuration fingerprint that gives its rows and
columns meaning (:func:`repro.rl.persistence._fingerprint`), in a single
file a server can memory-map read-only and share between processes.

File layout (all little-endian)::

    offset 0   magic            b"RPA\\x01"
    offset 4   header length    uint32 (JSON bytes, space-padded)
    offset 8   header           UTF-8 JSON (see below)
    aligned    Q-table          raw C-order array bytes, 64-byte aligned

The header records the artifact format name and version, the registry
``version`` of the policy, the agent ``fingerprint``, the table ``dtype``
and ``shape``, and ``table_sha256`` — the SHA-256 digest of the raw table
bytes.  Loading verifies all of it: magic, header shape, declared vs
actual file size, and the digest hashed straight off the memory map.  Any
mismatch — truncation, bit rot, a torn copy — raises a structured
:class:`repro.errors.PersistenceError`; the table bytes can never be
silently scrambled (fuzz-tested in ``tests/test_serve.py``).

Compilation is deterministic: the same agent produces bit-identical
artifact bytes, which is what makes "hot-swap of an identical policy is
bit-identical to no-swap serving" a testable promise.  Writes reuse the
persistence layer's atomic tmp-then-rename path; header reads go through
:mod:`repro.fsio` so the chaos harness can inject slow or failing
storage on the load side.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from repro import fsio
from repro.errors import PersistenceError, ServeError
from repro.rl.agent import JointControlAgent
from repro.rl.persistence import _atomic_write_bytes, _fingerprint

MAGIC = b"RPA\x01"
"""Leading magic bytes of every policy artifact."""

ARTIFACT_FORMAT = "repro-policy-artifact"
"""Format name recorded in (and required of) every header."""

ARTIFACT_VERSION = 1
"""Artifact layout version this module writes and reads."""

TABLE_ALIGN = 64
"""Byte alignment of the table section (cache-line/mmap friendly)."""

_MAX_HEADER_BYTES = 1 << 20
"""Upper bound on a plausible header; larger claims are corruption."""


def _aligned(offset: int) -> int:
    """``offset`` rounded up to the next :data:`TABLE_ALIGN` boundary."""
    return (offset + TABLE_ALIGN - 1) // TABLE_ALIGN * TABLE_ALIGN


def compile_table(table: np.ndarray, fingerprint: dict,
                  path: Union[str, Path], version: int = 0) -> str:
    """Compile a raw Q-table into an artifact file; returns its digest.

    ``table`` must be 2-D ``(num_states, num_actions)``.  The write is
    atomic (tmp sibling + rename), so a crash mid-compile never leaves a
    half-written artifact where a good one used to be.
    """
    table = np.ascontiguousarray(table)
    if table.ndim != 2 or table.size == 0:
        raise ServeError(
            f"policy tables are non-empty 2-D (states x actions) arrays; "
            f"got shape {table.shape}")
    if int(version) < 0:
        raise ServeError(f"artifact versions are non-negative, got {version}")
    body = table.tobytes()
    digest = hashlib.sha256(body).hexdigest()
    header = {
        "format": ARTIFACT_FORMAT,
        "artifact_version": ARTIFACT_VERSION,
        "version": int(version),
        "fingerprint": fingerprint,
        "dtype": table.dtype.str,
        "shape": [int(n) for n in table.shape],
        "table_sha256": digest,
    }
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    # Pad the header with JSON-legal trailing spaces so the table lands
    # on an aligned offset; the recorded length includes the padding.
    table_offset = _aligned(len(MAGIC) + 4 + len(head))
    head = head + b" " * (table_offset - len(MAGIC) - 4 - len(head))
    payload = MAGIC + len(head).to_bytes(4, "little") + head + body
    _atomic_write_bytes(Path(path), payload)
    return digest


def compile_policy(agent: JointControlAgent, path: Union[str, Path],
                   version: int = 0) -> str:
    """Compile a trained agent's policy into an artifact; returns digest."""
    return compile_table(agent.learner.qtable.values, _fingerprint(agent),
                         path, version=version)


def _read_header(path: Path) -> tuple:
    """``(header dict, header end offset)`` of one artifact file.

    Validates the magic, the declared header length, and the JSON
    syntax; any problem raises a structured
    :class:`repro.errors.PersistenceError`.  Does **not** verify the
    table digest — callers that will serve the table must go through
    :meth:`PolicyArtifact.load`.
    """
    prefix_len = len(MAGIC) + 4
    try:
        head = fsio.read_bytes(path, prefix_len)
    except OSError as exc:
        raise PersistenceError(
            f"{path}: cannot read policy artifact ({exc})") from exc
    if len(head) < prefix_len or head[:len(MAGIC)] != MAGIC:
        raise PersistenceError(
            f"{path}: not a policy artifact (bad or truncated magic); "
            "expected an RPA file written by repro.serve")
    header_len = int.from_bytes(head[len(MAGIC):prefix_len], "little")
    if not 0 < header_len <= _MAX_HEADER_BYTES:
        raise PersistenceError(
            f"{path}: implausible header length {header_len}; the "
            "artifact is corrupt")
    try:
        raw = fsio.read_bytes(path, prefix_len + header_len)
    except OSError as exc:
        raise PersistenceError(
            f"{path}: cannot read policy artifact header ({exc})") from exc
    if len(raw) < prefix_len + header_len:
        raise PersistenceError(
            f"{path}: header truncated ({len(raw) - prefix_len} of "
            f"{header_len} bytes); the artifact is corrupt")
    try:
        header = json.loads(raw[prefix_len:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(
            f"{path}: artifact header is not valid JSON ({exc}); the "
            "file is corrupt") from exc
    return header, prefix_len + header_len


def peek_fingerprint(path: Union[str, Path]) -> dict:
    """The agent fingerprint recorded in an artifact's header, unverified.

    Parses only the header — the table digest is *not* checked, so this
    works on an artifact whose table bytes are corrupt.  The result must
    therefore never gate a verification decision; it exists so the
    degradation ladder can recover action-space metadata (the current
    levels) for its rule-based fallback when no healthy artifact is
    loadable.  Raises :class:`repro.errors.PersistenceError` when even
    the header is unreadable.
    """
    path = Path(path)
    header, _ = _read_header(path)
    fingerprint = header.get("fingerprint") if isinstance(header, dict) \
        else None
    if not isinstance(fingerprint, dict):
        raise PersistenceError(
            f"{path}: artifact header records no fingerprint object; the "
            "file is corrupt or foreign")
    return fingerprint


class PolicyArtifact:
    """One loaded, verified, memory-mapped serving policy (read-only)."""

    def __init__(self, path: Path, version: int, fingerprint: dict,
                 table: np.ndarray, digest: str):
        self._path = Path(path)
        self._version = int(version)
        self._fingerprint = dict(fingerprint)
        self._table = table
        self._digest = digest

    @property
    def path(self) -> Path:
        """The artifact file this policy is mapped from."""
        return self._path

    @property
    def version(self) -> int:
        """Registry version recorded in the header (0 = unregistered)."""
        return self._version

    @property
    def fingerprint(self) -> dict:
        """Agent configuration fingerprint the table was trained under."""
        return dict(self._fingerprint)

    @property
    def table(self) -> np.ndarray:
        """The read-only ``(num_states, num_actions)`` Q-table view."""
        return self._table

    @property
    def digest(self) -> str:
        """Verified SHA-256 hexdigest of the raw table bytes."""
        return self._digest

    @property
    def num_states(self) -> int:
        """Number of discrete states the table covers."""
        return int(self._table.shape[0])

    @property
    def num_actions(self) -> int:
        """Number of actions per state."""
        return int(self._table.shape[1])

    def greedy(self, states: np.ndarray) -> np.ndarray:
        """Greedy action ids for a batch of state ids (one argmax gather)."""
        return np.argmax(self._table[np.asarray(states, dtype=np.intp)],
                         axis=-1)

    def __repr__(self) -> str:
        return (f"PolicyArtifact(v{self._version}, "
                f"{self.num_states}x{self.num_actions}, "
                f"{self._digest[:12]}..., {self._path.name})")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PolicyArtifact":
        """Load and fully verify an artifact file.

        Every failure mode — missing file, bad magic, truncated or
        unparseable header, implausible declared shape, short table
        section, digest mismatch — raises
        :class:`repro.errors.PersistenceError` naming the file and the
        problem.  On success the table is a read-only memory map; the
        digest is computed from the mapped bytes, so what was verified
        is exactly what will be served.
        """
        path = Path(path)
        header, header_end = _read_header(path)
        return cls._from_header(path, header, header_end)

    @classmethod
    def _from_header(cls, path: Path, header: dict,
                     header_end: int) -> "PolicyArtifact":
        if not isinstance(header, dict) \
                or header.get("format") != ARTIFACT_FORMAT:
            raise PersistenceError(
                f"{path}: artifact header does not declare format "
                f"{ARTIFACT_FORMAT!r}; the file is corrupt or foreign")
        if header.get("artifact_version") != ARTIFACT_VERSION:
            raise PersistenceError(
                f"{path}: unsupported artifact version "
                f"{header.get('artifact_version')!r} (this reader "
                f"understands {ARTIFACT_VERSION})")
        shape = header.get("shape")
        if (not isinstance(shape, list) or len(shape) != 2
                or not all(isinstance(n, int) and n > 0 for n in shape)):
            raise PersistenceError(
                f"{path}: artifact header declares invalid table shape "
                f"{shape!r}")
        version = header.get("version")
        fingerprint = header.get("fingerprint")
        expected = header.get("table_sha256")
        if (not isinstance(version, int) or version < 0
                or not isinstance(fingerprint, dict)
                or not isinstance(expected, str)):
            raise PersistenceError(
                f"{path}: artifact header is missing or mistypes required "
                "fields (version/fingerprint/table_sha256)")
        try:
            dtype = np.dtype(header.get("dtype"))
        except TypeError as exc:
            raise PersistenceError(
                f"{path}: artifact header declares unknown dtype "
                f"{header.get('dtype')!r}") from exc
        table_offset = _aligned(header_end)
        nbytes = int(shape[0]) * int(shape[1]) * dtype.itemsize
        try:
            size = os.stat(path).st_size
        except OSError as exc:
            raise PersistenceError(
                f"{path}: cannot stat policy artifact ({exc})") from exc
        if size < table_offset + nbytes:
            raise PersistenceError(
                f"{path}: table section truncated ({size} bytes on disk, "
                f"{table_offset + nbytes} required for shape {shape}); the "
                "artifact is corrupt")
        try:
            table = np.memmap(path, dtype=dtype, mode="r",
                              offset=table_offset,
                              shape=(int(shape[0]), int(shape[1])))
        except (ValueError, OSError) as exc:
            raise PersistenceError(
                f"{path}: cannot map table section ({exc}); the artifact "
                "is corrupt") from exc
        actual = hashlib.sha256(table.tobytes()).hexdigest()
        if actual != expected:
            raise PersistenceError(
                f"{path}: integrity check failed — table SHA-256 {actual} "
                f"does not match the header's recorded {expected}; the "
                "artifact was corrupted after it was written")
        return cls(path, version, fingerprint, table, actual)
