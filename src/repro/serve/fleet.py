"""Fleet load generator: heterogeneous vehicles driving a policy server.

A :class:`FleetSimulator` runs a population of lightweight vehicles —
heterogeneous across drive cycle, phase offset, auxiliary load, initial
state of charge, and fault scenario (noisy SoC sensing) — against a
:class:`repro.serve.PolicyServer`.  Each simulated second the whole
population is discretised in one vectorized pass
(:meth:`repro.rl.discretize.StateDiscretizer.state_of_batch`), batched
into decision requests through the server's bounded queue, and stepped
with a simplified battery model (Coulomb counting, the same sign
convention as :mod:`repro.vehicle.battery`, plus an auxiliary drain).

This is deliberately *not* the full powertrain simulator: a vehicle here
costs nanoseconds, which is what lets tens of thousands of them hammer
the server hard enough to measure decisions/sec, decision-latency
percentiles, and load shedding.  Fidelity lives in two places that
matter for the robustness story:

* **Reward proxy** — every decision is scored by the *run-start
  incumbent's* Q-value for the (state, action) pair, an off-policy
  evaluation under the incumbent's own value function.  A regressed
  canary candidate picks actions the incumbent values less, which is
  exactly the signal :class:`repro.serve.canary.CanaryRollout` needs.
* **Safety envelope** — vehicles at the SoC window edge clamp
  discharging/charging actions to the zero-current level and count an
  intervention, mirroring the safety supervisor's feasibility envelope;
  shed requests degrade the affected vehicles to the same rule-based
  zero-current action (the LIMP_HOME analogue) and are counted as limp
  decisions.

Runs are deterministic for a given ``(config, server state)`` and
bit-identical with telemetry attached or not (golden-tested).  For
wall-clock scale beyond one process, :func:`run_fleet_sharded` splits
the population across fork-isolated workers through
:class:`repro.exec.Supervisor`, one server per worker over a shared
registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.cycles import standard_cycle
from repro.errors import ServeError
from repro.rl.discretize import StateDiscretizer
from repro.serve.registry import PolicyRegistry
from repro.serve.server import PolicyServer
from repro.vehicle import default_vehicle
from repro.vehicle.dynamics import VehicleDynamics

_BUS_VOLTAGE = 200.0
"""Nominal bus voltage used to convert auxiliary watts into amps."""


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet load-generation run."""

    vehicles: int = 1024
    """Population size."""

    steps: int = 120
    """Simulated seconds each vehicle drives."""

    dt: float = 1.0
    """Simulation step, seconds."""

    cycles: Tuple[str, ...] = ("UDDS", "NYCC", "SC03")
    """Built-in drive cycles vehicles are assigned across."""

    aux_loads: Tuple[float, ...] = (250.0, 500.0, 1000.0)
    """Auxiliary electrical loads (W) vehicles are assigned across."""

    fault_fraction: float = 0.1
    """Fraction of vehicles with a noisy SoC sensor (fault scenario)."""

    sensor_noise: float = 0.02
    """Std-dev of the faulty vehicles' SoC observation noise."""

    request_batch: int = 256
    """Vehicles per decision request (smaller = more queue pressure)."""

    deadline_s: Optional[float] = None
    """Per-request decision deadline handed to the server (None = none)."""

    seed: int = 0
    """Seed of population assignment and sensor noise."""

    def __post_init__(self):
        if self.vehicles < 1:
            raise ServeError("a fleet needs at least one vehicle")
        if self.steps < 1:
            raise ServeError("a fleet run needs at least one step")
        if self.dt <= 0:
            raise ServeError("dt must be positive")
        if not self.cycles:
            raise ServeError("a fleet needs at least one drive cycle")
        if not self.aux_loads:
            raise ServeError("a fleet needs at least one auxiliary load")
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ServeError("fault_fraction must lie in [0, 1]")
        if self.request_batch < 1:
            raise ServeError("request_batch must be at least 1")


@dataclass
class FleetResult:
    """Aggregates of one fleet run against a policy server."""

    vehicles: int
    """Population size driven."""

    steps: int
    """Simulated seconds per vehicle."""

    decisions: int
    """Decisions the fleet consumed (served, not shed)."""

    shed_requests: int
    """Decision requests shed by the server's bounded queue."""

    limp_decisions: int
    """Vehicle-steps degraded to the local rule-based action because
    their request was shed (the fleet-side LIMP_HOME analogue)."""

    interventions: int
    """SoC-window envelope clamps applied across the run."""

    mean_reward: float
    """Mean decision reward under the run-start incumbent's Q-values."""

    elapsed_s: float
    """Wall-clock of the run."""

    decisions_per_sec: float
    """Served decisions per wall-clock second."""

    vehicles_per_min: float
    """Full vehicle-drives completed per wall-clock minute."""

    request_latencies_s: np.ndarray
    """Per-request submit-to-answer latencies (served requests only)."""

    canary_verdict: Optional[str] = None
    """``"rollback"``/``"promote"`` if a canary resolved during the run."""

    rollback: Optional[dict] = None
    """The server's :attr:`~repro.serve.PolicyServer.last_rollback`
    record when the run ended in a rollback."""

    actions: Optional[np.ndarray] = None
    """``(steps, vehicles)`` action trace when recorded (golden tests)."""

    final_soc: Optional[np.ndarray] = None
    """Per-vehicle final state of charge when the trace was recorded."""


class FleetSimulator:
    """Drives a heterogeneous vehicle population against a server."""

    def __init__(self, server: PolicyServer,
                 config: Optional[FleetConfig] = None,
                 record_trace: bool = False):
        self._server = server
        self._config = config or FleetConfig()
        self._record = record_trace
        params = default_vehicle()
        self._dynamics = VehicleDynamics(params.body)
        battery = params.battery
        self._capacity = float(battery.capacity)
        self._soc_min = float(battery.soc_min)
        self._soc_max = float(battery.soc_max)
        self._discretizer = StateDiscretizer(soc_min=self._soc_min,
                                             soc_max=self._soc_max)
        fingerprint = self._fingerprint()
        if fingerprint.get("num_states") not in (
                None, self._discretizer.num_states):
            raise ServeError(
                f"served policy covers {fingerprint['num_states']} states "
                f"but the fleet discretiser produces "
                f"{self._discretizer.num_states}; the policy was trained "
                "under a non-default discretisation")
        levels = fingerprint.get("current_levels")
        if not levels:
            raise ServeError(
                "the server has no known policy fingerprint; activate a "
                "policy before running the fleet against it")
        self._levels = np.asarray(levels, dtype=float)
        self._zero_action = int(np.argmin(np.abs(self._levels)))

    def _fingerprint(self) -> dict:
        artifact = self._server.active_artifact
        if artifact is not None:
            return artifact.fingerprint
        fingerprint = getattr(self._server, "_last_fingerprint", None)
        return fingerprint or {}

    def run(self, steps: Optional[int] = None) -> FleetResult:
        """Drive the configured population; returns the aggregates."""
        cfg = self._config
        steps = cfg.steps if steps is None else int(steps)
        rng = np.random.default_rng(cfg.seed)
        n = cfg.vehicles

        # Heterogeneous population: cycle x phase x aux x fault x SoC.
        speeds_per_cycle = [standard_cycle(name).speeds
                            for name in cfg.cycles]
        lengths = np.array([len(s) for s in speeds_per_cycle])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        flat_speeds = np.concatenate(speeds_per_cycle)
        cycle_idx = rng.integers(0, len(cfg.cycles), size=n)
        phase = rng.integers(0, lengths[cycle_idx])
        aux = rng.choice(np.asarray(cfg.aux_loads, dtype=float), size=n)
        faulty = rng.random(n) < cfg.fault_fraction
        soc = rng.uniform(self._soc_min, self._soc_max, size=n)
        noise_rng = np.random.default_rng(cfg.seed + 0x5EED)
        vehicle_ids = np.arange(n, dtype=np.uint64)

        server = self._server
        reference = None
        if server.active_artifact is not None:
            reference = np.array(server.active_artifact.table)
        rollout = server.canary
        canary_mask = (rollout.assign_mask(vehicle_ids)
                       if rollout is not None else np.zeros(n, dtype=bool))

        reward_sum = 0.0
        reward_count = 0
        served_total = 0
        interventions = 0
        limp = 0
        shed_before = server.shed_count
        latencies: List[float] = []
        verdict: Optional[str] = None
        trace = (np.zeros((steps, n), dtype=np.intp)
                 if self._record else None)

        start = time.perf_counter()
        for t in range(steps):
            pos = (phase + t) % lengths[cycle_idx]
            nxt = (pos + 1) % lengths[cycle_idx]
            speed = flat_speeds[offsets[cycle_idx] + pos]
            accel = (flat_speeds[offsets[cycle_idx] + nxt] - speed) / cfg.dt
            p_dem = np.asarray(self._dynamics.power_demand(speed, accel),
                               dtype=float)
            # Faulty vehicles observe a noisy SoC; the draw happens for
            # the whole population every step so the stream is identical
            # whatever the fault assignment or telemetry state.
            noise = noise_rng.normal(0.0, cfg.sensor_noise, size=n)
            obs_soc = np.clip(np.where(faulty, soc + noise, soc), 0.0, 1.0)
            states = self._discretizer.state_of_batch(p_dem, speed, obs_soc)

            actions = np.full(n, self._zero_action, dtype=np.intp)
            served = np.zeros(n, dtype=bool)

            # Submit the whole tick's requests before pumping once, so
            # the bounded queue sees real depth and deadline pressure.
            incumbent_idx = np.flatnonzero(~canary_mask)
            pending = {}
            for lo in range(0, len(incumbent_idx), cfg.request_batch):
                chunk = incumbent_idx[lo:lo + cfg.request_batch]
                key = f"{t}:{lo}"
                if not server.submit(states[chunk],
                                     deadline_s=cfg.deadline_s, key=key):
                    limp += len(chunk)
                    continue
                pending[key] = chunk
            for outcome in server.pump():
                chunk = pending[outcome.key]
                if outcome.shed:
                    limp += len(chunk)
                    continue
                actions[chunk] = outcome.actions
                served[chunk] = True
                latencies.append(outcome.latency_s)

            canary_idx = np.flatnonzero(canary_mask)
            if len(canary_idx) and server.canary is not None:
                actions[canary_idx] = server.canary_decide(states[canary_idx])
                served[canary_idx] = True

            # Safety envelope at the SoC window edges: clamp to the
            # zero-current level and count the intervention.
            current = self._levels[actions]
            clamp = ((soc <= self._soc_min) & (current > 0)) \
                | ((soc >= self._soc_max) & (current < 0))
            interventions += int(np.sum(clamp & served))
            served_total += int(served.sum())
            actions = np.where(clamp, self._zero_action, actions)
            current = self._levels[actions]

            if reference is not None:
                rewards = reference[states, actions]
                reward_sum += float(rewards[served].sum())
                reward_count += int(served.sum())
                if server.canary is not None:
                    inc = served & ~canary_mask
                    can = served & canary_mask
                    if np.any(inc):
                        server.observe(False, rewards[inc],
                                       int(np.sum(clamp & inc)))
                    if np.any(can) and server.canary is not None:
                        verdict = server.observe(
                            True, rewards[can], int(np.sum(clamp & can)))
                        if verdict is not None:
                            canary_mask = np.zeros(n, dtype=bool)

            soc = np.clip(
                soc - (current + aux / _BUS_VOLTAGE) * cfg.dt
                / self._capacity,
                0.0, 1.0)
            if trace is not None:
                trace[t] = actions
        elapsed = max(time.perf_counter() - start, 1e-9)

        decisions = served_total
        return FleetResult(
            vehicles=n, steps=steps, decisions=decisions,
            shed_requests=server.shed_count - shed_before,
            limp_decisions=limp, interventions=interventions,
            mean_reward=(reward_sum / reward_count if reward_count else 0.0),
            elapsed_s=elapsed,
            decisions_per_sec=decisions / elapsed,
            vehicles_per_min=n * 60.0 / elapsed,
            request_latencies_s=np.asarray(latencies, dtype=float),
            canary_verdict=verdict,
            rollback=(dict(server.last_rollback)
                      if verdict == "rollback" and server.last_rollback
                      else None),
            actions=trace,
            final_soc=soc.copy() if self._record else None)


def run_fleet_sharded(registry_root, config: FleetConfig, shards: int,
                      jobs: Optional[int] = None,
                      timeout: Optional[float] = None) -> dict:
    """Split a fleet across fork-isolated workers, one server per shard.

    Every worker opens its own :class:`PolicyServer` over the shared
    registry (``activate_latest`` walks the same degradation ladder),
    drives ``vehicles // shards`` of the population, and reports its
    aggregates; the supervisor's quarantine semantics apply, so one
    crashed shard is a recorded failure, not a lost campaign.  Returns
    the fleet-wide aggregate dict (decisions, decisions/sec summed
    across concurrently running shards, vehicles/min, shed counts).
    """
    from repro.exec import Supervisor, Task

    if shards < 1:
        raise ServeError("need at least one shard")
    if shards > config.vehicles:
        raise ServeError(
            f"cannot split {config.vehicles} vehicles into {shards} shards")
    base = config.vehicles // shards
    counts = [base + (1 if i < config.vehicles % shards else 0)
              for i in range(shards)]

    def _shard(index: int, count: int) -> dict:
        registry = PolicyRegistry(registry_root)
        server = PolicyServer(registry)
        server.activate_latest()
        shard_cfg = replace(config, vehicles=count,
                            seed=config.seed + 7919 * (index + 1))
        result = FleetSimulator(server, shard_cfg).run()
        return {"decisions": result.decisions,
                "shed_requests": result.shed_requests,
                "limp_decisions": result.limp_decisions,
                "interventions": result.interventions,
                "mean_reward": result.mean_reward,
                "elapsed_s": result.elapsed_s,
                "active_version": server.active_version}

    tasks = [Task(key=f"shard-{i}", fn=(lambda i=i, c=c: _shard(i, c)),
                  spec={"shard": i, "vehicles": c})
             for i, c in enumerate(counts)]
    supervisor = Supervisor(jobs=jobs or 1, timeout=timeout)
    sweep = supervisor.run(tasks)
    results = [sweep.results[task.key] for task in tasks
               if task.key in sweep.results]
    if not results:
        raise ServeError("every fleet shard failed; nothing to aggregate")
    total_decisions = sum(r["decisions"] for r in results)
    wall = max(r["elapsed_s"] for r in results)
    total_vehicles = sum(c for t, c in zip(tasks, counts)
                         if t.key in sweep.results)
    weighted = sum(r["mean_reward"] * r["decisions"] for r in results)
    return {
        "shards": len(results),
        "vehicles": total_vehicles,
        "decisions": total_decisions,
        "shed_requests": sum(r["shed_requests"] for r in results),
        "limp_decisions": sum(r["limp_decisions"] for r in results),
        "interventions": sum(r["interventions"] for r in results),
        "mean_reward": (weighted / total_decisions if total_decisions
                        else 0.0),
        "elapsed_s": wall,
        "decisions_per_sec": total_decisions / wall,
        "vehicles_per_min": total_vehicles * 60.0 / wall,
        "failures": len(sweep.failures),
    }
