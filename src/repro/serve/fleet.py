"""Fleet load generator: heterogeneous vehicles driving a policy server.

A :class:`FleetSimulator` runs a population of lightweight vehicles —
heterogeneous across drive cycle, phase offset, auxiliary load, initial
state of charge, and fault scenario (noisy SoC sensing) — against a
:class:`repro.serve.PolicyServer`.  Each simulated second the whole
population is discretised in one vectorized pass
(:meth:`repro.rl.discretize.StateDiscretizer.state_of_batch`), batched
into decision requests through the server's bounded queue, and stepped
with a simplified battery model (Coulomb counting, the same sign
convention as :mod:`repro.vehicle.battery`, plus an auxiliary drain).

This is deliberately *not* the full powertrain simulator: a vehicle here
costs nanoseconds, which is what lets tens of thousands of them hammer
the server hard enough to measure decisions/sec, decision-latency
percentiles, and load shedding.  Fidelity lives in two places that
matter for the robustness story:

* **Reward proxy** — every decision is scored by the *run-start
  incumbent's* Q-value for the (state, action) pair, an off-policy
  evaluation under the incumbent's own value function.  A regressed
  canary candidate picks actions the incumbent values less, which is
  exactly the signal :class:`repro.serve.canary.CanaryRollout` needs.
* **Safety envelope** — vehicles at the SoC window edge clamp
  discharging/charging actions to the zero-current level and count an
  intervention, mirroring the safety supervisor's feasibility envelope;
  shed requests degrade the affected vehicles to the same rule-based
  zero-current action (the LIMP_HOME analogue) and are counted as limp
  decisions.

**Shard-count invariance.**  A fleet can be partitioned: ``vehicles``
vehicles starting at ``vehicle_offset`` of a ``total_vehicles``-wide
population.  Population attributes are drawn once for the *global*
population and sliced, per-vehicle sensor-noise streams come from
``SeedSequence([seed, 0x5EED]).spawn(total)`` keyed by global vehicle
id, and rewards accumulate per vehicle and aggregate with
:func:`math.fsum` (exactly-rounded, so grouping-free) — which is what
makes :func:`run_fleet_sharded` aggregates bit-identical for any shard
count, as long as no requests are shed (queue pressure is inherently
per-server; the regression test uses a shed-free config).

**Experience streaming.**  Given ``experience=`` (an
:class:`repro.learn.ExperienceStream`-shaped object), served transitions
are journaled as ``(s, a, r, s′, policy_version)`` records for the
online learner — with the degradation wiring the loop depends on:
vehicles with a faulty sensor (the fleet's DEGRADED analogue) are
frozen out of the stream, limp/shed vehicles (the LIMP_HOME analogue)
never produce records because they were not served, a degraded
(fallback) server streams nothing at all, and a stream write failure
freezes *streaming* for the rest of the run while serving continues
untouched.  Streaming never alters decisions: a run with a stream
attached is bit-identical to one without (golden-tested).

Runs are deterministic for a given ``(config, server state)`` and
bit-identical with telemetry attached or not (golden-tested).  For
wall-clock scale beyond one process, :func:`run_fleet_sharded` splits
the population across fork-isolated workers through
:class:`repro.exec.Supervisor`, one server per worker over a shared
registry.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.cycles import standard_cycle
from repro.errors import ExperienceError, ServeError
from repro.rl.discretize import StateDiscretizer
from repro.serve.registry import PolicyRegistry
from repro.serve.server import PolicyServer
from repro.vehicle import default_vehicle
from repro.vehicle.dynamics import VehicleDynamics

_BUS_VOLTAGE = 200.0
"""Nominal bus voltage used to convert auxiliary watts into amps."""

_NOISE_STREAM_KEY = 0x5EED
"""SeedSequence key separating sensor-noise streams from other draws."""


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one fleet load-generation run."""

    vehicles: int = 1024
    """Population size this run drives (one shard's slice when
    partitioned; the whole fleet otherwise)."""

    steps: int = 120
    """Simulated seconds each vehicle drives."""

    dt: float = 1.0
    """Simulation step, seconds."""

    cycles: Tuple[str, ...] = ("UDDS", "NYCC", "SC03")
    """Built-in drive cycles vehicles are assigned across."""

    aux_loads: Tuple[float, ...] = (250.0, 500.0, 1000.0)
    """Auxiliary electrical loads (W) vehicles are assigned across."""

    fault_fraction: float = 0.1
    """Fraction of vehicles with a noisy SoC sensor (fault scenario)."""

    sensor_noise: float = 0.02
    """Std-dev of the faulty vehicles' SoC observation noise."""

    request_batch: int = 256
    """Vehicles per decision request (smaller = more queue pressure)."""

    deadline_s: Optional[float] = None
    """Per-request decision deadline handed to the server (None = none)."""

    seed: int = 0
    """Seed of population assignment and sensor noise."""

    total_vehicles: Optional[int] = None
    """Global fleet size when this run is one shard of a partitioned
    fleet (``None`` = this run *is* the whole fleet).  Population
    attributes and noise streams are keyed by global vehicle id, so
    every partition of the same total is bit-identical in aggregate."""

    vehicle_offset: int = 0
    """First global vehicle id of this run's slice."""

    def __post_init__(self):
        if self.vehicles < 1:
            raise ServeError("a fleet needs at least one vehicle")
        if self.steps < 1:
            raise ServeError("a fleet run needs at least one step")
        if self.dt <= 0:
            raise ServeError("dt must be positive")
        if not self.cycles:
            raise ServeError("a fleet needs at least one drive cycle")
        if not self.aux_loads:
            raise ServeError("a fleet needs at least one auxiliary load")
        if not 0.0 <= self.fault_fraction <= 1.0:
            raise ServeError("fault_fraction must lie in [0, 1]")
        if self.request_batch < 1:
            raise ServeError("request_batch must be at least 1")
        if self.vehicle_offset < 0:
            raise ServeError("vehicle_offset cannot be negative")
        if self.total_vehicles is not None and self.total_vehicles < 1:
            raise ServeError("total_vehicles must be positive (or None)")
        total = (self.total_vehicles if self.total_vehicles is not None
                 else self.vehicles)
        if self.vehicle_offset + self.vehicles > total:
            raise ServeError(
                f"vehicle slice [{self.vehicle_offset}, "
                f"{self.vehicle_offset + self.vehicles}) exceeds the "
                f"global population of {total}")


@dataclass
class FleetResult:
    """Aggregates of one fleet run against a policy server."""

    vehicles: int
    """Population size driven."""

    steps: int
    """Simulated seconds per vehicle."""

    decisions: int
    """Decisions the fleet consumed (served, not shed)."""

    shed_requests: int
    """Decision requests shed by the server's bounded queue."""

    limp_decisions: int
    """Vehicle-steps degraded to the local rule-based action because
    their request was shed (the fleet-side LIMP_HOME analogue)."""

    interventions: int
    """SoC-window envelope clamps applied across the run."""

    mean_reward: float
    """Mean decision reward under the run-start incumbent's Q-values
    (an exactly-rounded :func:`math.fsum` over per-vehicle totals, so
    the value is independent of request batching and sharding)."""

    elapsed_s: float
    """Wall-clock of the run."""

    decisions_per_sec: float
    """Served decisions per wall-clock second."""

    vehicles_per_min: float
    """Full vehicle-drives completed per wall-clock minute."""

    request_latencies_s: np.ndarray
    """Per-request submit-to-answer latencies (served requests only)."""

    canary_verdict: Optional[str] = None
    """``"rollback"``/``"promote"`` if a canary resolved during the run."""

    rollback: Optional[dict] = None
    """The server's :attr:`~repro.serve.PolicyServer.last_rollback`
    record when the run ended in a rollback."""

    actions: Optional[np.ndarray] = None
    """``(steps, vehicles)`` action trace when recorded (golden tests)."""

    final_soc: Optional[np.ndarray] = None
    """Per-vehicle final state of charge when the trace was recorded."""

    vehicle_rewards: Optional[np.ndarray] = None
    """Per-vehicle summed decision rewards, in slice order (what shard
    aggregation concatenates and :func:`math.fsum`\\ s)."""

    experience_records: int = 0
    """Experience records durably journaled during the run."""

    experience_shed: int = 0
    """Experience records shed oldest-first by stream backpressure."""

    stream_errors: int = 0
    """Stream write failures (each freezes streaming, never serving)."""


class FleetSimulator:
    """Drives a heterogeneous vehicle population against a server."""

    def __init__(self, server: PolicyServer,
                 config: Optional[FleetConfig] = None,
                 record_trace: bool = False,
                 experience=None):
        self._server = server
        self._config = config or FleetConfig()
        self._record = record_trace
        self._experience = experience
        params = default_vehicle()
        self._dynamics = VehicleDynamics(params.body)
        battery = params.battery
        self._capacity = float(battery.capacity)
        self._soc_min = float(battery.soc_min)
        self._soc_max = float(battery.soc_max)
        self._discretizer = StateDiscretizer(soc_min=self._soc_min,
                                             soc_max=self._soc_max)
        fingerprint = self._fingerprint()
        if fingerprint.get("num_states") not in (
                None, self._discretizer.num_states):
            raise ServeError(
                f"served policy covers {fingerprint['num_states']} states "
                f"but the fleet discretiser produces "
                f"{self._discretizer.num_states}; the policy was trained "
                "under a non-default discretisation")
        levels = fingerprint.get("current_levels")
        if not levels:
            raise ServeError(
                "the server has no known policy fingerprint; activate a "
                "policy before running the fleet against it")
        self._levels = np.asarray(levels, dtype=float)
        self._zero_action = int(np.argmin(np.abs(self._levels)))

    def _fingerprint(self) -> dict:
        artifact = self._server.active_artifact
        if artifact is not None:
            return artifact.fingerprint
        fingerprint = getattr(self._server, "_last_fingerprint", None)
        return fingerprint or {}

    def run(self, steps: Optional[int] = None) -> FleetResult:
        """Drive the configured population; returns the aggregates.

        When an experience stream is attached, each tick emits the
        *previous* tick's served transitions (their successor state is
        only observed now); the final tick's transitions have no
        observed successor and are not emitted.
        """
        cfg = self._config
        steps = cfg.steps if steps is None else int(steps)
        n = cfg.vehicles
        lo = cfg.vehicle_offset
        total = cfg.total_vehicles if cfg.total_vehicles is not None else n
        window = slice(lo, lo + n)
        rng = np.random.default_rng(cfg.seed)

        # Heterogeneous population: cycle x phase x aux x fault x SoC.
        # All attribute draws cover the *global* population and are then
        # sliced, so a shard sees exactly the vehicles the whole-fleet
        # run would give it — the first half of shard-count invariance.
        speeds_per_cycle = [standard_cycle(name).speeds
                            for name in cfg.cycles]
        lengths = np.array([len(s) for s in speeds_per_cycle])
        offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        flat_speeds = np.concatenate(speeds_per_cycle)
        cycle_all = rng.integers(0, len(cfg.cycles), size=total)
        cycle_idx = cycle_all[window]
        phase = rng.integers(0, lengths[cycle_all])[window]
        aux = rng.choice(np.asarray(cfg.aux_loads, dtype=float),
                         size=total)[window]
        faulty = (rng.random(total) < cfg.fault_fraction)[window]
        soc = rng.uniform(self._soc_min, self._soc_max, size=total)[window]
        vehicle_ids = np.arange(lo, lo + n, dtype=np.uint64)

        # The second half of the invariance: every vehicle owns a noise
        # stream spawned from SeedSequence keyed by its *global* id, so
        # a faulty vehicle observes the same noise whatever shard it
        # lands in (and healthy vehicles consume no draws at all).
        children = np.random.SeedSequence(
            [cfg.seed, _NOISE_STREAM_KEY]).spawn(total)
        noise = np.zeros((steps, n))
        for i in np.flatnonzero(faulty):
            noise[:, i] = np.random.default_rng(
                children[lo + int(i)]).normal(0.0, cfg.sensor_noise,
                                              size=steps)

        server = self._server
        reference = None
        if server.active_artifact is not None:
            reference = np.array(server.active_artifact.table)
        rollout = server.canary
        canary_mask = (rollout.assign_mask(vehicle_ids)
                       if rollout is not None else np.zeros(n, dtype=bool))

        # Streaming requires a healthy serving policy: a degraded
        # (fallback) server has no policy_version to attribute records
        # to — the DEGRADED fleet freezes learning ingestion.
        exp_stream = self._experience if reference is not None else None
        stream = exp_stream
        stream_errors = 0
        records_before = exp_stream.written if exp_stream is not None else 0
        shed_records_before = exp_stream.shed if exp_stream is not None else 0
        prev: Optional[dict] = None

        vehicle_reward = np.zeros(n)
        reward_count = 0
        served_total = 0
        interventions = 0
        limp = 0
        shed_before = server.shed_count
        latencies: List[float] = []
        verdict: Optional[str] = None
        trace = (np.zeros((steps, n), dtype=np.intp)
                 if self._record else None)

        start = time.perf_counter()
        for t in range(steps):
            pos = (phase + t) % lengths[cycle_idx]
            nxt = (pos + 1) % lengths[cycle_idx]
            speed = flat_speeds[offsets[cycle_idx] + pos]
            accel = (flat_speeds[offsets[cycle_idx] + nxt] - speed) / cfg.dt
            p_dem = np.asarray(self._dynamics.power_demand(speed, accel),
                               dtype=float)
            # Faulty vehicles observe a noisy SoC (healthy noise columns
            # are exactly zero, so adding is the same as selecting).
            obs_soc = np.clip(soc + noise[t], 0.0, 1.0)
            states = self._discretizer.state_of_batch(p_dem, speed, obs_soc)

            # The previous tick's transitions are complete now that
            # their successor states are observed; journal them.
            # Streaming is strictly read-only with respect to serving:
            # a write failure freezes the stream, never the fleet.
            if stream is not None and prev is not None:
                try:
                    stream.offer_batch(
                        prev["states"], prev["actions"], prev["rewards"],
                        states[prev["idx"]], prev["versions"],
                        vehicle_ids[prev["idx"]], step=t - 1)
                    stream.flush()
                except ExperienceError:
                    stream_errors += 1
                    stream = None
            prev = None

            actions = np.full(n, self._zero_action, dtype=np.intp)
            served = np.zeros(n, dtype=bool)
            tick_versions = np.full(n, server.active_version,
                                    dtype=np.int64)

            # Submit the whole tick's requests before pumping once, so
            # the bounded queue sees real depth and deadline pressure.
            incumbent_idx = np.flatnonzero(~canary_mask)
            pending = {}
            for batch_lo in range(0, len(incumbent_idx), cfg.request_batch):
                chunk = incumbent_idx[batch_lo:batch_lo + cfg.request_batch]
                key = f"{t}:{batch_lo}"
                if not server.submit(states[chunk],
                                     deadline_s=cfg.deadline_s, key=key):
                    limp += len(chunk)
                    continue
                pending[key] = chunk
            for outcome in server.pump():
                chunk = pending[outcome.key]
                if outcome.shed:
                    limp += len(chunk)
                    continue
                actions[chunk] = outcome.actions
                served[chunk] = True
                latencies.append(outcome.latency_s)

            canary_idx = np.flatnonzero(canary_mask)
            if len(canary_idx) and server.canary is not None:
                actions[canary_idx] = server.canary_decide(states[canary_idx])
                served[canary_idx] = True
                tick_versions[canary_idx] = \
                    server.canary.candidate_version

            # Safety envelope at the SoC window edges: clamp to the
            # zero-current level and count the intervention.
            current = self._levels[actions]
            clamp = ((soc <= self._soc_min) & (current > 0)) \
                | ((soc >= self._soc_max) & (current < 0))
            interventions += int(np.sum(clamp & served))
            served_total += int(served.sum())
            actions = np.where(clamp, self._zero_action, actions)
            current = self._levels[actions]

            if reference is not None:
                rewards = reference[states, actions]
                srv = served
                # Per-vehicle accumulation is elementwise — order- and
                # grouping-free — so shard aggregation can fsum it back
                # to the exact whole-fleet value.
                vehicle_reward[srv] += rewards[srv]
                reward_count += int(served.sum())
                if server.canary is not None:
                    inc = served & ~canary_mask
                    can = served & canary_mask
                    if np.any(inc):
                        server.observe(False, rewards[inc],
                                       int(np.sum(clamp & inc)))
                    if np.any(can) and server.canary is not None:
                        verdict = server.observe(
                            True, rewards[can], int(np.sum(clamp & can)))
                        if verdict is not None:
                            canary_mask = np.zeros(n, dtype=bool)
                if stream is not None:
                    # Degradation wiring: faulty-sensor vehicles (the
                    # DEGRADED analogue) are frozen out of the training
                    # stream; limp/shed vehicles were never served, so
                    # LIMP_HOME decisions cannot enter it either.
                    idx = np.flatnonzero(served & ~faulty)
                    if len(idx):
                        prev = {"idx": idx, "states": states[idx],
                                "actions": actions[idx],
                                "rewards": rewards[idx],
                                "versions": tick_versions[idx]}

            soc = np.clip(
                soc - (current + aux / _BUS_VOLTAGE) * cfg.dt
                / self._capacity,
                0.0, 1.0)
            if trace is not None:
                trace[t] = actions
        elapsed = max(time.perf_counter() - start, 1e-9)

        decisions = served_total
        return FleetResult(
            vehicles=n, steps=steps, decisions=decisions,
            shed_requests=server.shed_count - shed_before,
            limp_decisions=limp, interventions=interventions,
            mean_reward=(math.fsum(vehicle_reward) / reward_count
                         if reward_count else 0.0),
            elapsed_s=elapsed,
            decisions_per_sec=decisions / elapsed,
            vehicles_per_min=n * 60.0 / elapsed,
            request_latencies_s=np.asarray(latencies, dtype=float),
            canary_verdict=verdict,
            rollback=(dict(server.last_rollback)
                      if verdict == "rollback" and server.last_rollback
                      else None),
            actions=trace,
            final_soc=soc.copy() if self._record else None,
            vehicle_rewards=vehicle_reward,
            experience_records=(exp_stream.written - records_before
                                if exp_stream is not None else 0),
            experience_shed=(exp_stream.shed - shed_records_before
                             if exp_stream is not None else 0),
            stream_errors=stream_errors)


def run_fleet_sharded(registry_root, config: FleetConfig, shards: int,
                      jobs: Optional[int] = None,
                      timeout: Optional[float] = None,
                      experience_dir=None) -> dict:
    """Split a fleet across fork-isolated workers, one server per shard.

    Every worker opens its own :class:`PolicyServer` over the shared
    registry (``activate_latest`` walks the same degradation ladder),
    drives its contiguous slice of the global population
    (``vehicle_offset``/``total_vehicles``, so population assignment and
    per-vehicle noise are bit-identical to the unsharded run), and
    reports its aggregates; the supervisor's quarantine semantics apply,
    so one crashed shard is a recorded failure, not a lost campaign.

    With ``experience_dir`` set, each shard journals its served
    transitions to its own ``shard-%04d.jsonl`` through an
    :class:`repro.learn.ExperienceStream` — the fleet half of the
    online-learning loop.

    Returns the fleet-wide aggregate dict.  ``mean_reward`` is an
    exactly-rounded :func:`math.fsum` over the concatenated per-vehicle
    reward totals in global vehicle order, so (absent shedding, which
    is per-server queue pressure) it is bit-identical for any shard
    count — regression-tested 1 shard vs 4.
    """
    from repro.exec import Supervisor, Task

    if shards < 1:
        raise ServeError("need at least one shard")
    if shards > config.vehicles:
        raise ServeError(
            f"cannot split {config.vehicles} vehicles into {shards} shards")
    if config.total_vehicles is not None or config.vehicle_offset:
        raise ServeError(
            "run_fleet_sharded partitions the whole fleet itself; pass a "
            "config without total_vehicles/vehicle_offset")
    base = config.vehicles // shards
    counts = [base + (1 if i < config.vehicles % shards else 0)
              for i in range(shards)]
    starts = [sum(counts[:i]) for i in range(shards)]

    def _shard(index: int, offset: int, count: int) -> dict:
        registry = PolicyRegistry(registry_root)
        server = PolicyServer(registry)
        server.activate_latest()
        shard_cfg = replace(config, vehicles=count, vehicle_offset=offset,
                            total_vehicles=config.vehicles)
        stream = None
        if experience_dir is not None:
            from repro.learn.journal import ExperienceStream
            stream = ExperienceStream(experience_dir, shard=index)
        try:
            result = FleetSimulator(server, shard_cfg,
                                    experience=stream).run()
        finally:
            if stream is not None:
                stream.close()
        return {"decisions": result.decisions,
                "shed_requests": result.shed_requests,
                "limp_decisions": result.limp_decisions,
                "interventions": result.interventions,
                "vehicle_rewards": result.vehicle_rewards,
                "elapsed_s": result.elapsed_s,
                "experience_records": result.experience_records,
                "experience_shed": result.experience_shed,
                "active_version": server.active_version}

    tasks = [Task(key=f"shard-{i}",
                  fn=(lambda i=i, s=s, c=c: _shard(i, s, c)),
                  spec={"shard": i, "offset": s, "vehicles": c})
             for i, (s, c) in enumerate(zip(starts, counts))]
    supervisor = Supervisor(jobs=jobs or 1, timeout=timeout)
    sweep = supervisor.run(tasks)
    results = [sweep.results[task.key] for task in tasks
               if task.key in sweep.results]
    if not results:
        raise ServeError("every fleet shard failed; nothing to aggregate")
    total_decisions = sum(r["decisions"] for r in results)
    wall = max(r["elapsed_s"] for r in results)
    total_vehicles = sum(c for t, c in zip(tasks, counts)
                         if t.key in sweep.results)
    # Concatenation in shard order is global vehicle order; fsum is
    # exactly rounded, so the mean is grouping-independent.
    all_rewards = np.concatenate(
        [np.asarray(r["vehicle_rewards"], dtype=float) for r in results])
    return {
        "shards": len(results),
        "vehicles": total_vehicles,
        "decisions": total_decisions,
        "shed_requests": sum(r["shed_requests"] for r in results),
        "limp_decisions": sum(r["limp_decisions"] for r in results),
        "interventions": sum(r["interventions"] for r in results),
        "mean_reward": (math.fsum(all_rewards) / total_decisions
                        if total_decisions else 0.0),
        "elapsed_s": wall,
        "decisions_per_sec": total_decisions / wall,
        "vehicles_per_min": total_vehicles * 60.0 / wall,
        "experience_records": sum(r["experience_records"]
                                  for r in results),
        "experience_shed": sum(r["experience_shed"] for r in results),
        "failures": len(sweep.failures),
    }
