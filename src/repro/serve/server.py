"""The policy server: batched decisions, hot-swap, canary, degradation.

One :class:`PolicyServer` holds at most one *active* policy artifact and
serves greedy state→action decisions from it through an LRU decision
cache.  Around that hot path sit the robustness mechanisms this layer
exists for:

**Atomic hot-swap.**  A candidate version is *staged* — loaded, its
SHA-256 digest and fingerprint verified, and golden-probed on a held-out
deterministic state grid — entirely off the serving path.  Only a
candidate that survives all of it is *activated*, and activation is a
single pointer flip plus a cache clear: in-flight callers see either the
old policy or the new one, never a mixture.  Swapping in a bit-identical
artifact provably changes no decision (golden-tested).

**Refusal, not crashes.**  :meth:`PolicyServer.swap` converts every
structured staging failure — corrupt artifact
(:class:`~repro.errors.PersistenceError`), incompatible fingerprint
(:class:`~repro.errors.CheckpointError`), failed probe or blown staging
deadline (:class:`~repro.errors.ServeError`) — into a refused
:class:`SwapReport` while the incumbent keeps serving untouched.

**Canary rollout.**  :meth:`begin_canary` stages a candidate and routes
a configured fleet fraction to it; :meth:`observe` feeds per-group
reward/intervention batches into :class:`repro.serve.canary.CanaryRollout`
(Welford moments, the safety layer's reward-collapse machinery) and
applies the verdict: automatic rollback — discard the candidate, the
incumbent never stopped serving — or promotion after the decision
budget passes cleanly.

**Graceful degradation.**  :meth:`activate_latest` walks the registry
newest-first past corrupt versions; when *nothing* loads, the server
engages a rule-based fallback action (the zero-current "let the engine
carry it" level, the serving-side analogue of the safety supervisor's
LIMP_HOME rule-based controller) instead of crashing.

**Overload protection.**  :meth:`submit`/:meth:`pump` form a bounded
FIFO request queue: admission beyond ``queue_limit`` and requests whose
deadline passed before processing are *shed* — counted, telemetered,
answered with a structured outcome — so a flooded server stays live for
the requests it can still serve in time.

All telemetry (``serve.decision`` spans, ``serve.swap`` /
``serve.rollback`` / ``serve.shed`` counters, the ``serve.active_version``
gauge) is emitted only when a :class:`repro.telemetry.Telemetry` is
attached; a telemetry-free server is bit-identical in every decision
(golden-tested like the simulator paths).
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from repro.errors import CheckpointError, PersistenceError, ServeError
from repro.serve.artifact import PolicyArtifact, peek_fingerprint
from repro.serve.canary import CanaryConfig, CanaryRollout
from repro.serve.registry import PolicyRegistry


@dataclass(frozen=True)
class ServeConfig:
    """Operational knobs of one policy server."""

    cache_size: int = 4096
    """Maximum entries of the LRU decision cache."""

    probe_states: int = 128
    """Held-out state-grid size of the golden probe (capped at |S|)."""

    probe_seed: int = 0x5EBE
    """Seed of the deterministic probe-grid sample."""

    queue_limit: int = 64
    """Bounded request-queue depth; admissions beyond it are shed."""

    stage_deadline_s: Optional[float] = None
    """Wall-clock budget for staging (load + verify + probe); exceeding
    it discards the candidate (degraded storage must not stall swaps).
    ``None`` disables the deadline."""

    def __post_init__(self):
        if self.cache_size < 1:
            raise ServeError("cache_size must be at least 1")
        if self.probe_states < 1:
            raise ServeError("probe_states must be at least 1")
        if self.queue_limit < 1:
            raise ServeError("queue_limit must be at least 1")
        if self.stage_deadline_s is not None and self.stage_deadline_s <= 0:
            raise ServeError("stage_deadline_s must be positive or None")


@dataclass(frozen=True)
class SwapReport:
    """What one hot-swap attempt did (activated or refused, and why)."""

    from_version: int
    """Serving version before the attempt (0 = fallback/none)."""

    to_version: int
    """Candidate version (0 when unknown, e.g. unresolvable path)."""

    activated: bool
    """True when the candidate took over; False = refused, incumbent
    kept serving."""

    reason: str
    """``"ok"`` on activation; the structured refusal message otherwise."""

    probe_disagreement: float
    """Fraction of held-out probe states where the candidate's greedy
    action differs from the incumbent's (0.0 when refused pre-probe)."""

    elapsed_s: float
    """Wall-clock of the whole attempt (stage + flip)."""


@dataclass(frozen=True)
class DecisionOutcome:
    """Terminal outcome of one queued decision request."""

    key: Optional[str]
    """Caller's correlation key (opaque to the server)."""

    actions: Optional[np.ndarray]
    """Decided action ids, or ``None`` when the request was shed."""

    shed: bool
    """True when the request was dropped (queue full or deadline past)."""

    reason: str
    """``"ok"``, ``"queue full"``, or ``"deadline exceeded"``."""

    latency_s: float
    """Submit-to-outcome wall-clock (0.0 for admission-time sheds)."""


class PolicyServer:
    """Versioned policy serving with hot-swap, canary, and load shedding."""

    def __init__(self, registry: Optional[PolicyRegistry] = None,
                 config: Optional[ServeConfig] = None,
                 telemetry=None,
                 clock: Callable[[], float] = time.monotonic):
        self._registry = registry
        self._config = config or ServeConfig()
        self._telemetry = telemetry
        self._clock = clock
        self._active: Optional[PolicyArtifact] = None
        self._previous: Optional[PolicyArtifact] = None
        self._last_fingerprint: Optional[dict] = None
        self._fallback_hint: Optional[dict] = None
        self._cache: "OrderedDict[int, int]" = OrderedDict()
        self._queue: deque = deque()
        self._canary: Optional[CanaryRollout] = None
        self._canary_artifact: Optional[PolicyArtifact] = None
        self._canary_started_at: float = 0.0
        self._staged_disagreement = 0.0
        self.decisions = 0
        """Total decisions served (incumbent + canary + fallback)."""
        self.fallback_decisions = 0
        """Decisions answered by the rule-based fallback action."""
        self.swaps = 0
        """Successful activations (initial, hot-swap, promotion)."""
        self.refused_swaps = 0
        """Swap attempts refused with the incumbent untouched."""
        self.rollbacks = 0
        """Canary rollbacks plus explicit :meth:`rollback` calls."""
        self.shed_count = 0
        """Requests shed by the bounded queue (admission + deadline)."""
        self.stage_sheds = 0
        """Staging attempts discarded for blowing the staging deadline."""
        self.degraded_loads = 0
        """Registry versions skipped as corrupt by the degradation walk."""
        self.cache_hits = 0
        """LRU decision-cache hits (unique states, not batch elements)."""
        self.cache_misses = 0
        """LRU decision-cache misses."""
        self.last_rollback: Optional[dict] = None
        """``{"version", "reason", "decisions", "latency_s"}`` of the most
        recent canary rollback (``None`` until one happens)."""

    # -- telemetry helpers -------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.metrics.counter(name).inc(n)

    def _set_version_gauge(self) -> None:
        if self._telemetry is not None:
            self._telemetry.metrics.gauge("serve.active_version").set(
                float(self.active_version))

    # -- introspection -----------------------------------------------------

    @property
    def config(self) -> ServeConfig:
        """The operational configuration this server runs under."""
        return self._config

    @property
    def active_version(self) -> int:
        """Version currently serving (0 = rule-based fallback / nothing)."""
        return self._active.version if self._active is not None else 0

    @property
    def active_artifact(self) -> Optional[PolicyArtifact]:
        """The serving artifact (``None`` while degraded to fallback)."""
        return self._active

    @property
    def degraded(self) -> bool:
        """True while decisions come from the rule-based fallback."""
        return self._active is None

    @property
    def canary(self) -> Optional[CanaryRollout]:
        """The in-flight canary rollout, if any."""
        return self._canary

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting in the bounded queue."""
        return len(self._queue)

    # -- activation & degradation ladder -----------------------------------

    def _activate(self, artifact: PolicyArtifact, reason: str) -> None:
        """The atomic pointer flip: candidate becomes the active policy."""
        self._previous = self._active
        self._active = artifact
        self._last_fingerprint = artifact.fingerprint
        self._cache.clear()
        self.swaps += 1
        self._count("serve.swap")
        self._set_version_gauge()
        if self._telemetry is not None:
            previous = self._previous.version if self._previous else 0
            self._telemetry.event("serve_swap", from_version=previous,
                                  to_version=artifact.version,
                                  activated="yes", reason=reason)

    def _engage_fallback(self) -> None:
        """Bottom of the degradation ladder: rule-based fallback serving."""
        self._previous = self._active
        self._active = None
        self._cache.clear()
        self._set_version_gauge()

    def _fallback_action(self) -> int:
        """The rule-based fallback action id: the zero-current level.

        Commanding zero battery current makes the engine carry the full
        demand — the charge-neutral choice the paper's rule-based
        controller makes in the nominal SoC band, and the serving-side
        analogue of the safety supervisor's LIMP_HOME fallback.  The
        current levels come from the last verified fingerprint, or —
        when nothing ever loaded — from the unverified header hint the
        degradation ladder peeked off a corrupt artifact (the hint only
        ever picks this action, never gates verification).  Without any
        fingerprint at all the first action (0) is used.
        """
        fingerprint = self._last_fingerprint or self._fallback_hint
        if fingerprint is None:
            return 0
        levels = fingerprint.get("current_levels")
        if not levels:
            return 0
        return int(np.argmin(np.abs(np.asarray(levels, dtype=float))))

    def activate_latest(self) -> int:
        """Walk the registry newest-first and activate the first healthy
        version; engage the rule-based fallback when nothing loads.

        This is the degradation ladder: corrupt artifacts are *skipped*
        (counted in :attr:`degraded_loads`) rather than fatal, and a
        registry with no loadable version leaves the server alive in
        fallback mode.  Returns the activated version (0 = fallback).
        """
        if self._registry is None:
            raise ServeError("this server has no registry to activate from")
        for version in reversed(self._registry.versions()):
            try:
                artifact = self._registry.load(version)
                self._golden_probe(artifact)
            except (PersistenceError, ServeError):
                # containment: the ladder's whole point — a corrupt
                # version is skipped (and counted) so an older healthy
                # one can serve; the corruption is re-raisable via
                # registry.load(version) for diagnosis
                self.degraded_loads += 1
                if self._last_fingerprint is None \
                        and self._fallback_hint is None:
                    try:
                        self._fallback_hint = peek_fingerprint(
                            self._registry.path_for(version))
                    except (PersistenceError, ServeError):  # containment: the hint is best-effort; a header too corrupt to peek leaves the fallback on action 0
                        pass
                continue
            self._activate(artifact, reason="activate_latest")
            return version
        self._engage_fallback()
        return 0

    def activate(self, artifact: PolicyArtifact) -> None:
        """Directly activate an already-loaded artifact (probe first)."""
        self._golden_probe(artifact)
        self._activate(artifact, reason="direct activation")

    # -- staging and hot-swap ----------------------------------------------

    def _probe_grid(self, num_states: int) -> np.ndarray:
        size = min(self._config.probe_states, num_states)
        if size == num_states:
            return np.arange(num_states)
        rng = np.random.default_rng(self._config.probe_seed)
        return np.sort(rng.choice(num_states, size=size, replace=False))

    def _golden_probe(self, candidate: PolicyArtifact) -> float:
        """Probe a candidate on the held-out grid; returns disagreement.

        A candidate whose probed Q-rows contain non-finite values is
        refused (:class:`~repro.errors.ServeError`): the digest proves
        the file matches what was written, the probe proves what was
        written is a servable policy.
        """
        grid = self._probe_grid(candidate.num_states)
        rows = np.asarray(candidate.table[grid], dtype=float)
        if not np.all(np.isfinite(rows)):
            raise ServeError(
                f"candidate v{candidate.version} failed the golden probe: "
                f"non-finite Q-values on {int(np.sum(~np.isfinite(rows).all(axis=1)))} "
                f"of {len(grid)} held-out states")
        actions = np.argmax(rows, axis=1)
        incumbent = self._active
        if incumbent is not None \
                and incumbent.num_states == candidate.num_states:
            return float(np.mean(actions != incumbent.greedy(grid)))
        return 0.0

    def stage(self, version: Optional[int] = None,
              path=None,
              deadline_s: Optional[float] = None) -> PolicyArtifact:
        """Load, verify, and golden-probe a candidate off the serving path.

        Raises the structured error of whatever failed: corruption →
        :class:`~repro.errors.PersistenceError`, fingerprint mismatch →
        :class:`~repro.errors.CheckpointError`, failed probe or blown
        staging deadline → :class:`~repro.errors.ServeError`.  The
        active policy is never touched.
        """
        start = self._clock()
        if path is not None and version is not None:
            raise ServeError("stage by version or by path, not both")
        if path is not None:
            candidate = PolicyArtifact.load(path)
        else:
            if self._registry is None:
                raise ServeError(
                    "this server has no registry; stage by path instead")
            candidate = self._registry.load(version)
        reference = (self._active.fingerprint if self._active is not None
                     else self._last_fingerprint)
        if reference is not None and candidate.fingerprint != reference:
            mismatched = sorted(
                key for key in set(reference) | set(candidate.fingerprint)
                if reference.get(key) != candidate.fingerprint.get(key))
            raise CheckpointError(
                f"candidate v{candidate.version} is incompatible with the "
                f"serving fingerprint; mismatched fields: {mismatched}")
        disagreement = self._golden_probe(candidate)
        self._staged_disagreement = disagreement
        deadline = (deadline_s if deadline_s is not None
                    else self._config.stage_deadline_s)
        elapsed = self._clock() - start
        if deadline is not None and elapsed > deadline:
            self.stage_sheds += 1
            self._count("serve.shed")
            raise ServeError(
                f"staging deadline exceeded: load+verify+probe took "
                f"{elapsed:.3f}s against a {deadline:.3f}s budget; the "
                "candidate was discarded and the incumbent keeps serving")
        return candidate

    def swap(self, version: Optional[int] = None, path=None,
             deadline_s: Optional[float] = None) -> SwapReport:
        """Atomically hot-swap to a candidate; refuse on any defect.

        Never raises for a *bad candidate*: every structured staging
        failure becomes a refused :class:`SwapReport` (reason recorded,
        ``serve_swap`` event emitted) while the incumbent keeps serving
        bit-identically.  Only server misuse (e.g. staging by version
        without a registry) still raises.
        """
        start = self._clock()
        from_version = self.active_version
        try:
            candidate = self.stage(version=version, path=path,
                                   deadline_s=deadline_s)
        except (PersistenceError, CheckpointError, ServeError) as exc:
            self.refused_swaps += 1
            if self._telemetry is not None:
                self._telemetry.event(
                    "serve_swap", from_version=from_version,
                    to_version=int(version or 0), activated="no",
                    reason=str(exc)[:300])
            return SwapReport(from_version=from_version,
                              to_version=int(version or 0),
                              activated=False, reason=str(exc),
                              probe_disagreement=0.0,
                              elapsed_s=self._clock() - start)
        disagreement = self._staged_disagreement
        self._activate(candidate, reason="hot-swap")
        return SwapReport(from_version=from_version,
                          to_version=candidate.version, activated=True,
                          reason="ok", probe_disagreement=disagreement,
                          elapsed_s=self._clock() - start)

    def rollback(self, reason: str = "manual") -> int:
        """Revert the pointer to the previously active policy.

        Returns the version now serving.  Raises
        :class:`~repro.errors.ServeError` when there is nothing to roll
        back to (rollback is one step, not a history walk).
        """
        if self._previous is None:
            raise ServeError("no previous policy to roll back to")
        rolled_from = self.active_version
        self._active = self._previous
        self._previous = None
        self._last_fingerprint = self._active.fingerprint
        self._cache.clear()
        self.rollbacks += 1
        self._count("serve.rollback")
        self._set_version_gauge()
        if self._telemetry is not None:
            self._telemetry.event("serve_rollback", version=rolled_from,
                                  reason=reason, decisions=self.decisions)
        return self.active_version

    # -- canary rollout ----------------------------------------------------

    def begin_canary(self, version: Optional[int] = None, path=None,
                     canary_config: Optional[CanaryConfig] = None
                     ) -> CanaryRollout:
        """Stage a candidate and open a canary rollout against it.

        The candidate serves only :meth:`canary_decide` traffic until
        :meth:`observe` reaches a verdict.  Staging failures raise their
        structured error; the incumbent is never touched.
        """
        if self._canary is not None:
            raise ServeError(
                f"a canary rollout of v{self._canary.candidate_version} is "
                "already in flight; observe it to a verdict first")
        if self._active is None:
            raise ServeError(
                "cannot run a canary without an active incumbent policy")
        candidate = self.stage(version=version, path=path)
        self._canary_artifact = candidate
        self._canary = CanaryRollout(candidate.version, canary_config)
        self._canary_started_at = self._clock()
        return self._canary

    def canary_decide(self, states: np.ndarray) -> np.ndarray:
        """Greedy decisions from the canary candidate (uncached)."""
        if self._canary_artifact is None:
            raise ServeError("no canary rollout is in flight")
        states = np.atleast_1d(np.asarray(states, dtype=np.intp))
        self._check_states(states, self._canary_artifact)
        self.decisions += int(states.size)
        return self._canary_artifact.greedy(states)

    def observe(self, canary: bool, rewards: np.ndarray,
                interventions: int = 0) -> Optional[str]:
        """Feed one group's decision outcomes; apply any verdict.

        On ``"rollback"`` the candidate is discarded — the incumbent
        never stopped serving, so "rolling back" is dropping a pointer —
        and :attr:`last_rollback` records the latency in decisions and
        wall-clock.  On ``"promote"`` the candidate is activated through
        the same pointer flip as a hot-swap.  Returns the verdict.
        """
        if self._canary is None:
            raise ServeError("no canary rollout is in flight")
        rollout = self._canary
        verdict = rollout.record(canary, rewards, interventions)
        if verdict == "rollback":
            self.rollbacks += 1
            self._count("serve.rollback")
            self.last_rollback = {
                "version": rollout.candidate_version,
                "reason": rollout.reason,
                "decisions": rollout.canary_decisions,
                "latency_s": self._clock() - self._canary_started_at,
            }
            if self._telemetry is not None:
                self._telemetry.event(
                    "serve_rollback", version=rollout.candidate_version,
                    reason=rollout.reason[:300],
                    decisions=rollout.canary_decisions)
            self._canary = None
            self._canary_artifact = None
        elif verdict == "promote":
            self._activate(self._canary_artifact, reason="canary promotion")
            self._canary = None
            self._canary_artifact = None
        return verdict

    def abort_canary(self, reason: str = "aborted") -> None:
        """Discard an in-flight canary without a statistical verdict.

        The candidate is dropped exactly as a rollback drops it — the
        incumbent never stopped serving — and :attr:`last_rollback`
        records the abort so recovery latency stays measurable.  The
        promotion pipeline uses this when a canary starves (e.g. a
        cohort that never produces decisions) so an undecidable rollout
        cannot pin the server forever.  Raises
        :class:`~repro.errors.ServeError` when no canary is in flight.
        """
        if self._canary is None:
            raise ServeError("no canary rollout is in flight")
        rollout = self._canary
        self.rollbacks += 1
        self._count("serve.rollback")
        self.last_rollback = {
            "version": rollout.candidate_version,
            "reason": reason,
            "decisions": rollout.canary_decisions,
            "latency_s": self._clock() - self._canary_started_at,
        }
        if self._telemetry is not None:
            self._telemetry.event(
                "serve_rollback", version=rollout.candidate_version,
                reason=reason[:300], decisions=rollout.canary_decisions)
        self._canary = None
        self._canary_artifact = None

    # -- decisions ---------------------------------------------------------

    def _check_states(self, states: np.ndarray,
                      artifact: PolicyArtifact) -> None:
        if states.size and (int(states.min()) < 0
                            or int(states.max()) >= artifact.num_states):
            raise ServeError(
                f"state ids must lie in [0, {artifact.num_states}); got "
                f"range [{int(states.min())}, {int(states.max())}]")

    def decide(self, states: np.ndarray) -> np.ndarray:
        """Batched greedy decisions for ``states`` (LRU-cached).

        While degraded to fallback every state gets the rule-based
        fallback action; otherwise each unique state's greedy action is
        served from the cache or computed in one argmax gather.
        """
        if self._telemetry is None:
            return self._decide(states)
        start = self._clock()
        with self._telemetry.span("serve.decision",
                                  batch=int(np.asarray(states).size)):
            actions = self._decide(states)
        from repro.telemetry.metrics import LATENCY_BUCKETS_S
        self._telemetry.metrics.histogram(
            "serve.decision_seconds",
            buckets=LATENCY_BUCKETS_S).observe(self._clock() - start)
        return actions

    def _decide(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_1d(np.asarray(states, dtype=np.intp))
        self.decisions += int(states.size)
        active = self._active
        if active is None:
            self.fallback_decisions += int(states.size)
            return np.full(states.shape, self._fallback_action(),
                           dtype=np.intp)
        self._check_states(states, active)
        uniq, inverse = np.unique(states, return_inverse=True)
        cache = self._cache
        uniq_actions = np.empty(uniq.shape, dtype=np.intp)
        missing: List[int] = []
        for i, state in enumerate(uniq.tolist()):
            action = cache.get(state)
            if action is None:
                missing.append(i)
            else:
                uniq_actions[i] = action
                cache.move_to_end(state)
        self.cache_hits += len(uniq) - len(missing)
        if missing:
            self.cache_misses += len(missing)
            fresh = active.greedy(uniq[missing])
            for i, action in zip(missing, fresh.tolist()):
                uniq_actions[i] = action
                cache[int(uniq[i])] = int(action)
            while len(cache) > self._config.cache_size:
                cache.popitem(last=False)
        return uniq_actions[inverse].reshape(states.shape)

    # -- bounded request queue --------------------------------------------

    def submit(self, states: np.ndarray, deadline_s: Optional[float] = None,
               key: Optional[str] = None) -> bool:
        """Enqueue one decision request; returns False when shed.

        Admission beyond ``queue_limit`` sheds immediately — a bounded
        queue is the overload contract: a flooded server drops work
        loudly instead of growing an unbounded backlog it can never
        drain in time.
        """
        if len(self._queue) >= self._config.queue_limit:
            self.shed_count += 1
            self._count("serve.shed")
            return False
        now = self._clock()
        deadline = None if deadline_s is None else now + deadline_s
        self._queue.append((key, states, deadline, now))
        return True

    def pump(self) -> List[DecisionOutcome]:
        """Serve every queued request in FIFO order, shedding late ones.

        A request whose deadline passed while it waited is shed with a
        structured outcome rather than served stale — by the time it
        would be answered, the vehicle has already had to act.
        """
        outcomes: List[DecisionOutcome] = []
        while self._queue:
            key, states, deadline, enqueued = self._queue.popleft()
            now = self._clock()
            if deadline is not None and now > deadline:
                self.shed_count += 1
                self._count("serve.shed")
                outcomes.append(DecisionOutcome(
                    key=key, actions=None, shed=True,
                    reason="deadline exceeded", latency_s=now - enqueued))
                continue
            actions = self.decide(states)
            outcomes.append(DecisionOutcome(
                key=key, actions=actions, shed=False, reason="ok",
                latency_s=self._clock() - enqueued))
        return outcomes
