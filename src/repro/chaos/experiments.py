"""One chaos experiment per fault kind: inject, then verify recovery.

Every experiment follows the same contract: given a
:class:`~repro.chaos.plan.ChaosFault` and a private working directory,
it attacks one documented durability guarantee of the repository's own
stack — the supervised executor, the sweep manifest, the telemetry
sink, or policy/checkpoint persistence — and returns an
:class:`ExperimentOutcome` stating whether the fault was **detected**
(surfaced as the structured error the layer documents, or tolerated
by design with exact results) and whether the stack **recovered**
(resumed to the bit-identical state an unfaulted run produces).

A broken guarantee raises :class:`repro.errors.InvariantViolation`; the
campaign records it and keeps going.  Experiments never leave a shim
installed and never depend on wall-clock or ambient randomness beyond
their fault parameters, so a campaign seed replays bit-identically
(recovery *latencies* are measured, not deterministic, and are excluded
from determinism comparisons).

The kind-to-guarantee map is documented in ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import json
import signal
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.chaos.plan import ChaosFault
from repro.chaos.shims import EnospcShim, SlowReadShim, SlowWriteShim
from repro.control import build_rl_controller
from repro.cycles import DriveCycle
from repro.errors import (
    ExperienceError,
    InvariantViolation,
    ManifestError,
    PersistenceError,
)
from repro.exec import Supervisor, SweepManifest, Task
from repro.exec.manifest import encode_payload
from repro.fsio import shimmed
from repro.learn import (
    ExperienceRecord,
    ExperienceStream,
    OnlineLearner,
    PromotionPipeline,
    encode_record,
)
from repro.powertrain import PowertrainSolver
from repro.rl.persistence import (
    _fingerprint,
    load_checkpoint,
    load_policy,
    save_checkpoint,
    save_policy,
)
from repro.serve import (
    CanaryConfig,
    FleetConfig,
    PolicyRegistry,
    PolicyServer,
)
from repro.serve.artifact import _aligned
from repro.sim import Simulator, train
from repro.telemetry.events import EventSink, read_events
from repro.vehicle import default_vehicle


@dataclass(frozen=True)
class ExperimentOutcome:
    """What one fault injection established about the stack."""

    kind: str
    """Fault kind (one of :data:`repro.chaos.plan.FAULT_KINDS`)."""

    detected: bool
    """The fault surfaced as its documented structured error (or was
    tolerated by design with provably exact results) — never silent."""

    recovered: Optional[bool]
    """The documented recovery path restored correct — bit-identical
    where promised — state.  ``None`` for detection-only faults (no
    recovery path exists; refusing loudly *is* the guarantee)."""

    resumable: bool
    """Whether this kind has a documented recovery path at all."""

    detail: str
    """One-line account of what was observed."""

    recovery_seconds: Optional[float]
    """Measured wall-clock of the recovery path (``None`` when the fault
    is detection-only).  Excluded from determinism comparisons."""

    def to_json(self) -> dict:
        """JSON-serialisable form (campaign reports)."""
        return {"kind": self.kind, "detected": self.detected,
                "recovered": self.recovered, "resumable": self.resumable,
                "detail": self.detail,
                "recovery_seconds": self.recovery_seconds}


EXPERIMENTS: Dict[str, Callable[[ChaosFault, Path], ExperimentOutcome]] = {}
"""Registry: fault kind -> experiment callable (filled by decorator)."""

RESUMABLE: Dict[str, bool] = {}
"""Whether each kind has a recovery path (vs detection-only)."""


def _experiment(kind: str, resumable: bool):
    def register(fn):
        """File ``fn`` under ``kind`` in the experiment registry."""
        EXPERIMENTS[kind] = fn
        RESUMABLE[kind] = resumable
        return fn
    return register


def _require(condition: bool, message: str) -> None:
    """Assert one documented invariant; violations are campaign findings."""
    if not condition:
        raise InvariantViolation(message)


# -- deterministic sweep workload --------------------------------------------

def _payload(index: int) -> dict:
    """Deterministic task result exercising the manifest payload codec."""
    return {"value": 0.1 * index + 0.25,
            "series": np.linspace(0.0, 1.0, 4) * index}


def _make_tasks(n: int) -> list:
    return [Task(key=f"t{i}", fn=(lambda i=i: _payload(i)),
                 spec={"index": i}) for i in range(n)]


def _reference(n: int) -> dict:
    return {f"t{i}": _payload(i) for i in range(n)}


def _canonical(results: Mapping[str, Any]) -> str:
    """Bit-faithful comparison form of a result set (floats via repr)."""
    return json.dumps({k: encode_payload(v) for k, v in results.items()},
                      sort_keys=True)


def _run_sweep(manifest: SweepManifest, n: int):
    return Supervisor(manifest=manifest).run(_make_tasks(n))


def _resume_exact(path: Path, n: int, expect_resumed: int,
                  detail: str) -> ExperimentOutcome:
    """Shared tail: resume the sweep and require bit-identical aggregates."""
    start = time.monotonic()
    sweep = _run_sweep(SweepManifest(path, resume=True), n)
    elapsed = time.monotonic() - start
    _require(not sweep.failures,
             f"resume quarantined {sweep.quarantined} on a healthy journal")
    _require(len(sweep.resumed) == expect_resumed,
             f"resume replayed {len(sweep.resumed)} tasks, "
             f"expected {expect_resumed} — coverage accounting lied")
    _require(_canonical(sweep.results) == _canonical(_reference(n)),
             "resumed aggregates are not bit-identical to an "
             "uninterrupted run")
    kind = detail.split(":")[0]
    return ExperimentOutcome(kind=kind, detected=True, recovered=True,
                             resumable=True, detail=detail,
                             recovery_seconds=elapsed)


# -- executor faults ----------------------------------------------------------

def _sigterm_proof_hang():
    """A worker that ignores SIGTERM and never returns (forked)."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


@_experiment("worker_hang_sigterm", resumable=True)
def _exp_worker_hang(fault: ChaosFault, workdir: Path) -> ExperimentOutcome:
    """A hung, SIGTERM-ignoring worker must be SIGKILLed; the sweep
    completes with honest coverage."""
    timeout = float(fault.params["timeout_s"])
    grace = float(fault.params["grace_s"])
    tasks = _make_tasks(2) + [Task(key="hang", fn=_sigterm_proof_hang,
                                   spec={"index": "hang"})]
    sup = Supervisor(jobs=2, timeout=timeout, kill_grace=grace)
    start = time.monotonic()
    sweep = sup.run(tasks)
    elapsed = time.monotonic() - start
    _require(len(sweep.failures) == 1 and sweep.quarantined == ["hang"],
             f"expected exactly the hung task quarantined, "
             f"got {sweep.quarantined}")
    failure = sweep.failures[0]
    detected = failure.kind == "timeout" and "SIGKILL" in failure.message
    _require(detected,
             f"hung worker was not reported as a SIGKILL-escalated "
             f"timeout: {failure.describe()}")
    _require(set(sweep.results) == {"t0", "t1"}
             and abs(sweep.coverage - 2 / 3) < 1e-12,
             "coverage accounting is dishonest after a hang")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"worker_hang_sigterm: escalated to SIGKILL after "
               f"{grace:g}s grace; sweep completed 2/3 honestly",
        recovery_seconds=max(elapsed - timeout, 0.0))


class _SimulatedCrash(Exception):
    """Stand-in for process death mid-sweep (after a journal fsync)."""


class _CrashAfter(SweepManifest):
    """Manifest that "dies" right after its Nth success hits the disk.

    The journal line is written and fsynced by the superclass before the
    crash fires — exactly the window between journaling a result and the
    supervisor acting on it.
    """

    def __init__(self, path, crash_after: int):
        super().__init__(path)
        self._fuse = crash_after

    def record_success(self, task, payload, attempts, elapsed):
        """Journal the result, then die once the fuse runs out."""
        super().record_success(task, payload, attempts, elapsed)
        self._fuse -= 1
        if self._fuse == 0:
            raise _SimulatedCrash(
                f"simulated process death after journaling {task.key}")


@_experiment("abort_mid_sweep", resumable=True)
def _exp_abort_mid_sweep(fault: ChaosFault,
                         workdir: Path) -> ExperimentOutcome:
    """A sweep killed between journal fsync and result delivery must
    resume exactly: journaled tasks replayed, the rest re-run."""
    n = int(fault.params["n_tasks"])
    crash_after = int(fault.params["crash_after"])
    path = workdir / "sweep.jsonl"
    try:
        _run_sweep(_CrashAfter(path, crash_after), n)
    except _SimulatedCrash:  # containment: the injected crash is the fault
        pass
    else:
        raise InvariantViolation(
            "the simulated crash never fired — the experiment is vacuous")
    return _resume_exact(
        path, n, expect_resumed=crash_after,
        detail=f"abort_mid_sweep: killed after {crash_after}/{n} journal "
               f"records; resume replayed exactly those")


# -- manifest-file faults -----------------------------------------------------

def _result_lines(path: Path):
    """``(header_line, result_lines)`` of a manifest file."""
    lines = path.read_text(encoding="utf-8").splitlines()
    return lines[0], lines[1:]


@_experiment("torn_final_manifest_line", resumable=True)
def _exp_torn_final(fault: ChaosFault, workdir: Path) -> ExperimentOutcome:
    """A crash mid-append leaves a torn final line: resume must warn,
    amputate the fragment, re-run that task, and stay exact."""
    n = int(fault.params["n_tasks"])
    cut = float(fault.params["cut_fraction"])
    path = workdir / "sweep.jsonl"
    _run_sweep(SweepManifest(path), n)
    header, results = _result_lines(path)
    torn = results[-1][:max(1, int(len(results[-1]) * cut))]
    path.write_text("\n".join([header] + results[:-1]) + "\n" + torn,
                    encoding="utf-8")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcome = _resume_exact(
            path, n, expect_resumed=n - 1,
            detail=f"torn_final_manifest_line: fragment warned about, "
                   f"amputated, task re-ran; {n} results exact")
    _require(any("torn final" in str(w.message) for w in caught),
             "torn final manifest line was consumed without a warning")
    raw = path.read_bytes()
    _require(raw.endswith(b"\n") and b"torn" not in raw.split(b"\n")[-2],
             "torn fragment survived in the journal after resume")
    # Amputation must be idempotent: a second resume is clean and quiet.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        again = _run_sweep(SweepManifest(path, resume=True), n)
    _require(len(again.resumed) == n,
             "second resume after amputation re-ran finished work")
    return outcome


@_experiment("torn_nonfinal_manifest_line", resumable=False)
def _exp_torn_nonfinal(fault: ChaosFault,
                       workdir: Path) -> ExperimentOutcome:
    """Corruption anywhere but the final line must refuse to resume —
    syntactically torn or semantically gutted alike."""
    n = int(fault.params["n_tasks"])
    target = int(fault.params["target"])
    mode = str(fault.params["mode"])
    path = workdir / "sweep.jsonl"
    _run_sweep(SweepManifest(path), n)
    header, results = _result_lines(path)
    if mode == "syntactic":
        cut = float(fault.params["cut_fraction"])
        results[target] = results[target][
            :max(1, int(len(results[target]) * cut))]
    else:
        # A parseable line stripped of its payload: the nastier case,
        # because json.loads succeeds and only semantic validation saves
        # the resume from silently replaying a None payload.
        record = json.loads(results[target])
        del record["payload"]
        results[target] = json.dumps(record, sort_keys=True)
    path.write_text("\n".join([header] + results) + "\n", encoding="utf-8")
    try:
        SweepManifest(path, resume=True)
    except ManifestError as exc:
        return ExperimentOutcome(
            kind=fault.kind, detected=True, recovered=None, resumable=False,
            detail=f"torn_nonfinal_manifest_line[{mode}]: resume refused "
                   f"with ManifestError ({exc})"[:200],
            recovery_seconds=None)
    raise InvariantViolation(
        f"manifest with a {mode}ally corrupt mid-file line resumed "
        "without error — silently wrong aggregates were possible")


@_experiment("duplicated_manifest_lines", resumable=True)
def _exp_duplicated(fault: ChaosFault, workdir: Path) -> ExperimentOutcome:
    """Replayed/duplicated journal lines (crash-retry, copied file) must
    dedupe by spec hash and resume exactly."""
    n = int(fault.params["n_tasks"])
    dup = int(fault.params["dup_count"])
    path = workdir / "sweep.jsonl"
    _run_sweep(SweepManifest(path), n)
    header, results = _result_lines(path)
    path.write_text("\n".join([header] + results + results[:dup]) + "\n",
                    encoding="utf-8")
    return _resume_exact(
        path, n, expect_resumed=n,
        detail=f"duplicated_manifest_lines: {dup} replayed lines deduped "
               f"by spec hash; aggregates exact")


@_experiment("reordered_manifest_lines", resumable=True)
def _exp_reordered(fault: ChaosFault, workdir: Path) -> ExperimentOutcome:
    """Out-of-order journal lines (merged shards, interleaved writers)
    must not matter: resume keys on content hashes, not positions."""
    n = int(fault.params["n_tasks"])
    path = workdir / "sweep.jsonl"
    _run_sweep(SweepManifest(path), n)
    header, results = _result_lines(path)
    order = np.random.default_rng(
        int(fault.params["shuffle_seed"])).permutation(len(results))
    shuffled = [results[i] for i in order]
    path.write_text("\n".join([header] + shuffled) + "\n", encoding="utf-8")
    return _resume_exact(
        path, n, expect_resumed=n,
        detail="reordered_manifest_lines: shuffled journal resumed "
               "exactly (content-hash keyed)")


# -- telemetry faults ---------------------------------------------------------

@_experiment("eventsink_torn_line", resumable=True)
def _exp_eventsink_torn(fault: ChaosFault,
                        workdir: Path) -> ExperimentOutcome:
    """A telemetry file torn mid-append must read back every intact
    event, warn about the fragment, and never raise."""
    n = int(fault.params["n_events"])
    cut = float(fault.params["cut_fraction"])
    path = workdir / "events.jsonl"
    with EventSink(path, run_id="chaos") as sink:
        emitted = [sink.emit("training_episode", episode=i,
                             total_reward=float(i) * 0.5,
                             final_soc=0.6) for i in range(n)]
    fragment = json.dumps({"type": "training_episode", "v": 1,
                           "seq": n, "wall": 0.0, "pid": 0,
                           "episode": n, "total_reward": 0.0,
                           "final_soc": 0.6}, sort_keys=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(fragment[:max(1, int(len(fragment) * cut))])
    start = time.monotonic()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        records = read_events(path)
    elapsed = time.monotonic() - start
    _require(any("torn final telemetry" in str(w.message) for w in caught),
             "torn final telemetry line was consumed without a warning")
    _require(records[1:] == emitted,
             "telemetry read-back after a torn line lost or altered "
             "intact events")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"eventsink_torn_line: fragment warned about; "
               f"{n} intact events read back verbatim",
        recovery_seconds=elapsed)


# -- disk-pressure faults -----------------------------------------------------

@_experiment("enospc_manifest_append", resumable=True)
def _exp_enospc_manifest(fault: ChaosFault,
                         workdir: Path) -> ExperimentOutcome:
    """Disk exhaustion mid-sweep must abort with a ManifestError naming
    the journal; once space returns, resume is exact."""
    n = int(fault.params["n_tasks"])
    path = workdir / "sweep.jsonl"
    shim = EnospcShim(fail_after_writes=int(fault.params["fail_after_writes"]),
                      partial_fraction=float(fault.params["partial_fraction"]),
                      match="sweep.jsonl")
    try:
        with shimmed(shim):
            _run_sweep(SweepManifest(path), n)
    except ManifestError as exc:
        _require("cannot append" in str(exc) and "sweep.jsonl" in str(exc),
                 f"ENOSPC surfaced without naming the journal: {exc}")
    else:
        raise InvariantViolation(
            "sweep kept running on a full disk — appends were lost "
            "silently")
    _require(shim.tripped, "the ENOSPC shim never fired — vacuous run")
    # Targeted write 1 is the header, write k the record of task k-2, so
    # the failing write leaves exactly fail_after_writes - 2 complete
    # journal records (the torn partial record, if any, is amputated).
    journaled = int(fault.params["fail_after_writes"]) - 2
    with warnings.catch_warnings():
        # The failed append may have torn the tail; resume may warn.
        warnings.simplefilter("ignore", RuntimeWarning)
        return _resume_exact(
            path, n, expect_resumed=journaled,
            detail="enospc_manifest_append: append failed loudly; resume "
                   "after 'freeing space' re-ran unjournaled work exactly")


@_experiment("slow_manifest_io", resumable=True)
def _exp_slow_manifest(fault: ChaosFault,
                       workdir: Path) -> ExperimentOutcome:
    """Degraded (slow) storage must change latency only — every record
    lands intact and a clean resume replays all of them."""
    n = int(fault.params["n_tasks"])
    delay = float(fault.params["delay_s"])
    path = workdir / "sweep.jsonl"
    shim = SlowWriteShim(delay, match="sweep.jsonl")
    with shimmed(shim):
        sweep = _run_sweep(SweepManifest(path), n)
    _require(shim.intercepted == n + 1,
             f"slow-IO shim saw {shim.intercepted} writes, expected "
             f"{n + 1} (header + {n} records)")
    _require(_canonical(sweep.results) == _canonical(_reference(n)),
             "results diverged under slow I/O")
    return _resume_exact(
        path, n, expect_resumed=n,
        detail=f"slow_manifest_io: {shim.intercepted} writes stalled "
               f"{delay * 1e3:g}ms each; journal intact, resume exact")


# -- persistence faults -------------------------------------------------------

def _built_agent(agent_seed: int):
    solver = PowertrainSolver(default_vehicle())
    controller = build_rl_controller(solver, seed=int(agent_seed))
    agent = controller.agent
    # Give the Q-table deterministic non-trivial content so corruption
    # has something to corrupt and comparisons something to compare.
    rng = np.random.default_rng(int(agent_seed))
    agent.learner.qtable.values[:] = rng.normal(
        size=agent.learner.qtable.values.shape)
    return solver, agent


@_experiment("policy_bitflip", resumable=False)
def _exp_policy_bitflip(fault: ChaosFault,
                        workdir: Path) -> ExperimentOutcome:
    """A single flipped bit in a saved policy must fail the SHA-256
    integrity check — never load a scrambled policy."""
    solver, agent = _built_agent(fault.params["agent_seed"])
    stem = workdir / "policy"
    save_policy(agent, stem)
    npz = stem.with_suffix(".npz")
    blob = bytearray(npz.read_bytes())
    index = min(int(float(fault.params["offset_fraction"]) * len(blob)),
                len(blob) - 1)
    blob[index] ^= 1 << int(fault.params["bit"])
    npz.write_bytes(bytes(blob))
    fresh = build_rl_controller(solver,
                                seed=int(fault.params["agent_seed"])).agent
    try:
        load_policy(fresh, stem)
    except PersistenceError as exc:
        return ExperimentOutcome(
            kind=fault.kind, detected=True, recovered=None,
            resumable=False,
            detail=f"policy_bitflip: bit {fault.params['bit']} at byte "
                   f"{index} caught by integrity check ({exc})"[:200],
            recovery_seconds=None)
    raise InvariantViolation(
        f"a policy with bit {fault.params['bit']} flipped at byte "
        f"{index} loaded without error — silent corruption")


@_experiment("policy_sidecar_truncated", resumable=False)
def _exp_sidecar_truncated(fault: ChaosFault,
                           workdir: Path) -> ExperimentOutcome:
    """A truncated sidecar (torn copy, partial download) must surface as
    a structured PersistenceError, not a JSON traceback."""
    solver, agent = _built_agent(fault.params["agent_seed"])
    stem = workdir / "policy"
    save_policy(agent, stem)
    sidecar = stem.with_suffix(".json")
    blob = sidecar.read_bytes()
    keep = max(1, int(len(blob) * float(fault.params["keep_fraction"])))
    sidecar.write_bytes(blob[:keep])
    fresh = build_rl_controller(solver,
                                seed=int(fault.params["agent_seed"])).agent
    try:
        load_policy(fresh, stem)
    except PersistenceError as exc:
        return ExperimentOutcome(
            kind=fault.kind, detected=True, recovered=None,
            resumable=False,
            detail=f"policy_sidecar_truncated: {keep}/{len(blob)} bytes "
                   f"kept; structured refusal ({exc})"[:200],
            recovery_seconds=None)
    raise InvariantViolation(
        f"a sidecar truncated to {keep} bytes loaded without error")


def _gentle_cycle(steps: int = 30) -> DriveCycle:
    half = steps // 2
    speeds = np.concatenate([np.linspace(0.0, 10.0, half),
                             np.linspace(10.0, 0.0, steps - half)])
    return DriveCycle("chaos-gentle", speeds)


@_experiment("checkpoint_corrupt_resume", resumable=True)
def _exp_checkpoint_corrupt(fault: ChaosFault,
                            workdir: Path) -> ExperimentOutcome:
    """Checkpoint corruption must be detected on resume; resuming from
    an intact replica must replay training bit-identically."""
    episodes = int(fault.params["episodes"])
    interrupt = int(fault.params["interrupt_after"])
    agent_seed = int(fault.params["agent_seed"])
    train_seed = int(fault.params["train_seed"])
    cycle = _gentle_cycle()
    ckpt = workdir / "ckpt"

    solver_a = PowertrainSolver(default_vehicle())
    straight = build_rl_controller(solver_a, seed=agent_seed)
    train(Simulator(solver_a), straight, cycle, episodes=episodes,
          seed=train_seed, evaluate_after=False)

    solver_b = PowertrainSolver(default_vehicle())
    killed = build_rl_controller(solver_b, seed=agent_seed)
    train(Simulator(solver_b), killed, cycle, episodes=interrupt,
          seed=train_seed, evaluate_after=False, checkpoint_path=ckpt)

    npz = ckpt.with_suffix(".npz")
    intact = npz.read_bytes()
    blob = bytearray(intact)
    index = min(int(float(fault.params["offset_fraction"]) * len(blob)),
                len(blob) - 1)
    blob[index] ^= 0x10
    npz.write_bytes(bytes(blob))
    probe = build_rl_controller(PowertrainSolver(default_vehicle()),
                                seed=agent_seed).agent
    try:
        load_checkpoint(probe, ckpt)
    except PersistenceError:  # containment: the expected detection signal
        pass
    else:
        raise InvariantViolation(
            "a corrupted checkpoint loaded without error — training "
            "would have resumed from scrambled state")

    # "Restore from replica": the intact bytes come back, resume runs.
    npz.write_bytes(intact)
    solver_c = PowertrainSolver(default_vehicle())
    resumed = build_rl_controller(solver_c, seed=agent_seed)
    start = time.monotonic()
    train(Simulator(solver_c), resumed, cycle, episodes=episodes,
          seed=train_seed, evaluate_after=False, resume_from=ckpt)
    elapsed = time.monotonic() - start
    _require(np.array_equal(resumed.agent.learner.qtable.values,
                            straight.agent.learner.qtable.values),
             "resumed training is not bit-identical to the "
             "uninterrupted run")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"checkpoint_corrupt_resume: corruption at byte {index} "
               f"detected; resume from replica bit-identical after "
               f"{interrupt}/{episodes} episodes",
        recovery_seconds=elapsed)


@_experiment("checkpoint_enospc", resumable=True)
def _exp_checkpoint_enospc(fault: ChaosFault,
                           workdir: Path) -> ExperimentOutcome:
    """Disk exhaustion mid-checkpoint must abort the save loudly and
    leave the previous checkpoint fully loadable (atomic-write promise)."""
    solver, agent = _built_agent(fault.params["agent_seed"])
    ckpt = workdir / "ckpt"
    save_checkpoint(agent, ckpt, episode=1)
    saved_q = agent.learner.qtable.values.copy()

    # state the failed save would have written
    agent.learner.qtable.values[:] = saved_q + 1.0
    shim = EnospcShim(fail_after_writes=1,
                      partial_fraction=float(fault.params["partial_fraction"]),
                      match="ckpt.npz")
    try:
        with shimmed(shim):
            save_checkpoint(agent, ckpt, episode=2)
    except PersistenceError as exc:
        _require("cannot persist" in str(exc),
                 f"ENOSPC checkpoint save raised an unhelpful error: {exc}")
    else:
        raise InvariantViolation(
            "checkpoint save on a full disk reported success")
    _require(not list(workdir.glob("*.tmp")),
             "failed checkpoint save leaked a temporary file")

    fresh = build_rl_controller(solver,
                                seed=int(fault.params["agent_seed"])).agent
    start = time.monotonic()
    episode = load_checkpoint(fresh, ckpt)
    elapsed = time.monotonic() - start
    _require(episode == 1
             and np.array_equal(fresh.learner.qtable.values, saved_q),
             "the previous checkpoint was damaged by a failed save — "
             "the atomic-write promise broke")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail="checkpoint_enospc: failed save surfaced as "
               "PersistenceError; previous checkpoint intact and loaded",
        recovery_seconds=elapsed)


# -- serving faults -----------------------------------------------------------

def _published_server(workdir: Path, agent_seed: int):
    """A registry with two published versions, a server holding v1.

    Returns ``(registry, server, candidate_version)`` where the
    candidate (v2) is a deliberately different policy so a completed
    swap would visibly change decisions — the experiments then prove it
    never completes.
    """
    _, agent = _built_agent(agent_seed)
    registry = PolicyRegistry(workdir / "registry")
    incumbent = registry.load(registry.publish(agent))
    agent.learner.qtable.values[:] += 0.25
    candidate = registry.publish(agent)
    server = PolicyServer(registry)
    server.activate(incumbent)
    return registry, server, candidate


@_experiment("serve_swap_corrupt_candidate", resumable=True)
def _exp_serve_corrupt_candidate(fault: ChaosFault,
                                 workdir: Path) -> ExperimentOutcome:
    """A candidate artifact corrupted on disk after publication (bit rot
    or a torn copy in the verify-to-activate window) must be refused at
    swap time; the incumbent keeps serving bit-identical decisions."""
    registry, server, candidate = _published_server(
        workdir, int(fault.params["agent_seed"]))
    probe = np.arange(min(96, server.active_artifact.num_states))
    before = server.decide(probe)
    path = registry.path_for(candidate)
    blob = bytearray(path.read_bytes())
    header_len = int.from_bytes(blob[4:8], "little")
    table_offset = _aligned(8 + header_len)
    span = len(blob) - table_offset
    mode = str(fault.params["mode"])
    if mode == "bitflip":
        index = table_offset + min(
            int(float(fault.params["offset_fraction"]) * span), span - 1)
        blob[index] ^= 1 << int(fault.params["bit"])
        path.write_bytes(bytes(blob))
        injected = (f"bit {fault.params['bit']} flipped at table byte "
                    f"{index - table_offset}")
    else:
        keep = table_offset + int(float(fault.params["keep_fraction"]) * span)
        path.write_bytes(bytes(blob[:keep]))
        injected = f"table truncated to {keep}/{len(blob)} bytes"
    start = time.monotonic()
    report = server.swap(version=candidate)
    after = server.decide(probe)
    elapsed = time.monotonic() - start
    _require(not report.activated and server.refused_swaps == 1,
             f"a corrupt candidate ({injected}) was not refused at swap "
             f"time: {report}")
    _require(server.active_version == 1,
             f"swap of a corrupt candidate moved the active version to "
             f"{server.active_version} — the pointer flip was not atomic")
    _require(np.array_equal(before, after),
             "incumbent decisions changed after a refused swap — serving "
             "was not isolated from the corrupt candidate")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"serve_swap_corrupt_candidate[{mode}]: {injected}; swap "
               f"refused, incumbent decisions bit-identical",
        recovery_seconds=elapsed)


@_experiment("serve_slow_artifact_load", resumable=True)
def _exp_serve_slow_load(fault: ChaosFault,
                         workdir: Path) -> ExperimentOutcome:
    """Pathologically slow artifact reads must trip the staging deadline:
    the swap is shed cleanly (no indefinite stall) and the incumbent
    keeps serving bit-identically."""
    registry, server, candidate = _published_server(
        workdir, int(fault.params["agent_seed"]))
    probe = np.arange(min(96, server.active_artifact.num_states))
    before = server.decide(probe)
    delay = float(fault.params["delay_s"])
    deadline = float(fault.params["deadline_s"])
    shim = SlowReadShim(delay, match=".rpa")
    start = time.monotonic()
    with shimmed(shim):
        report = server.swap(version=candidate, deadline_s=deadline)
    stalled = time.monotonic() - start
    _require(shim.intercepted >= 1,
             "the slow-read shim never intercepted an artifact read — "
             "the experiment is vacuous")
    _require(not report.activated and server.stage_sheds == 1,
             f"a swap that blew its {deadline:g}s staging deadline was "
             f"not shed: {report}")
    _require("deadline" in report.reason,
             f"shed swap did not name the deadline: {report.reason!r}")
    recover_start = time.monotonic()
    after = server.decide(probe)
    elapsed = time.monotonic() - recover_start
    _require(server.active_version == 1 and np.array_equal(before, after),
             "serving degraded after a deadline-shed swap — the incumbent "
             "should have been untouched")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"serve_slow_artifact_load: reads stalled {delay * 1e3:g}ms "
               f"each ({stalled:.3f}s total), staging shed at "
               f"{deadline * 1e3:g}ms deadline; serving bit-identical",
        recovery_seconds=elapsed)


@_experiment("learn_journal_torn_batch", resumable=True)
def _exp_learn_torn_batch(fault: ChaosFault,
                          workdir: Path) -> ExperimentOutcome:
    """A fleet writer killed mid-append tears the experience journal's
    final line.  The reader must amputate it (idempotently — a second
    read truncates nothing further), the content-hash cursor must make
    a resumed learner re-read nothing twice, and a learner killed after
    its checkpoint and resumed must reach the **bit-identical** table an
    uninterrupted run over the same records produces."""
    params = fault.params
    _, agent = _built_agent(int(params["agent_seed"]))
    table = np.asarray(agent.learner.qtable.values, dtype=np.float64)
    fingerprint = _fingerprint(agent)
    num_states, num_actions = table.shape
    rng = np.random.default_rng(int(params["agent_seed"]))
    n = int(params["n_records"])
    break_after = int(params["break_after"])
    records = [ExperienceRecord(
        state=int(rng.integers(num_states)),
        action=int(rng.integers(num_actions)),
        reward=round(float(rng.normal()), 6),
        next_state=int(rng.integers(num_states)),
        policy_version=1, vehicle_id=i, step=0) for i in range(n)]

    # The uninterrupted reference: every record, one ingest.
    with ExperienceStream(workdir / "reference") as ref_stream:
        for rec in records:
            ref_stream.offer(rec)
        ref_stream.flush()
    reference = OnlineLearner(fingerprint, table)
    reference.ingest(workdir / "reference")

    # The faulted journal: a clean prefix, then a torn final line —
    # the writer died inside the os.write of record break_after.
    journal_dir = workdir / "journals"
    with ExperienceStream(journal_dir) as stream:
        for rec in records[:break_after]:
            stream.offer(rec)
        stream.flush()
        torn = encode_record(records[break_after]).encode("utf-8")
        cut = max(1, int(len(torn) * float(params["cut_fraction"])))
        with open(stream.path, "ab") as fh:
            fh.write(torn[:cut])

    checkpoint = workdir / "learner-checkpoint.json"
    learner = OnlineLearner(fingerprint, table, checkpoint_path=checkpoint)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = learner.ingest(journal_dir)
    _require(any("amputating" in str(w.message) for w in caught),
             "the torn final line was consumed without the documented "
             "amputation warning")
    _require(first.amputated_bytes == cut,
             f"amputation removed {first.amputated_bytes} bytes, the torn "
             f"fragment was {cut}")
    _require(first.records == break_after and first.quarantined == 0,
             f"the clean prefix held {break_after} records; ingest applied "
             f"{first.records} with {first.quarantined} quarantined")
    with warnings.catch_warnings():
        # Amputation already happened physically; a second pass over the
        # already-truncated journal must be silent and consume nothing.
        warnings.simplefilter("error")
        second = learner.ingest(journal_dir)
    _require(second.records == 0 and second.amputated_bytes == 0,
             f"a re-ingest under the cursor re-applied {second.records} "
             f"record(s) / re-amputated {second.amputated_bytes} byte(s) — "
             "exact resume is broken")

    # The learner process "dies" here (we drop the object); the fleet
    # writer recovers and appends the records the tear swallowed.
    del learner
    with ExperienceStream(journal_dir) as stream:
        for rec in records[break_after:]:
            stream.offer(rec)
        stream.flush()
    start = time.monotonic()
    resumed = OnlineLearner.resume(checkpoint)
    rest = resumed.ingest(journal_dir)
    elapsed = time.monotonic() - start
    _require(rest.records == n - break_after,
             f"the resumed learner applied {rest.records} of the "
             f"{n - break_after} post-crash records")
    _require(resumed.records == n,
             f"lifetime record count {resumed.records} != {n} after resume")
    _require(np.array_equal(resumed.table, reference.table),
             "kill-and-resume produced a table that differs from the "
             "uninterrupted run — bit-identical resume is broken")

    # And the cursor must detect a journal rewritten underneath it as a
    # structured refusal, never as silent double-counting.
    body = stream.path.read_bytes()
    stream.path.write_bytes(body.replace(b'"v": 1', b'"v": 2', 1))
    try:
        resumed.ingest(journal_dir)
    except ExperienceError:  # containment: the refusal IS the invariant
        pass
    else:
        _require(False, "a journal rewritten under its cursor was "
                        "re-ingested without a structured refusal")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"learn_journal_torn_batch: {cut}-byte torn line amputated "
               f"once, cursor resumed at record {break_after}/{n}, "
               "resumed table bit-identical to the uninterrupted run",
        recovery_seconds=elapsed)


@_experiment("learn_regressed_candidate", resumable=True)
def _exp_learn_regressed(fault: ChaosFault,
                         workdir: Path) -> ExperimentOutcome:
    """A clearly regressed candidate (the incumbent's table negated, so
    its greedy policy picks the worst action everywhere) must be caught
    by the canary cohort, rolled back automatically with the incumbent
    bit-identical, and the regression-recovery latency recorded."""
    params = fault.params
    _, agent = _built_agent(int(params["agent_seed"]))
    table = np.asarray(agent.learner.qtable.values, dtype=np.float64)
    fingerprint = _fingerprint(agent)
    registry = PolicyRegistry(workdir / "registry")
    incumbent = registry.load(registry.publish_table(table, fingerprint))
    poisoned = registry.publish_table(-table, fingerprint)
    server = PolicyServer(registry)
    server.activate(incumbent)
    probe = np.arange(min(96, server.active_artifact.num_states))
    before = server.decide(probe)

    pipeline = PromotionPipeline(
        server, registry,
        fleet_config=FleetConfig(vehicles=192, steps=30,
                                 seed=int(params["fleet_seed"])),
        canary_config=CanaryConfig(fraction=float(params["fraction"]),
                                   min_samples=48, sigmas=2.0,
                                   decision_budget=4000,
                                   intervention_margin=0.02),
        max_rounds=6, round_steps=15)
    report = pipeline.promote(poisoned)
    _require(report.outcome == "rolled_back",
             f"a negated-table candidate came out {report.outcome!r} "
             f"({report.reason}); the canary should have rolled it back")
    _require(report.incumbent_intact is True,
             "the pipeline could not verify the incumbent bit-identical "
             "after the rollback")
    _require(report.recovery_s is not None and report.recovery_s >= 0.0,
             "the rollback did not record a regression-recovery latency")
    after = server.decide(probe)
    _require(server.active_version == 1
             and bool(np.array_equal(before, after)),
             "serving changed across a canary rollback — the incumbent "
             "should have been untouched")
    _require(server.canary is None,
             "the rolled-back canary rollout is still attached to the "
             "server")
    return ExperimentOutcome(
        kind=fault.kind, detected=True, recovered=True, resumable=True,
        detail=f"learn_regressed_candidate: canary caught v{poisoned} "
               f"after {report.rounds} fleet round(s) "
               f"({report.canary_decisions} canary decisions), rolled "
               "back to a verified bit-identical incumbent "
               f"in {report.recovery_s * 1e3:.1f}ms",
        recovery_seconds=report.recovery_s)
