"""Chaos campaigns: N seeds × K fault kinds, tallied into one report.

A campaign expands each seed into a deterministic
:class:`~repro.chaos.plan.ChaosPlan`, runs every scheduled experiment in
its own scratch directory, and aggregates the outcomes:

* **detection rate** — faults that surfaced as their documented
  structured error (or were tolerated by design with exact results),
  over all faults.  The stack's contract is 100%: a fault that passes
  silently is an :class:`~repro.errors.InvariantViolation`.
* **recovery rate** — resumable faults whose documented recovery path
  restored correct (bit-identical where promised) state, over all
  resumable faults.  Also contractually 100%.
* **recovery latency** — wall-clock of the recovery paths, accumulated
  in a constant-memory telemetry histogram and reported as p50/p99.

Invariant violations do not abort the campaign — they are its findings.
The report's :meth:`~CampaignReport.signature` (seed, kind, detected,
recovered tuples) is deterministic per seed set; latencies are measured
and excluded.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.chaos.experiments import (
    EXPERIMENTS,
    RESUMABLE,
    ExperimentOutcome,
)
from repro.chaos.plan import FAULT_KINDS, ChaosPlan
from repro.errors import ChaosError, InvariantViolation
from repro.telemetry.metrics import LATENCY_BUCKETS_S, Histogram

REPORT_VERSION = 1
"""Campaign report schema version."""


@dataclass
class CampaignReport:
    """Everything one chaos campaign established."""

    seeds: int
    """Number of campaign seeds run (seed values 0..seeds-1)."""

    kinds: Tuple[str, ...]
    """Fault kinds exercised (each once per seed)."""

    outcomes: List[Tuple[int, ExperimentOutcome]] = field(
        default_factory=list)
    """Every ``(seed, outcome)``, in execution order."""

    violations: List[dict] = field(default_factory=list)
    """One record per broken invariant: seed, kind, message."""

    latency: Histogram = field(default_factory=lambda: Histogram(
        "chaos.recovery_seconds", LATENCY_BUCKETS_S))
    """Recovery-path wall-clock distribution."""

    elapsed_s: float = 0.0
    """Total campaign wall-clock."""

    # -- tallies -----------------------------------------------------------

    @property
    def faults(self) -> int:
        """Total fault injections."""
        return len(self.outcomes)

    @property
    def detected(self) -> int:
        """Faults that surfaced per contract."""
        return sum(1 for _, o in self.outcomes if o.detected)

    @property
    def resumable(self) -> int:
        """Faults with a documented recovery path."""
        return sum(1 for _, o in self.outcomes if o.resumable)

    @property
    def recovered(self) -> int:
        """Resumable faults whose recovery path held."""
        return sum(1 for _, o in self.outcomes
                   if o.resumable and o.recovered)

    @property
    def detection_rate(self) -> float:
        """Detected fraction of all faults (1.0 when none ran)."""
        return self.detected / self.faults if self.faults else 1.0

    @property
    def recovery_rate(self) -> float:
        """Recovered fraction of resumable faults (1.0 when none ran)."""
        return self.recovered / self.resumable if self.resumable else 1.0

    @property
    def clean(self) -> bool:
        """True when every invariant held: full detection and recovery."""
        return (not self.violations
                and self.detected == self.faults
                and self.recovered == self.resumable)

    def signature(self) -> List[Tuple[int, str, bool, Optional[bool]]]:
        """Deterministic skeleton of the campaign (latency excluded) —
        two campaigns over the same seeds must compare equal."""
        return [(seed, o.kind, o.detected, o.recovered)
                for seed, o in self.outcomes]

    # -- serialisation -----------------------------------------------------

    def to_json(self) -> dict:
        """Full JSON-serialisable report."""
        per_kind: Dict[str, dict] = {}
        for _, outcome in self.outcomes:
            row = per_kind.setdefault(outcome.kind, {
                "runs": 0, "detected": 0, "recovered": 0,
                "resumable": RESUMABLE[outcome.kind]})
            row["runs"] += 1
            row["detected"] += int(outcome.detected)
            row["recovered"] += int(bool(outcome.recovered))
        return {
            "report": "chaos_campaign",
            "version": REPORT_VERSION,
            "seeds": self.seeds,
            "kinds": list(self.kinds),
            "totals": {"faults": self.faults, "detected": self.detected,
                       "resumable": self.resumable,
                       "recovered": self.recovered,
                       "violations": len(self.violations)},
            "detection_rate": self.detection_rate,
            "recovery_rate": self.recovery_rate,
            "recovery_latency_s": {
                "count": self.latency.count,
                "p50": self.latency.quantile(0.50),
                "p99": self.latency.quantile(0.99),
                "mean": self.latency.mean(),
            } if self.latency.count else None,
            "per_kind": per_kind,
            "violations": list(self.violations),
            "runs": [dict(seed=seed, **outcome.to_json())
                     for seed, outcome in self.outcomes],
            "elapsed_s": self.elapsed_s,
        }

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = [f"chaos campaign: {self.seeds} seed(s) x "
                 f"{len(self.kinds)} fault kind(s) = {self.faults} "
                 f"injections in {self.elapsed_s:.1f}s",
                 f"  detected : {self.detected}/{self.faults} "
                 f"({self.detection_rate:.0%})",
                 f"  recovered: {self.recovered}/{self.resumable} "
                 f"resumable ({self.recovery_rate:.0%})"]
        if self.latency.count:
            lines.append(
                f"  recovery latency: p50 "
                f"{self.latency.quantile(0.5) * 1e3:.1f}ms, p99 "
                f"{self.latency.quantile(0.99) * 1e3:.1f}ms "
                f"({self.latency.count} samples)")
        per_kind = self.to_json()["per_kind"]
        width = max(len(k) for k in per_kind) if per_kind else 0
        for kind in sorted(per_kind):
            row = per_kind[kind]
            recovery = (f"{row['recovered']}/{row['runs']} recovered"
                        if row["resumable"] else "detection-only")
            lines.append(f"    {kind:<{width}}  "
                         f"{row['detected']}/{row['runs']} detected, "
                         f"{recovery}")
        for violation in self.violations:
            lines.append(f"  VIOLATION seed={violation['seed']} "
                         f"{violation['kind']}: {violation['message']}")
        if self.clean:
            lines.append("  every documented recovery invariant held")
        return "\n".join(lines)


def run_campaign(seeds: int = 20,
                 kinds: Optional[Sequence[str]] = None,
                 workdir: Optional[Union[str, Path]] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> CampaignReport:
    """Run a full chaos campaign; never raises on broken invariants.

    ``seeds`` campaign seeds (0..seeds-1) each expand into one
    deterministic :class:`ChaosPlan` over ``kinds`` (default: all of
    :data:`FAULT_KINDS`).  Each experiment runs in its own directory
    under ``workdir`` (default: a temporary directory, removed
    afterwards).  ``progress`` receives one line per seed.

    Harness misconfiguration raises :class:`~repro.errors.ChaosError`;
    broken *invariants* are collected into the report instead — a
    campaign that dies on its first finding cannot surface the second.
    """
    if not isinstance(seeds, int) or seeds < 1:
        raise ChaosError(f"seeds must be a positive int, got {seeds!r}")
    chosen = tuple(kinds) if kinds is not None else FAULT_KINDS
    report = CampaignReport(seeds=seeds, kinds=chosen)
    started = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        root = Path(workdir) if workdir is not None else Path(scratch)
        for seed in range(seeds):
            plan = ChaosPlan.generate(seed, chosen)
            for fault in plan.faults:
                subdir = root / f"seed{seed:03d}" / fault.kind
                subdir.mkdir(parents=True, exist_ok=True)
                try:
                    outcome = EXPERIMENTS[fault.kind](fault, subdir)
                except InvariantViolation as exc:
                    report.violations.append({
                        "seed": seed, "kind": fault.kind,
                        "message": str(exc)})
                    outcome = ExperimentOutcome(
                        kind=fault.kind, detected=False,
                        recovered=False if RESUMABLE[fault.kind] else None,
                        resumable=RESUMABLE[fault.kind],
                        detail=f"INVARIANT VIOLATION: {exc}",
                        recovery_seconds=None)
                report.outcomes.append((seed, outcome))
                if outcome.recovery_seconds is not None:
                    report.latency.observe(outcome.recovery_seconds)
            if progress is not None:
                done = sum(1 for s, _ in report.outcomes if s == seed)
                progress(f"seed {seed}: {done} fault(s) injected, "
                         f"{len(report.violations)} violation(s) so far")
    report.elapsed_s = time.monotonic() - started
    return report
