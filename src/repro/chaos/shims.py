"""Fault-injecting filesystem shims for the chaos harness.

Each shim subclasses :class:`repro.fsio.FilesystemShim` and corrupts
exactly one failure dimension — disk exhaustion, pathological latency —
while leaving every non-targeted path untouched.  Shims target artifacts
by file *name* substring (``match``), so an experiment can starve just
the sweep manifest while the policy files next to it write normally.

Shims are deterministic: their behaviour depends only on construction
parameters and the sequence of intercepted calls, never on wall-clock or
ambient randomness, which is what lets a chaos campaign replay
bit-identically per seed.
"""

from __future__ import annotations

import errno
import time
from pathlib import Path
from typing import Callable, Optional

from repro.errors import ChaosError
from repro.fsio import FilesystemShim


class TargetedShim(FilesystemShim):
    """Shim base that intercepts only paths whose name contains ``match``.

    ``match=None`` targets every write that carries a logical path;
    writes with no logical path (none exist in the library today) pass
    through untouched, because a shim that cannot tell what it is
    corrupting cannot honour a fault schedule.
    """

    def __init__(self, match: Optional[str] = None):
        self.match = match
        self.intercepted = 0
        """Targeted operations seen so far."""

    def targets(self, path: Optional[Path]) -> bool:
        """True when ``path`` is under this shim's fault schedule."""
        if path is None:
            return False
        return self.match is None or self.match in path.name


class EnospcShim(TargetedShim):
    """Simulated disk exhaustion: the Nth targeted write tears, then fails.

    The first ``fail_after_writes - 1`` targeted writes succeed.  The
    failing write persists only the first ``partial_fraction`` of its
    bytes before raising ``OSError(ENOSPC)`` — exactly what a real full
    disk does to an append: a torn tail, not a clean boundary.  Once
    tripped, every further targeted write and fsync fails too (the disk
    stays full until the experiment "frees space" by uninstalling the
    shim).
    """

    def __init__(self, fail_after_writes: int, partial_fraction: float = 0.5,
                 match: Optional[str] = None):
        super().__init__(match)
        if fail_after_writes < 1:
            raise ChaosError(
                f"fail_after_writes must be >= 1, got {fail_after_writes!r}")
        if not 0.0 <= partial_fraction < 1.0:
            raise ChaosError(
                f"partial_fraction must be in [0, 1), "
                f"got {partial_fraction!r}")
        self.fail_after_writes = int(fail_after_writes)
        self.partial_fraction = float(partial_fraction)
        self.tripped = False
        """True once the simulated disk has filled up."""

    def _enospc(self) -> OSError:
        return OSError(errno.ENOSPC, "No space left on device "
                                     "(chaos injection)")

    def write(self, path: Optional[Path], data: bytes,
              default: Callable[[bytes], Optional[int]]) -> Optional[int]:
        """Pass through until the fuse blows; then tear and fail."""
        if not self.targets(path):
            return default(data)
        self.intercepted += 1
        if self.tripped:
            raise self._enospc()
        if self.intercepted < self.fail_after_writes:
            return default(data)
        self.tripped = True
        torn = data[:int(len(data) * self.partial_fraction)]
        if torn:
            default(torn)
        raise self._enospc()

    def fsync(self, path: Optional[Path],
              default: Callable[[], None]) -> None:
        """A full disk fails fsync on the targeted file too."""
        if self.tripped and self.targets(path):
            raise self._enospc()
        default()


class SlowReadShim(TargetedShim):
    """Pathological read latency: every targeted read stalls ``delay_s``.

    The bytes come back intact — this is the load-side twin of
    :class:`SlowWriteShim`, modelling a policy registry on a throttled
    or flaky volume.  The serving layer's staging deadline is what turns
    this from a stall into a clean, bounded refusal.
    """

    def __init__(self, delay_s: float, match: Optional[str] = None):
        super().__init__(match)
        if not delay_s >= 0:
            raise ChaosError(f"delay_s must be >= 0, got {delay_s!r}")
        self.delay_s = float(delay_s)

    def read(self, path: Optional[Path], size: Optional[int],
             default: Callable[[], bytes]) -> bytes:
        """Stall ``delay_s`` then return the bytes intact."""
        if not self.targets(path):
            return default()
        self.intercepted += 1
        time.sleep(self.delay_s)
        return default()


class SlowWriteShim(TargetedShim):
    """Pathological I/O latency: every targeted write stalls ``delay_s``.

    The data still lands intact — this shim tests that the stack stays
    *correct* under degraded storage (NFS hiccup, throttled volume), not
    that it fails cleanly.
    """

    def __init__(self, delay_s: float, match: Optional[str] = None):
        super().__init__(match)
        if not delay_s >= 0:
            raise ChaosError(f"delay_s must be >= 0, got {delay_s!r}")
        self.delay_s = float(delay_s)

    def write(self, path: Optional[Path], data: bytes,
              default: Callable[[bytes], Optional[int]]) -> Optional[int]:
        """Stall ``delay_s`` then write the data intact."""
        if not self.targets(path):
            return default(data)
        self.intercepted += 1
        time.sleep(self.delay_s)
        return default(data)
