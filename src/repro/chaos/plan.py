"""Deterministic per-seed fault schedules for chaos campaigns.

One campaign seed expands into one :class:`ChaosPlan`: every requested
fault kind, each with seed-varied parameters (where to tear a line, how
many bytes until the disk "fills", how long a worker hangs), in a
seed-shuffled execution order.  The expansion is a pure function of
``(seed, kinds)`` built on :class:`numpy.random.SeedSequence`, so a
campaign replays bit-identically: same seed, same faults, same
parameters, same order — which is what makes a chaos finding
*reportable* ("seed 7 breaks invariant X") instead of anecdotal.

Every kind runs exactly once per seed.  Campaign denominators therefore
stay stable across seeds (N seeds × K kinds faults, always), so
detection and recovery rates compare across campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ChaosError

_PLAN_ROOT = 0xC4A05
"""Root entropy mixed into every plan's seed sequence."""

FAULT_KINDS: Tuple[str, ...] = (
    "worker_hang_sigterm",
    "abort_mid_sweep",
    "torn_final_manifest_line",
    "torn_nonfinal_manifest_line",
    "duplicated_manifest_lines",
    "reordered_manifest_lines",
    "eventsink_torn_line",
    "enospc_manifest_append",
    "slow_manifest_io",
    "policy_bitflip",
    "policy_sidecar_truncated",
    "checkpoint_corrupt_resume",
    "checkpoint_enospc",
    "serve_swap_corrupt_candidate",
    "serve_slow_artifact_load",
    "learn_journal_torn_batch",
    "learn_regressed_candidate",
)
"""Every fault kind the harness can inject (see repro.chaos.experiments)."""


def _sample_params(kind: str, rng: np.random.Generator) -> Dict[str, Any]:
    """Seed-varied parameters for one fault kind (plain JSON scalars)."""
    if kind == "worker_hang_sigterm":
        return {"timeout_s": round(float(rng.uniform(0.25, 0.45)), 3),
                "grace_s": round(float(rng.uniform(0.08, 0.18)), 3)}
    if kind == "abort_mid_sweep":
        n = int(rng.integers(4, 8))
        return {"n_tasks": n, "crash_after": int(rng.integers(1, n))}
    if kind == "torn_final_manifest_line":
        return {"n_tasks": int(rng.integers(3, 7)),
                "cut_fraction": round(float(rng.uniform(0.15, 0.9)), 3)}
    if kind == "torn_nonfinal_manifest_line":
        n = int(rng.integers(3, 7))
        return {"n_tasks": n,
                "target": int(rng.integers(0, n - 1)),
                "mode": str(rng.choice(["syntactic", "semantic"])),
                "cut_fraction": round(float(rng.uniform(0.15, 0.85)), 3)}
    if kind == "duplicated_manifest_lines":
        n = int(rng.integers(3, 7))
        return {"n_tasks": n, "dup_count": int(rng.integers(1, n))}
    if kind == "reordered_manifest_lines":
        return {"n_tasks": int(rng.integers(3, 7)),
                "shuffle_seed": int(rng.integers(0, 2 ** 31))}
    if kind == "eventsink_torn_line":
        return {"n_events": int(rng.integers(4, 10)),
                "cut_fraction": round(float(rng.uniform(0.15, 0.9)), 3)}
    if kind == "enospc_manifest_append":
        n = int(rng.integers(4, 8))
        # header is targeted write #1; fail on some *record* append
        return {"n_tasks": n,
                "fail_after_writes": int(rng.integers(2, n + 1)),
                "partial_fraction": round(float(rng.uniform(0.0, 0.9)), 3)}
    if kind == "slow_manifest_io":
        return {"n_tasks": int(rng.integers(3, 6)),
                "delay_s": round(float(rng.uniform(0.002, 0.008)), 4)}
    if kind == "policy_bitflip":
        return {"offset_fraction": round(float(rng.uniform(0.05, 0.95)), 4),
                "bit": int(rng.integers(0, 8)),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "policy_sidecar_truncated":
        return {"keep_fraction": round(float(rng.uniform(0.1, 0.8)), 3),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "checkpoint_corrupt_resume":
        return {"episodes": 4,
                "interrupt_after": int(rng.integers(1, 4)),
                "offset_fraction": round(float(rng.uniform(0.05, 0.95)), 4),
                "agent_seed": int(rng.integers(1, 1000)),
                "train_seed": int(rng.integers(0, 1000))}
    if kind == "checkpoint_enospc":
        return {"partial_fraction": round(float(rng.uniform(0.0, 0.9)), 3),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "serve_swap_corrupt_candidate":
        return {"mode": str(rng.choice(["bitflip", "truncate"])),
                "offset_fraction": round(float(rng.uniform(0.05, 0.95)), 4),
                "bit": int(rng.integers(0, 8)),
                "keep_fraction": round(float(rng.uniform(0.1, 0.9)), 3),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "serve_slow_artifact_load":
        return {"delay_s": round(float(rng.uniform(0.05, 0.15)), 4),
                "deadline_s": round(float(rng.uniform(0.005, 0.02)), 4),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "learn_journal_torn_batch":
        n = int(rng.integers(12, 24))
        return {"n_records": n,
                "break_after": int(rng.integers(3, n - 3)),
                "cut_fraction": round(float(rng.uniform(0.1, 0.9)), 3),
                "agent_seed": int(rng.integers(1, 1000))}
    if kind == "learn_regressed_candidate":
        return {"agent_seed": int(rng.integers(1, 1000)),
                "fleet_seed": int(rng.integers(0, 1000)),
                "fraction": round(float(rng.uniform(0.2, 0.35)), 3)}
    raise ChaosError(f"unknown fault kind {kind!r}; "
                     f"known kinds: {', '.join(FAULT_KINDS)}")


@dataclass(frozen=True)
class ChaosFault:
    """One scheduled fault injection: a kind plus its sampled parameters."""

    kind: str
    """One of :data:`FAULT_KINDS`."""

    params: Mapping[str, Any]
    """JSON-scalar parameters the experiment consumes."""

    def to_json(self) -> dict:
        """JSON-serialisable form (campaign reports)."""
        return {"kind": self.kind, "params": dict(self.params)}


@dataclass(frozen=True)
class ChaosPlan:
    """The full deterministic fault schedule of one campaign seed."""

    seed: int
    """Campaign seed this plan was expanded from."""

    faults: Tuple[ChaosFault, ...]
    """Every injection, in execution order (seed-shuffled)."""

    @classmethod
    def generate(cls, seed: int,
                 kinds: Optional[Sequence[str]] = None) -> "ChaosPlan":
        """Expand ``seed`` into a plan over ``kinds`` (default: all).

        Pure function of its arguments: parameters are drawn from one
        :class:`numpy.random.SeedSequence` stream per ``(seed, kind)``
        and the execution order from a ``(seed,)`` stream, so adding or
        removing a kind never perturbs the others' parameters.
        """
        if not isinstance(seed, int) or seed < 0:
            raise ChaosError(f"campaign seeds are non-negative ints, "
                             f"got {seed!r}")
        chosen = tuple(kinds) if kinds is not None else FAULT_KINDS
        if not chosen:
            raise ChaosError("a chaos plan needs at least one fault kind")
        unknown = sorted(set(chosen) - set(FAULT_KINDS))
        if unknown:
            raise ChaosError(
                f"unknown fault kind(s) {unknown}; "
                f"known kinds: {', '.join(FAULT_KINDS)}")
        if len(set(chosen)) != len(chosen):
            raise ChaosError(f"duplicate fault kinds in {list(chosen)}")
        faults = []
        for kind in chosen:
            # FAULT_KINDS.index, not enumerate(chosen): the stream for a
            # kind must not depend on which other kinds were requested.
            stream = np.random.default_rng(np.random.SeedSequence(
                [_PLAN_ROOT, seed, FAULT_KINDS.index(kind)]))
            faults.append(ChaosFault(kind, _sample_params(kind, stream)))
        order = np.random.default_rng(
            np.random.SeedSequence([_PLAN_ROOT, seed]))
        return cls(seed=seed,
                   faults=tuple(faults[i]
                                for i in order.permutation(len(faults))))
