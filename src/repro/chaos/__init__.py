"""Chaos harness: deterministic infrastructure-fault injection.

This package attacks the repository's *own* durability machinery — the
supervised executor (:mod:`repro.exec`), sweep manifests, telemetry
event files, and policy/checkpoint persistence (:mod:`repro.rl.persistence`)
— with seeded, reproducible infrastructure faults: SIGTERM-proof worker
hangs, process death between journal fsync and result delivery, torn /
duplicated / reordered journal lines, bit rot in saved policies,
simulated disk exhaustion and slow I/O (injected through
:mod:`repro.fsio`, never by patching library internals).

Each fault kind is paired with the documented invariant it challenges
(see ``docs/ROBUSTNESS.md``): corruption is always *detected* as a
structured error, interrupted sweeps resume with bit-identical
aggregates and honest coverage, killed training replays bit-identically
from its checkpoint.  A campaign (:func:`run_campaign`, CLI: ``repro
chaos``) runs every kind across N seeds and reports detection rate,
recovery rate, and recovery-latency percentiles; any broken invariant is
recorded as a finding, not an excuse to stop.

Determinism contract: a campaign's fault schedule and outcome signature
are pure functions of ``(seeds, kinds)``; only measured latencies vary
between runs.
"""

from repro.chaos.campaign import CampaignReport, run_campaign
from repro.chaos.experiments import EXPERIMENTS, RESUMABLE, ExperimentOutcome
from repro.chaos.plan import FAULT_KINDS, ChaosFault, ChaosPlan
from repro.chaos.shims import EnospcShim, SlowWriteShim, TargetedShim

__all__ = [
    "CampaignReport",
    "ChaosFault",
    "ChaosPlan",
    "EnospcShim",
    "EXPERIMENTS",
    "ExperimentOutcome",
    "FAULT_KINDS",
    "RESUMABLE",
    "run_campaign",
    "SlowWriteShim",
    "TargetedShim",
]
