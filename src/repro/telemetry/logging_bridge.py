"""Bridge stdlib :mod:`logging` records into the telemetry event sink.

The CLI reports its diagnostics through ``logging`` (behind
``--log-level``/``-v``); when telemetry is enabled, WARNING-and-above
records should also survive in the run's event file so a post-mortem
does not depend on having captured stderr.  :func:`attach_logging_bridge`
installs a :class:`TelemetryLogHandler` on a logger;
:func:`detach_logging_bridge` removes it again (the CLI detaches before
closing the sink, so a late log record can never hit a closed file).
"""

from __future__ import annotations

import logging
from typing import Optional


class TelemetryLogHandler(logging.Handler):
    """Forwards log records to a :class:`~repro.telemetry.Telemetry`
    sink as ``log`` events."""

    def __init__(self, telemetry, level: int = logging.WARNING):
        super().__init__(level)
        self.telemetry = telemetry

    def emit(self, record: logging.LogRecord) -> None:
        """Emit one ``log`` event (errors go through
        :meth:`logging.Handler.handleError`, never raise into the
        instrumented code)."""
        try:
            self.telemetry.event("log", level=record.levelname,
                                 logger=record.name,
                                 message=record.getMessage())
        except Exception:
            self.handleError(record)


def attach_logging_bridge(telemetry, logger: Optional[logging.Logger] = None,
                          level: int = logging.WARNING
                          ) -> TelemetryLogHandler:
    """Install (and return) a bridge handler on ``logger``.

    Defaults to the root logger, so WARNING+ records from any module land
    in the sink.  Keep the returned handler to detach it later.
    """
    handler = TelemetryLogHandler(telemetry, level)
    (logger or logging.getLogger()).addHandler(handler)
    return handler


def detach_logging_bridge(handler: TelemetryLogHandler,
                          logger: Optional[logging.Logger] = None) -> None:
    """Remove a bridge handler installed by :func:`attach_logging_bridge`."""
    (logger or logging.getLogger()).removeHandler(handler)
