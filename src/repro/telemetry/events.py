"""Versioned JSONL event sink: schema-validated, crash-tolerant appends.

One telemetry file is one run's event stream: a header line followed by
one JSON object per event, in emission order.  The format mirrors the
sweep manifest (:mod:`repro.exec.manifest`) deliberately — append-only
writes flushed per line, a torn final line (process killed mid-append)
tolerated with a loud :class:`RuntimeWarning` on read, corruption
anywhere else raising :class:`~repro.errors.TelemetryError`.

Every record carries the base fields ``type`` (str), ``v`` (the schema
version), ``seq`` (per-process emission counter), ``wall`` (unix time),
and ``pid`` (emitting process — forked workers share the sink fd, so one
file can interleave several processes' events).  Each event type then
declares required typed fields in :data:`EVENT_SCHEMAS`; emission and
reading both validate, so a consumer can rely on the declared shape.

Appends go through a single ``os.write`` on an ``O_APPEND`` descriptor:
on POSIX this makes each line one atomic append, which is what lets
forked supervisor workers write into the parent's sink without tearing
each other's records mid-line.  The write is routed through
:mod:`repro.fsio` (pass-through unless the chaos harness installs a
fault-injecting shim); a failed append raises
:class:`~repro.errors.TelemetryError` and leaves every earlier line
intact.
"""

from __future__ import annotations

import json
import math
import os
import time
import uuid
import warnings
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro import fsio
from repro.errors import TelemetryError

SCHEMA_VERSION = 1
"""Current event-file schema version (first header field checked)."""

_NUMBER = (int, float)

BASE_FIELDS: Dict[str, Any] = {"type": str, "v": int, "seq": int,
                               "wall": _NUMBER, "pid": int}
"""Fields required on every record."""

EVENT_SCHEMAS: Dict[str, Dict[str, Any]] = {
    # the file header (always the first line)
    "telemetry": {"run_id": str, "created_unix": _NUMBER},
    # one finished tracer span
    "span": {"name": str, "trace_id": str, "span_id": str,
             "duration": _NUMBER, "attributes": dict},
    # sampled simulator step
    "step": {"t": int, "speed": _NUMBER, "soc": _NUMBER,
             "reward": _NUMBER, "current": _NUMBER},
    # one finished simulator episode
    "episode": {"cycle": str, "steps": int, "initial_soc": _NUMBER,
                "total_reward": _NUMBER, "total_fuel_g": _NUMBER,
                "final_soc": _NUMBER, "total_shortfall": _NUMBER},
    # one training-loop episode (index within the run)
    "training_episode": {"episode": int, "total_reward": _NUMBER,
                         "final_soc": _NUMBER},
    # safety supervisor: guard intervened on (or observed) one step
    "guard_intervention": {"step": int, "time": _NUMBER, "kind": str,
                           "detail": str},
    # safety supervisor: health state machine moved
    "health_transition": {"step": int, "time": _NUMBER, "source": str,
                          "target": str, "reason": str},
    # supervised executor: one task reached a terminal outcome
    "task": {"key": str, "outcome": str, "attempts": int,
             "elapsed": _NUMBER},
    # logging bridge: one WARNING+ log record
    "log": {"level": str, "logger": str, "message": str},
    # final metrics registry snapshot (emitted on Telemetry.close)
    "metrics_snapshot": {"metrics": dict},
    # policy server: a candidate policy was activated (or refused)
    "serve_swap": {"from_version": int, "to_version": int,
                   "activated": str, "reason": str},
    # policy server: a canary candidate was rolled back
    "serve_rollback": {"version": int, "reason": str, "decisions": int},
    # online learner: one ingest pass over the experience journals
    "learn_ingest": {"journals": int, "records": int, "quarantined": int,
                     "excluded": int},
    # online loop: one guarded promotion attempt concluded
    "learn_promotion": {"version": int, "outcome": str, "reason": str},
}
"""Required typed fields per event type (extra fields are allowed)."""


def register_event_type(name: str, **fields: Any) -> None:
    """Declare a new event type with its required typed fields.

    Extension point for downstream instrumentation; re-registering an
    existing type with a different shape raises."""
    if not name:
        raise TelemetryError("event types need a non-empty name")
    existing = EVENT_SCHEMAS.get(name)
    if existing is not None and existing != fields:
        raise TelemetryError(
            f"event type {name!r} is already registered with a different "
            "schema")
    EVENT_SCHEMAS[name] = dict(fields)


def _type_name(expected: Any) -> str:
    if expected is _NUMBER or expected == _NUMBER:
        return "number"
    return expected.__name__


def validate_event(record: Mapping[str, Any]) -> None:
    """Raise :class:`TelemetryError` unless ``record`` conforms.

    Checks the base fields, that the type is declared, and every
    declared field's presence and runtime type (bool never satisfies a
    numeric field — JSON trues are not counts)."""
    if not isinstance(record, Mapping):
        raise TelemetryError(
            f"telemetry records must be objects, got "
            f"{type(record).__name__}")
    kind = record.get("type")
    if not isinstance(kind, str) or kind not in EVENT_SCHEMAS:
        raise TelemetryError(f"unknown telemetry event type {kind!r}")
    if record.get("v") != SCHEMA_VERSION:
        raise TelemetryError(
            f"telemetry record carries schema version {record.get('v')!r}; "
            f"this reader understands {SCHEMA_VERSION}")
    required = dict(BASE_FIELDS)
    required.update(EVENT_SCHEMAS[kind])
    for field, expected in required.items():
        if field not in record:
            raise TelemetryError(
                f"{kind!r} event is missing required field {field!r}")
        value = record[field]
        if isinstance(value, bool) or not isinstance(value, expected):
            raise TelemetryError(
                f"{kind!r} event field {field!r} must be "
                f"{_type_name(expected)}, got {type(value).__name__}")


class EventSink:
    """Append-only, schema-validated JSONL event writer.

    A fresh path gets a header line; an existing file is refused unless
    ``append=True`` (an event stream is never silently overwritten), in
    which case the existing header is checked for version compatibility
    and its run id adopted.
    """

    def __init__(self, path: Union[str, Path], run_id: Optional[str] = None,
                 append: bool = False):
        self.path = Path(path)
        exists = self.path.exists()
        if exists and not append:
            raise TelemetryError(
                f"telemetry file {self.path} already exists; pass "
                "append=True to continue it, or choose a fresh path")
        if not exists and append:
            raise TelemetryError(
                f"cannot append: telemetry file {self.path} does not exist")
        self._seq = 0
        self._fd: Optional[int] = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        if exists:
            header = _read_header(self.path)
            self.run_id = str(header.get("run_id", ""))
        else:
            self.run_id = run_id or uuid.uuid4().hex[:12]
            self.emit("telemetry", run_id=self.run_id,
                      created_unix=time.time())

    def emit(self, type_: str, **fields: Any) -> dict:
        """Validate and append one event; returns the full record."""
        if self._fd is None:
            raise TelemetryError(
                f"telemetry sink {self.path} is closed")
        record = {"type": type_, "v": SCHEMA_VERSION, "seq": self._seq,
                  "wall": time.time(), "pid": os.getpid()}
        record.update(fields)
        validate_event(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        # One write per line: atomic O_APPEND append, so concurrent
        # forked writers interleave whole records, never fragments.  The
        # write goes through repro.fsio (the chaos harness's injection
        # point; pass-through when no shim is installed).
        try:
            fsio.os_write(self._fd, line.encode("utf-8"), path=self.path)
        except OSError as exc:
            raise TelemetryError(
                f"cannot append to telemetry file {self.path} ({exc}); "
                "the event was not recorded — every earlier line is "
                "intact") from exc
        self._seq += 1
        return record

    def close(self) -> None:
        """Release the descriptor (idempotent)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._fd is None

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _parse_lines(path: Path) -> List[Tuple[int, dict]]:
    """``(lineno, record)`` pairs; torn final line tolerated loudly."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise TelemetryError(
            f"cannot read telemetry file {path}: {exc}") from exc
    records: List[Tuple[int, dict]] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1:
                # Torn final line: the instrumented process was killed
                # mid-append.  Everything before it is intact; the partial
                # event is discarded — loudly, so an operator can tell a
                # clean file from a crash artefact.
                warnings.warn(
                    f"{path}:{index + 1}: discarding torn final telemetry "
                    f"record (crash mid-append?)", RuntimeWarning,
                    stacklevel=3)
                break
            raise TelemetryError(
                f"{path}:{index + 1}: corrupt telemetry record "
                f"({exc})") from exc
        records.append((index + 1, record))
    return records


def _read_header(path: Path) -> dict:
    """The validated header record of an existing event file."""
    records = _parse_lines(path)
    if not records:
        raise TelemetryError(f"telemetry file {path} holds no records")
    lineno, header = records[0]
    try:
        validate_event(header)
    except TelemetryError as exc:
        raise TelemetryError(f"{path}:{lineno}: bad header: {exc}") from exc
    if header.get("type") != "telemetry":
        raise TelemetryError(
            f"{path}:{lineno}: first record must be the 'telemetry' "
            f"header, got {header.get('type')!r}")
    return header


def read_events(path: Union[str, Path]) -> List[dict]:
    """Load and validate every event of one telemetry file.

    Returns the records in file order, header included.  A torn final
    line warns and is dropped (crash tolerance); any other malformation
    — corrupt JSON mid-file, an unknown event type, a missing or
    mistyped field, a version mismatch — raises
    :class:`~repro.errors.TelemetryError`."""
    path = Path(path)
    records = _parse_lines(path)
    if not records:
        raise TelemetryError(f"telemetry file {path} holds no records")
    lineno, header = records[0]
    if header.get("type") != "telemetry":
        raise TelemetryError(
            f"{path}:{lineno}: first record must be the 'telemetry' "
            f"header, got {header.get('type')!r}")
    out = []
    for lineno, record in records:
        try:
            validate_event(record)
        except TelemetryError as exc:
            raise TelemetryError(f"{path}:{lineno}: {exc}") from exc
        out.append(record)
    return out
