"""In-process metrics: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the observability layer (events and
spans are the narrative half, :mod:`repro.telemetry.events` and
:mod:`repro.telemetry.tracing`).  Everything is zero-dependency and
allocation-light so the instrumented hot paths stay fast:

* :class:`Counter` — monotonically increasing total (steps simulated,
  guard interventions, supervisor retries).
* :class:`Gauge` — last-written value (final state of charge, current
  health mode).
* :class:`Histogram` — fixed-bucket distribution with constant-memory
  quantile estimation: p50/p99 come from linear interpolation inside the
  bucket that holds the rank, without ever storing samples.  Accuracy is
  bounded by the bucket width (tested against ``numpy.percentile``).

Every metric snapshots to plain JSON-able dicts; the
:class:`repro.telemetry.Telemetry` facade emits one final
``metrics_snapshot`` event into the sink when closed.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import TelemetryError


def linear_buckets(start: float, width: float, count: int) -> Tuple[float, ...]:
    """``count`` ascending bucket upper bounds: start, start+width, ..."""
    if width <= 0 or count < 1:
        raise TelemetryError("linear buckets need width > 0 and count >= 1")
    return tuple(start + i * width for i in range(count))


def exponential_buckets(start: float, factor: float,
                        count: int) -> Tuple[float, ...]:
    """``count`` ascending bucket upper bounds: start, start*factor, ..."""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise TelemetryError(
            "exponential buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor ** i for i in range(count))


LATENCY_BUCKETS_S = exponential_buckets(1e-6, 2.0, 26)
"""Default wall-clock buckets: 1 µs .. ~33 s, doubling."""


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0 — counters only go up)."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (got {amount!r}); "
                "use a Gauge for values that move both ways")
        self._value += float(amount)

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-able state."""
        return {"kind": "counter", "value": self._value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Optional[float] = None

    def set(self, value: Union[int, float]) -> None:
        """Record the current value."""
        self._value = float(value)

    @property
    def value(self) -> Optional[float]:
        """Last value set (None before the first set)."""
        return self._value

    def snapshot(self) -> dict:
        """JSON-able state."""
        return {"kind": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket distribution with constant-memory quantiles.

    ``bounds`` are ascending finite bucket *upper* edges; one implicit
    overflow bucket catches everything above the last bound.  Observed
    minimum and maximum tighten the interpolation at the edges, so the
    estimate of any quantile is off by at most one bucket width.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min",
                 "_max")

    def __init__(self, name: str, buckets: Sequence[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise TelemetryError(
                f"histogram {name!r} needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise TelemetryError(
                f"histogram {name!r} bucket bounds must be finite "
                "(the overflow bucket is implicit)")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(
                f"histogram {name!r} bucket bounds must be strictly "
                "ascending")
        self.name = name
        self.bounds = bounds
        self._counts: List[int] = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: Union[int, float]) -> None:
        """Record one sample."""
        value = float(value)
        if not math.isfinite(value):
            raise TelemetryError(
                f"histogram {self.name!r} observed a non-finite value "
                f"({value!r})")
        self._counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        """Samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed samples."""
        return self._sum

    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._sum / self._count if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, ``q`` in [0, 1] (NaN when empty).

        Linear interpolation inside the bucket that contains the rank,
        with the bucket edges clamped to the observed min/max — matching
        ``numpy.percentile``'s default within one bucket width.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile must be in [0, 1], got {q!r}")
        if self._count == 0:
            return math.nan
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        rank = q * (self._count - 1)
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count > rank:
                lo = self.bounds[i - 1] if i > 0 else self._min
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi < lo:
                    hi = lo
                return lo + (hi - lo) * ((rank - cumulative) / bucket_count)
            cumulative += bucket_count
        return self._max

    def snapshot(self) -> dict:
        """JSON-able state (quantiles precomputed, no raw samples)."""
        empty = self._count == 0
        return {
            "kind": "histogram",
            "count": self._count,
            "sum": self._sum,
            "min": None if empty else self._min,
            "max": None if empty else self._max,
            "p50": None if empty else self.quantile(0.50),
            "p99": None if empty else self.quantile(0.99),
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name registers exactly one metric kind; asking for the same name as
    a different kind (or a histogram with different buckets) is a
    :class:`~repro.errors.TelemetryError` — silent shadowing would make
    the snapshot lie.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: type, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TelemetryError(
                    f"metric {name!r} is already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}")
            return existing
        created = factory()
        self._metrics[name] = created
        return created

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram called ``name``.

        ``buckets`` is required on first use and, when passed again, must
        match the registered bounds exactly.
        """
        existing = self._metrics.get(name)
        if existing is None:
            if buckets is None:
                raise TelemetryError(
                    f"histogram {name!r} does not exist yet; pass its "
                    "bucket bounds on first use")
            return self._get(name, Histogram,
                             lambda: Histogram(name, buckets))
        hist = self._get(name, Histogram, None)
        if buckets is not None and tuple(float(b) for b in buckets) \
                != hist.bounds:
            raise TelemetryError(
                f"histogram {name!r} is already registered with different "
                "bucket bounds")
        return hist

    def names(self) -> Iterable[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """JSON-able state of every metric, keyed by name."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
